//! Provider-equivalence and spec-differentiation properties.
//!
//! The ProviderSpec refactor carved the protocol-invariant sync engine
//! out of the Dropbox-specific machinery. Two things must hold:
//!
//! 1. **Equivalence** — the generic engine parameterised with the Dropbox
//!    spec is the *same simulation* as before the refactor: explicitly
//!    setting `protocol: &spec::DROPBOX` reproduces the pinned
//!    `fault_identity` baseline digests, and stays byte-identical across
//!    the whole `(--jobs × --hh-shards)` grid.
//! 2. **Differentiation** — the competing specs actually change what the
//!    paper says they change: a no-dedup provider uploads strictly more
//!    bytes on duplicated content, and a forced access-link profile
//!    reshapes flow timing without touching flow *counts* (the workload
//!    plane is independent of the path plane).

use dropbox::client::ClientVersion;
use dropbox::spec;
use nettrace::FlowRecord;
use tcpmodel::params as access;
use workload::shard::ShardPlan;
use workload::{
    simulate_shards, simulate_vantage, FaultPlan, SimOutput, VantageConfig, VantageKind,
};

/// FNV-1a over the shape-defining fields of every record, in order (same
/// digest as `fault_identity.rs`).
fn digest(flows: &[FlowRecord]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for f in flows {
        for v in [
            f.first_syn.micros(),
            f.last_packet.micros(),
            f.up.bytes,
            f.down.bytes,
            f.up.packets,
            f.down.packets,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn jsonl(out: &SimOutput) -> Vec<u8> {
    let mut buf = Vec::new();
    nettrace::flowlog::write_jsonl(&mut buf, &out.dataset.flows).expect("serialise flows");
    buf
}

#[test]
fn explicit_dropbox_spec_reproduces_the_pinned_baseline() {
    // Same run as fault_identity's pinned baseline, but with the protocol
    // spelled out instead of defaulted: the spec indirection must cost
    // zero RNG draws and zero behaviour.
    let mut config = VantageConfig::paper(VantageKind::Home1, 0.02);
    config.days = 7;
    config.protocol = &spec::DROPBOX;
    let home = simulate_vantage(&config, ClientVersion::V1_2_52, 42, &FaultPlan::none());
    assert_eq!(home.dataset.flows.len(), 9727);
    assert_eq!(digest(&home.dataset.flows), 0x24a187552ac6cc36);

    let mut config = VantageConfig::paper(VantageKind::Campus1, 0.02);
    config.days = 7;
    config.protocol = &spec::DROPBOX;
    let campus = simulate_vantage(&config, ClientVersion::V1_2_52, 42, &FaultPlan::none());
    assert_eq!(campus.dataset.flows.len(), 808);
    assert_eq!(digest(&campus.dataset.flows), 0x1677cb9ce0b2216f);
}

#[test]
fn every_spec_is_byte_identical_across_jobs_and_shards() {
    // The provider-matrix cells inherit the determinism contract: for
    // each spec (and a forced access link), the serial unsharded run is
    // the canonical form and every (jobs, sub-shards) cell must match.
    let scale = 0.01;
    let seed = 77;
    for prov in spec::ALL {
        let mut base = ShardPlan::paper().truncated(3).with_protocol(prov);
        if prov.slug != "dropbox" {
            base = base.with_link(&access::LTE);
        }
        let serial = simulate_shards(&base.with_sub_shards(1), scale, seed, &FaultPlan::none(), 1);
        let baseline: Vec<Vec<u8>> = serial.iter().map(jsonl).collect();
        assert!(
            baseline.iter().any(|b| !b.is_empty()),
            "{}: degenerate run",
            prov.slug
        );
        for (sub_shards, jobs) in [(8usize, 3usize), (16, 1)] {
            let par = simulate_shards(
                &base.with_sub_shards(sub_shards),
                scale,
                seed,
                &FaultPlan::none(),
                jobs,
            );
            for (a, b) in par.iter().zip(&baseline) {
                assert_eq!(
                    &jsonl(a),
                    b,
                    "{}: jobs {jobs} / hh-shards {sub_shards} diverges",
                    prov.slug
                );
            }
        }
    }
}

#[test]
fn forced_access_link_changes_timing_not_workload() {
    // The access-link override sits ahead of the TCP model: what the
    // households *do* (flow counts, upload intent) is unchanged; how long
    // transfers take is not.
    let mut wired = VantageConfig::paper(VantageKind::Campus1, 0.02);
    wired.days = 5;
    wired.link = Some(&access::WIRED);
    let mut lte = wired.clone();
    lte.link = Some(&access::LTE);
    let a = simulate_vantage(&wired, ClientVersion::V1_2_52, 9, &FaultPlan::none());
    let b = simulate_vantage(&lte, ClientVersion::V1_2_52, 9, &FaultPlan::none());
    assert_eq!(
        a.dataset.flows.len(),
        b.dataset.flows.len(),
        "flow counts are workload-plane, not path-plane"
    );
    let span = |o: &SimOutput| -> u64 {
        o.dataset
            .flows
            .iter()
            .map(|f| f.last_packet.micros() - f.first_syn.micros())
            .sum()
    };
    assert!(
        span(&b) > span(&a),
        "LTE must stretch transfers: {} vs {}",
        span(&b),
        span(&a)
    );
}

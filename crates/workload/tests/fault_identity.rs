//! Zero-fault identity and faulty-run determinism.
//!
//! The fault-injection substrate must be invisible when disabled: a run
//! with [`FaultPlan::none`] has to reproduce, byte for byte, the
//! canonical baseline output. The digests pinned below were captured from
//! the per-household-stream baseline (the sub-capture sharding refactor);
//! if they move, either a fault branch leaked into the clean path (an
//! extra RNG draw is enough) or a change perturbed the per-household seed
//! derivation — both break the reproducibility contract and need a
//! deliberate re-pin.
//!
//! An *active* plan, in turn, must stay a pure function of its inputs:
//! the same `(config, seed, plan)` triple serialises to identical JSONL
//! on every run.

use dropbox::client::ClientVersion;
use nettrace::FlowRecord;
use workload::{simulate_vantage, FaultPlan, SimOutput, VantageConfig, VantageKind};

fn run(kind: VantageKind, plan: &FaultPlan) -> SimOutput {
    let mut config = VantageConfig::paper(kind, 0.02);
    config.days = 7;
    simulate_vantage(&config, ClientVersion::V1_2_52, 42, plan)
}

/// FNV-1a over the shape-defining fields of every record, in order.
fn digest(flows: &[FlowRecord]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for f in flows {
        for v in [
            f.first_syn.micros(),
            f.last_packet.micros(),
            f.up.bytes,
            f.down.bytes,
            f.up.packets,
            f.down.packets,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[test]
fn none_plan_reproduces_the_pinned_baseline() {
    let home = run(VantageKind::Home1, &FaultPlan::none());
    assert_eq!(home.dataset.flows.len(), 9727);
    let bytes: u64 = home.dataset.flows.iter().map(|f| f.total_bytes()).sum();
    assert_eq!(bytes, 1_014_154_257_606);
    assert_eq!(digest(&home.dataset.flows), 0x24a187552ac6cc36);

    let campus = run(VantageKind::Campus1, &FaultPlan::none());
    assert_eq!(campus.dataset.flows.len(), 808);
    let bytes: u64 = campus.dataset.flows.iter().map(|f| f.total_bytes()).sum();
    assert_eq!(bytes, 26_181_183_100);
    assert_eq!(digest(&campus.dataset.flows), 0x1677cb9ce0b2216f);
}

#[test]
fn lossy_plan_is_deterministic_down_to_the_serialised_bytes() {
    let plan = FaultPlan::lossy(7, 7);
    let jsonl = |out: &SimOutput| {
        let mut buf = Vec::new();
        nettrace::flowlog::write_jsonl(&mut buf, &out.dataset.flows).unwrap();
        buf
    };
    let a = run(VantageKind::Campus1, &plan);
    let b = run(VantageKind::Campus1, &plan);
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(
        jsonl(&a),
        jsonl(&b),
        "faulty runs must serialise identically"
    );
    assert!(a.fault_stats.sync_retries > 0 || a.fault_stats.aborted_flows > 0);
}

//! Serial-vs-parallel byte-identity: the determinism contract of
//! `simcore::par` (DESIGN.md §7), pinned end-to-end.
//!
//! A `--jobs N` run must produce the same bytes as the serial run for
//! every artifact. This test compares the serialised JSONL flow logs of
//! every shard of a truncated paper plan — byte for byte — across worker
//! counts 1, 2 and 4, both fault-free and under an active fault plan
//! (fault injection draws from per-shard streams too, so it must be just
//! as schedule-independent).

use workload::driver::SimOutput;
use workload::{simulate_shards, FaultPlan, ShardPlan};

/// The canonical on-disk form of one shard's output: exactly what
/// `repro --export-traces` writes (minus client anonymisation, which is
/// itself deterministic).
fn jsonl(out: &SimOutput) -> Vec<u8> {
    let mut buf = Vec::new();
    nettrace::flowlog::write_jsonl(&mut buf, &out.dataset.flows).expect("serialise flows");
    buf
}

fn assert_byte_identical(faults: &FaultPlan, what: &str) {
    let plan = ShardPlan::paper().truncated(4);
    let scale = 0.015;
    let seed = 2012;
    let serial = simulate_shards(&plan, scale, seed, faults, 1);
    assert_eq!(serial.len(), 5);
    let serial_bytes: Vec<Vec<u8>> = serial.iter().map(jsonl).collect();
    assert!(
        serial_bytes.iter().any(|b| !b.is_empty()),
        "{what}: degenerate run, nothing to compare"
    );
    for jobs in [2, 4] {
        let par = simulate_shards(&plan, scale, seed, faults, jobs);
        assert_eq!(par.len(), serial.len());
        for ((a, b), bytes_a) in serial.iter().zip(&par).zip(&serial_bytes) {
            assert_eq!(a.dataset.name, b.dataset.name, "{what}: merge order moved");
            assert_eq!(
                *bytes_a,
                jsonl(b),
                "{what}: {} flow log differs between --jobs 1 and --jobs {jobs}",
                a.dataset.name
            );
            // Side channels must match too, not just the flow log.
            assert_eq!(a.lan_synced, b.lan_synced, "{what}: lan_synced");
            assert_eq!(
                a.fault_stats.sync_retries, b.fault_stats.sync_retries,
                "{what}: sync_retries"
            );
            assert_eq!(
                a.fault_stats.aborted_flows, b.fault_stats.aborted_flows,
                "{what}: aborted_flows"
            );
            assert_eq!(
                a.fault_stats.notify_aborts, b.fault_stats.notify_aborts,
                "{what}: notify_aborts"
            );
        }
    }
}

#[test]
fn parallel_runs_are_byte_identical_fault_free() {
    assert_byte_identical(&FaultPlan::none(), "fault-free");
}

#[test]
fn parallel_runs_are_byte_identical_under_faults() {
    // Horizon covers the truncated window; the plan stays active.
    let faults = FaultPlan::lossy(9, 4);
    assert!(faults.is_active());
    assert_byte_identical(&faults, "faulty");
}

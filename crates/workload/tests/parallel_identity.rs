//! Serial-vs-parallel byte-identity: the determinism contract of
//! `simcore::par` and the household sub-shard decomposition
//! (DESIGN.md §7), pinned end-to-end.
//!
//! A `--jobs N --hh-shards K` run must produce the same bytes as the
//! strictly serial, unsharded run for every artifact. These tests compare
//! the serialised JSONL flow logs of every capture of a truncated paper
//! plan — byte for byte — across worker counts up to 16 and household
//! sub-shard counts up to 16, both fault-free and under an active fault
//! plan (fault injection draws from per-household streams too, so it must
//! be just as schedule-independent). A deterministic property test then
//! re-checks the whole (jobs × K) grid under randomised seeds and fault
//! plans.

use workload::driver::SimOutput;
use workload::{simulate_shards, FaultPlan, ShardPlan};

/// The canonical on-disk form of one capture's output: exactly what
/// `repro --export-traces` writes (minus client anonymisation, which is
/// itself deterministic).
fn jsonl(out: &SimOutput) -> Vec<u8> {
    let mut buf = Vec::new();
    nettrace::flowlog::write_jsonl(&mut buf, &out.dataset.flows).expect("serialise flows");
    buf
}

/// FNV-1a over a byte string (for compact digest comparison in the
/// property test's failure messages).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn assert_byte_identical(faults: &FaultPlan, what: &str) {
    let scale = 0.015;
    let seed = 2012;
    // The unsharded serial run is the canonical baseline: one household
    // range per capture, one worker.
    let base_plan = ShardPlan::paper().truncated(4);
    let serial = simulate_shards(&base_plan.with_sub_shards(1), scale, seed, faults, 1);
    assert_eq!(serial.len(), 5);
    let serial_bytes: Vec<Vec<u8>> = serial.iter().map(jsonl).collect();
    assert!(
        serial_bytes.iter().any(|b| !b.is_empty()),
        "{what}: degenerate run, nothing to compare"
    );
    // Sweep jobs at the default sub-shard count, and the sub-shard count
    // at a fixed parallel jobs value; every cell must match the baseline.
    let grid: &[(usize, usize)] = &[(16, 1), (16, 2), (16, 4), (16, 8), (16, 16), (1, 8), (4, 8)];
    for &(sub_shards, jobs) in grid {
        let plan = base_plan.with_sub_shards(sub_shards);
        let par = simulate_shards(&plan, scale, seed, faults, jobs);
        assert_eq!(par.len(), serial.len());
        for ((a, b), bytes_a) in serial.iter().zip(&par).zip(&serial_bytes) {
            assert_eq!(a.dataset.name, b.dataset.name, "{what}: merge order moved");
            assert_eq!(
                *bytes_a,
                jsonl(b),
                "{what}: {} flow log differs between the serial baseline and \
                 --jobs {jobs} --hh-shards {sub_shards}",
                a.dataset.name
            );
            // Side channels must match too, not just the flow log.
            assert_eq!(a.lan_synced, b.lan_synced, "{what}: lan_synced");
            assert_eq!(
                a.fault_stats.sync_retries, b.fault_stats.sync_retries,
                "{what}: sync_retries"
            );
            assert_eq!(
                a.fault_stats.aborted_flows, b.fault_stats.aborted_flows,
                "{what}: aborted_flows"
            );
            assert_eq!(
                a.fault_stats.notify_aborts, b.fault_stats.notify_aborts,
                "{what}: notify_aborts"
            );
            assert_eq!(a.fault_stats, b.fault_stats, "{what}: fault_stats");
        }
    }
}

#[test]
fn parallel_runs_are_byte_identical_fault_free() {
    assert_byte_identical(&FaultPlan::none(), "fault-free");
}

#[test]
fn parallel_runs_are_byte_identical_under_faults() {
    // Horizon covers the truncated window; the plan stays active.
    let faults = FaultPlan::lossy(9, 4);
    assert!(faults.is_active());
    assert_byte_identical(&faults, "faulty");
}

#[test]
fn parallel_runs_are_byte_identical_under_chaos() {
    // The control-plane machinery (offline queues, deferred flushes,
    // session planning, reconnect storms) draws from per-household
    // streams too: a full chaos plan must be just as schedule-independent
    // as the link-fault plan, including the new degraded-mode counters.
    let faults = FaultPlan::chaos(9, 4, &workload::OutageKnobs::default());
    assert!(faults.has_control_plane());
    assert_byte_identical(&faults, "chaos");
}

// The full (jobs × sub-shards) grid under randomised seeds and fault
// plans: whatever the capture seed and whatever faults are active, every
// schedule must serialise to the same bytes as the serial unsharded run.
simcore::proptest! {
    #![cases(2)]
    #[test]
    fn any_schedule_matches_the_serial_run(
        seed in simcore::proptest::any_u64(),
        fault_seed in simcore::proptest::any_u64(),
        inject_faults in simcore::proptest::any_bool(),
    ) {
        let scale = 0.005;
        let faults = if inject_faults {
            FaultPlan::lossy(fault_seed, 2)
        } else {
            FaultPlan::none()
        };
        let base_plan = ShardPlan::paper().truncated(2);
        let serial = simulate_shards(&base_plan.with_sub_shards(1), scale, seed, &faults, 1);
        let baseline: Vec<u64> = serial.iter().map(|o| fnv1a(&jsonl(o))).collect();
        for sub_shards in [1usize, 4, 16] {
            let plan = base_plan.with_sub_shards(sub_shards);
            for jobs in [1usize, 2, 3, 4, 8, 16] {
                let par = simulate_shards(&plan, scale, seed, &faults, jobs);
                let digests: Vec<u64> = par.iter().map(|o| fnv1a(&jsonl(o))).collect();
                simcore::prop_assert_eq!(
                    &baseline,
                    &digests,
                    "jobs {} / hh-shards {} diverges from serial",
                    jobs,
                    sub_shards
                );
            }
        }
    }
}

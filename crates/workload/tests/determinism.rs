//! Double-run serialisation identity.
//!
//! The HashMap→BTreeMap sweep (simlint's `map-iter` rule) exists so that
//! no per-process hash seed can leak into serialized output. This test
//! pins the property directly: two zero-fault runs of the same
//! `(config, version, seed)` triple inside one process must serialise to
//! byte-identical JSONL. Before the sweep, any hash-ordered iteration
//! reaching the output would differ between the two runs because each
//! `HashMap` instance draws its own `RandomState`.
//!
//! (`fault_identity.rs` separately pins the absolute digests against the
//! per-household-stream baseline; together the two tests say "unchanged,
//! and for the reproducible reason".)

use dropbox::client::ClientVersion;
use workload::{simulate_vantage, FaultPlan, SimOutput, VantageConfig, VantageKind};

fn campus_run() -> SimOutput {
    let mut config = VantageConfig::paper(VantageKind::Campus1, 0.02);
    config.days = 7;
    simulate_vantage(&config, ClientVersion::V1_2_52, 42, &FaultPlan::none())
}

fn jsonl(out: &SimOutput) -> Vec<u8> {
    let mut buf = Vec::new();
    nettrace::flowlog::write_jsonl(&mut buf, &out.dataset.flows).expect("serialise to memory");
    buf
}

#[test]
fn zero_fault_double_run_is_byte_identical() {
    let a = campus_run();
    let b = campus_run();
    let ja = jsonl(&a);
    let jb = jsonl(&b);
    assert!(!ja.is_empty());
    assert_eq!(
        ja, jb,
        "two identical zero-fault runs must serialise to identical JSONL"
    );
}

#[test]
fn anonymisation_is_order_stable() {
    // `anonymise_clients` assigns sequential anonymous addresses in flow
    // order; running it on two copies of the same dataset must agree.
    let out = campus_run();
    let mut x = out.dataset.flows.clone();
    let mut y = out.dataset.flows.clone();
    nettrace::flowlog::anonymise_clients(&mut x);
    nettrace::flowlog::anonymise_clients(&mut y);
    let mut bx = Vec::new();
    let mut by = Vec::new();
    nettrace::flowlog::write_jsonl(&mut bx, &x).expect("serialise to memory");
    nettrace::flowlog::write_jsonl(&mut by, &y).expect("serialise to memory");
    assert_eq!(bx, by);
}

//! The sync-audit ledger: ground-truth propagation events recorded by the
//! driver while it plays a capture under a fault plan.
//!
//! [`SyncAudit`] is a *write-side* journal — the driver appends commits,
//! expected deliveries, actual deliveries, excuses, flush events,
//! reconnect probes, and the final chunk-store snapshot as it renders the
//! capture. It never influences the simulation: recording draws no
//! randomness and mutates no simulation state, so a run with auditing on
//! is byte-identical to the same run without it.
//!
//! The *read side* lives in [`crate::oracle`]: after the run quiesces,
//! the convergence oracle folds over this ledger through `&self`
//! accessors only (simlint's `oracle-pure` rule keeps it that way) and
//! reports violations of the sync-convergence invariants of DESIGN.md §9.

use dropbox::content::ChunkId;
use simcore::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// How a commit reached one member device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryKind {
    /// Served by the LAN Sync Protocol (no WAN flow).
    Lan,
    /// Cloud retrieve while the member was on-line.
    Online,
    /// Login synchronisation burst at the next session start.
    Login,
}

/// Why an expected delivery legitimately never happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Excuse {
    /// The member had no session after the commit became visible — the
    /// capture ended first, as in reality.
    NoLaterSession,
    /// The committer itself had no session after the metadata plane
    /// recovered, so the commit never reached the server.
    NeverFlushed,
    /// Every chunk of the commit was superseded by a later offline edit;
    /// the coalesced queue flushes only the final version.
    CoalescedAway,
}

/// One committed changeset, as the driver ordered it.
#[derive(Clone, Debug)]
pub struct CommitRecord {
    /// Ledger-wide commit id (index into [`SyncAudit::commits`]).
    pub id: u64,
    /// Namespace the commit landed in.
    pub ns: u64,
    /// When the change was made.
    pub at: SimTime,
    /// When it became visible on the metadata plane (later than `at` when
    /// the commit waited out a metadata outage in the offline queue).
    pub visible_at: SimTime,
    /// Committing device (`host_int`), `None` for external producers.
    pub committer: Option<u64>,
    /// Chunk ids the commit carries.
    pub chunks: Vec<ChunkId>,
    /// Whether the commit was queued through a metadata outage.
    pub deferred: bool,
}

/// The ground-truth sync ledger of one audited capture.
#[derive(Debug, Default)]
pub struct SyncAudit {
    commits: Vec<CommitRecord>,
    expects: BTreeSet<(u64, u64)>,
    delivers: BTreeMap<(u64, u64), Vec<(SimTime, DeliveryKind)>>,
    excuses: BTreeMap<(u64, u64), Excuse>,
    commit_excuses: BTreeMap<u64, Excuse>,
    flushes: BTreeMap<u64, Vec<SimTime>>,
    superseded: BTreeSet<ChunkId>,
    stored: BTreeSet<ChunkId>,
    reconnect_attempts: Vec<(SimTime, u64)>,
    reconnects: Vec<(SimTime, u64)>,
    fallback_polls: u64,
    residual_batches: u64,
}

impl SyncAudit {
    /// Fresh empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of commits recorded so far (the next commit's id).
    pub fn commit_count(&self) -> u64 {
        self.commits.len() as u64
    }

    /// Append a commit record; `record.id` must equal
    /// [`Self::commit_count`] at the time of the call.
    pub fn push_commit(&mut self, record: CommitRecord) {
        debug_assert_eq!(record.id, self.commit_count());
        self.commits.push(record);
    }

    /// Declare that member device `host` subscribes to commit `id` and is
    /// expected to receive it (or be excused).
    pub fn expect_delivery(&mut self, id: u64, host: u64) {
        self.expects.insert((id, host));
    }

    /// Record an actual delivery of commit `id` to `host` at `at`.
    pub fn deliver(&mut self, id: u64, host: u64, at: SimTime, kind: DeliveryKind) {
        self.delivers
            .entry((id, host))
            .or_default()
            .push((at, kind));
    }

    /// Excuse member `host` from ever receiving commit `id`.
    pub fn excuse(&mut self, id: u64, host: u64, why: Excuse) {
        self.excuses.insert((id, host), why);
    }

    /// Excuse the commit as a whole (e.g. it never reached the server
    /// because the committer's capture ended mid-outage); every expected
    /// member inherits the excuse.
    pub fn excuse_commit(&mut self, id: u64, why: Excuse) {
        self.commit_excuses.insert(id, why);
    }

    /// Record that commit `id`'s upload transaction was rendered at `at`.
    pub fn flushed(&mut self, id: u64, at: SimTime) {
        self.flushes.entry(id).or_default().push(at);
    }

    /// Record chunk versions dropped by offline-queue coalescing — they
    /// are *expected* never to reach the store.
    pub fn superseded_chunks(&mut self, ids: &[ChunkId]) {
        self.superseded.extend(ids.iter().copied());
    }

    /// Append the final chunk-store content of one household.
    pub fn snapshot_store(&mut self, ids: impl IntoIterator<Item = ChunkId>) {
        self.stored.extend(ids);
    }

    /// Record a failed notification reconnect probe.
    pub fn reconnect_attempt(&mut self, at: SimTime, host: u64) {
        self.reconnect_attempts.push((at, host));
    }

    /// Record a successful notification reconnect.
    pub fn reconnect(&mut self, at: SimTime, host: u64) {
        self.reconnects.push((at, host));
    }

    /// Count one fallback metadata poll.
    pub fn fallback_poll(&mut self) {
        self.fallback_polls += 1;
    }

    /// Record offline-queue batches still undrained at capture end — the
    /// oracle treats any such batch as a violation.
    pub fn residual_batches(&mut self, n: u64) {
        self.residual_batches += n;
    }

    // ---- read side (what the oracle folds over) -------------------------

    /// Every commit, in ledger order.
    pub fn commits(&self) -> &[CommitRecord] {
        &self.commits
    }

    /// Every `(commit, member host)` pair expected to sync.
    pub fn expects(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.expects.iter().copied()
    }

    /// Deliveries of commit `id` to `host`.
    pub fn deliveries(&self, id: u64, host: u64) -> &[(SimTime, DeliveryKind)] {
        self.delivers
            .get(&(id, host))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The excuse for `(id, host)`, honouring commit-wide excuses.
    pub fn excuse_of(&self, id: u64, host: u64) -> Option<Excuse> {
        self.excuses
            .get(&(id, host))
            .or_else(|| self.commit_excuses.get(&id))
            .copied()
    }

    /// The commit-wide excuse of `id`, if any.
    pub fn commit_excuse(&self, id: u64) -> Option<Excuse> {
        self.commit_excuses.get(&id).copied()
    }

    /// Instants commit `id`'s upload transaction was rendered.
    pub fn flushes_of(&self, id: u64) -> &[SimTime] {
        self.flushes.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the chunk was dropped by coalescing.
    pub fn is_superseded(&self, id: ChunkId) -> bool {
        self.superseded.contains(&id)
    }

    /// Whether the chunk ended up in a chunk store.
    pub fn is_stored(&self, id: ChunkId) -> bool {
        self.stored.contains(&id)
    }

    /// Failed reconnect probes as `(time, host)` events.
    pub fn reconnect_attempt_events(&self) -> &[(SimTime, u64)] {
        &self.reconnect_attempts
    }

    /// Successful reconnects as `(time, host)` events.
    pub fn reconnect_events(&self) -> &[(SimTime, u64)] {
        &self.reconnects
    }

    /// Total fallback metadata polls rendered.
    pub fn fallback_poll_count(&self) -> u64 {
        self.fallback_polls
    }

    /// Offline-queue batches left undrained at capture end.
    pub fn residual_batch_count(&self) -> u64 {
        self.residual_batches
    }

    /// Sync-lag samples in seconds: `delivery time − commit time` for
    /// every recorded delivery (the end-to-end propagation delay a
    /// member experienced).
    pub fn sync_lags_secs(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for (&(id, _host), events) in &self.delivers {
            let at = self.commits[id as usize].at;
            for &(t, _) in events {
                out.push(t.saturating_since(at).as_secs_f64());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_round_trips_events() {
        let mut a = SyncAudit::new();
        assert_eq!(a.commit_count(), 0);
        a.push_commit(CommitRecord {
            id: 0,
            ns: 7,
            at: SimTime::from_secs(10),
            visible_at: SimTime::from_secs(40),
            committer: Some(1),
            chunks: vec![ChunkId(5)],
            deferred: true,
        });
        a.expect_delivery(0, 2);
        a.deliver(0, 2, SimTime::from_secs(55), DeliveryKind::Online);
        a.flushed(0, SimTime::from_secs(40));
        a.snapshot_store([ChunkId(5)]);
        assert_eq!(a.deliveries(0, 2).len(), 1);
        assert_eq!(a.flushes_of(0), &[SimTime::from_secs(40)]);
        assert!(a.is_stored(ChunkId(5)));
        assert_eq!(a.sync_lags_secs(), vec![45.0]);
    }

    #[test]
    fn commit_wide_excuses_cover_members() {
        let mut a = SyncAudit::new();
        a.push_commit(CommitRecord {
            id: 0,
            ns: 1,
            at: SimTime::from_secs(1),
            visible_at: SimTime::from_secs(1),
            committer: Some(9),
            chunks: vec![],
            deferred: true,
        });
        a.expect_delivery(0, 3);
        a.excuse_commit(0, Excuse::NeverFlushed);
        assert_eq!(a.excuse_of(0, 3), Some(Excuse::NeverFlushed));
        // A member-specific excuse wins over the commit-wide one.
        a.excuse(0, 3, Excuse::NoLaterSession);
        assert_eq!(a.excuse_of(0, 3), Some(Excuse::NoLaterSession));
    }
}

//! Shard decomposition of the reproduction's capture set.
//!
//! The paper's dataset is a union of independent **captures**: four
//! vantage points monitored over the 42-day Mar–May window, plus the
//! Campus 1 Jun/Jul re-capture with Dropbox 1.4.0 (Table 4). Each capture
//! is a pure function of `(vantage point, day window, client version,
//! seed, fault plan)` — separate deployments, separate probes, separate
//! seed streams.
//!
//! With only five captures (and one dominating the cost), capture-level
//! sharding caps the useful worker count at ~2×. The unit of parallel
//! work is therefore one level finer: a contiguous **household range** of
//! one capture ([`HouseholdShard`]). This cut is sound because the driver
//! simulates each household from its own seed stream
//! ([`simcore::par::household_stream`] — a pure function of capture seed,
//! capture id and household index) against household-local state only, so
//! any contiguous partition of a capture's population replays identical
//! per-household bytes and a merge in household order
//! ([`nettrace::SpanMerge`]) reproduces the serial sweep exactly.
//!
//! [`ShardPlan::paper`] enumerates the five captures and cuts each into
//! [`ShardPlan::sub_shards`] household ranges; [`simulate_shards`] runs
//! the ranges on [`simcore::par`]'s deterministic fork-join executor and
//! re-assembles captures in canonical order. The result is
//! **byte-identical at every `--jobs` value and every sub-shard count** —
//! `crates/workload/tests/parallel_identity.rs` pins this, and the
//! `fault_identity` digests pin each capture's stream against committed
//! artifacts.
//!
//! Finer *day-window* cuts (splitting one household's days across
//! workers) remain deliberately unoffered: within a household, commits
//! propagate to arbitrarily later sessions (the login synchronisation
//! burst) and the sync engine's state spans the whole window, so a
//! day cut would either change bytes or re-simulate everything it cut
//! away. `DESIGN.md` §7 documents the boundary as part of the
//! determinism contract.

use crate::driver::{simulate_vantage, simulate_vantage_span, SimOutput, VantageStats};
use crate::vantage::{VantageConfig, VantageKind};
use dropbox::client::ClientVersion;
use dropbox::spec::{self, ProviderSpec};
use dropbox_analysis::Dataset;
use simcore::faults::FaultPlan;
use simcore::par;
use simcore::{Rng, ShardId};
use std::ops::Range;
use tcpmodel::AccessLink;

/// One independently simulable capture: a vantage point observed over one
/// simulated day window with one client generation.
#[derive(Clone, Debug)]
pub struct CaptureShard {
    /// Stable identity (derived from the vantage-point name — the label
    /// [`simulate_vantage`] has always forked its root stream from).
    pub id: ShardId,
    /// Human-readable shard name, e.g. `campus1/days0-42/v1.2.52`.
    pub label: String,
    /// Which vantage point.
    pub kind: VantageKind,
    /// Client generation active during the window.
    pub version: ClientVersion,
    /// Length of the simulated day window.
    pub days: u32,
    /// Mixed into the master seed to separate same-vantage windows
    /// (`0x14` tags the Jun/Jul re-capture; `0` the Mar–May window —
    /// the historical derivation, pinned by the committed `results/`).
    pub seed_tag: u64,
    /// Position of this capture's output in the merged capture list.
    pub merge_slot: usize,
    /// Provider protocol the capture's synced devices speak (Dropbox for
    /// the paper's captures; swapped by the provider-matrix runs).
    pub protocol: &'static ProviderSpec,
    /// Forced access-link profile (`None` = per-vantage access mix).
    pub link: Option<&'static AccessLink>,
}

impl CaptureShard {
    /// The capture-level seed: the master seed with the window tag mixed
    /// in. The four Mar–May shards use the master seed unchanged, so
    /// every historical `simulate_vantage(config, version, seed, plan)`
    /// call is a capture of a plan — bytes pinned by `fault_identity`.
    pub fn capture_seed(&self, master_seed: u64) -> u64 {
        master_seed ^ self.seed_tag
    }

    /// The capture's independent SplitMix64-derived seed stream — exactly
    /// the root stream [`simulate_vantage`] derives internally for this
    /// capture.
    pub fn stream(&self, master_seed: u64) -> Rng {
        par::shard_stream(self.capture_seed(master_seed), self.id)
    }

    /// Vantage configuration for this shard at a population scale.
    pub fn config(&self, scale: f64) -> VantageConfig {
        let mut config = VantageConfig::paper(self.kind, scale);
        config.days = self.days;
        config.protocol = self.protocol;
        config.link = self.link;
        config
    }

    /// Deterministic relative cost estimate of simulating the household
    /// range `households` of this capture at `scale`.
    ///
    /// Derived from the shard's size rather than measured: cost is linear
    /// in the day window, and a client household (sync planes, rendered
    /// device flows) costs roughly two orders of magnitude more than a
    /// client-less address (web/background rendering only) — the
    /// `clients × 100 + addresses` blend reproduces the measured
    /// capture-cost ordering (Campus 2 > Home 1 > Home 2 > Campus 1 >
    /// re-capture; see `BENCH_parallel.json`). Only scheduling reads
    /// this — output never depends on it.
    pub fn range_weight(&self, scale: f64, households: &Range<usize>) -> u64 {
        let config = self.config(scale);
        let len = households.len() as u64;
        let clients = (households.len() as f64 * config.dropbox_penetration).ceil() as u64;
        (clients * 100 + len).max(1) * u64::from(self.days.max(1))
    }

    /// Cost estimate for the whole capture.
    pub fn weight(&self, scale: f64) -> u64 {
        self.range_weight(scale, &(0..self.config(scale).addresses))
    }

    /// Simulate this whole capture. Pure: the output is a function of
    /// `(self, scale, master_seed, faults)` only.
    pub fn simulate(&self, scale: f64, master_seed: u64, faults: &FaultPlan) -> SimOutput {
        simulate_vantage(
            &self.config(scale),
            self.version,
            self.capture_seed(master_seed),
            faults,
        )
    }
}

/// One unit of parallel work: a contiguous household range of one
/// capture's population.
///
/// Its identity — `(capture, households)` — is stable: it names *what is
/// simulated*, never which worker runs it or how many ranges the capture
/// was cut into, so every seed derivation reachable from a shard is a
/// pure function of stable identity (simlint's `shard-seed` rule).
#[derive(Clone, Debug)]
pub struct HouseholdShard {
    /// Index into [`ShardPlan::shards`] of the owning capture.
    pub capture: usize,
    /// Household range `[start, end)` of that capture's population.
    pub households: Range<usize>,
    /// Deterministic relative cost estimate (scheduling only; see
    /// [`CaptureShard::range_weight`]).
    pub weight: u64,
}

/// An ordered set of capture shards plus the sub-capture cut. The
/// household-shard order produced by [`ShardPlan::household_shards`] is
/// the *schedule* (descending cost, so greedy workers approximate LPT);
/// merged outputs follow each capture's
/// [`merge_slot`](CaptureShard::merge_slot) and each range's household
/// order instead, so scheduling can never reorder results.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Captures in canonical declaration order.
    pub shards: Vec<CaptureShard>,
    /// How many household ranges to cut each capture into (clamped to at
    /// least 1 and at most the capture's population). Changes wall-clock
    /// granularity only — never bytes.
    pub sub_shards: usize,
}

/// Seed tag of the Campus 1 Jun/Jul re-capture (kept verbatim from the
/// original serial driver so the committed artifact corpus, generated
/// before sharding existed, stays byte-valid).
pub const RECAPTURE_SEED_TAG: u64 = 0x14;

/// Default number of household ranges per capture: enough slack for the
/// LPT schedule to keep 16 workers busy on the heavy captures without
/// paying per-range span overhead on the small ones.
pub const DEFAULT_SUB_SHARDS: usize = 16;

impl ShardPlan {
    /// The paper's five captures: Campus 1/Campus 2/Home 1/Home 2 over
    /// the 42-day Mar–May window (v1.2.52) and the Campus 1 14-day
    /// Jun/Jul re-capture (v1.4.0).
    pub fn paper() -> ShardPlan {
        let capture = |kind: VantageKind,
                       version: ClientVersion,
                       days: u32,
                       seed_tag: u64,
                       merge_slot: usize| {
            let window = if seed_tag == RECAPTURE_SEED_TAG {
                "jun-jul/v1.4.0"
            } else {
                "mar-may/v1.2.52"
            };
            CaptureShard {
                id: ShardId::from_label(kind.name()),
                label: format!(
                    "{}/days0-{days}/{window}",
                    kind.name().to_lowercase().replace(' ', "")
                ),
                kind,
                version,
                days,
                seed_tag,
                merge_slot,
                protocol: &spec::DROPBOX,
                link: None,
            }
        };
        use ClientVersion::{V1_2_52, V1_4_0};
        use VantageKind::{Campus1, Campus2, Home1, Home2};
        ShardPlan {
            shards: vec![
                capture(Campus2, V1_2_52, 42, 0, 1),
                capture(Home1, V1_2_52, 42, 0, 2),
                capture(Home2, V1_2_52, 42, 0, 3),
                capture(Campus1, V1_2_52, 42, 0, 0),
                capture(Campus1, V1_4_0, 14, RECAPTURE_SEED_TAG, 4),
            ],
            sub_shards: DEFAULT_SUB_SHARDS,
        }
    }

    /// A copy of the plan with every window truncated to at most `days`
    /// days — the identity tests use this to exercise the full shard
    /// machinery at test-sized populations.
    pub fn truncated(&self, days: u32) -> ShardPlan {
        let mut plan = self.clone();
        for shard in &mut plan.shards {
            shard.days = shard.days.min(days);
        }
        plan
    }

    /// A copy of the plan cut into `k` household ranges per capture.
    pub fn with_sub_shards(&self, k: usize) -> ShardPlan {
        let mut plan = self.clone();
        plan.sub_shards = k;
        plan
    }

    /// A copy of the plan with every capture's devices speaking the given
    /// provider protocol (the provider-matrix runs).
    pub fn with_protocol(&self, protocol: &'static ProviderSpec) -> ShardPlan {
        let mut plan = self.clone();
        for shard in &mut plan.shards {
            shard.protocol = protocol;
        }
        plan
    }

    /// A copy of the plan with every household forced onto the given
    /// access-link profile (the `--access wifi|lte` runs).
    pub fn with_link(&self, link: &'static AccessLink) -> ShardPlan {
        let mut plan = self.clone();
        for shard in &mut plan.shards {
            shard.link = Some(link);
        }
        plan
    }

    /// Cut every capture's population into contiguous household ranges
    /// and return them in schedule order (descending weight; ties broken
    /// by stable capture identity, then range start, so the schedule is
    /// itself deterministic).
    ///
    /// For each capture the ranges partition `0..addresses` exactly:
    /// range `r` of `k` is `[r·A/k, (r+1)·A/k)`, so concatenating the
    /// ranges in household order re-yields the serial sweep.
    pub fn household_shards(&self, scale: f64) -> Vec<HouseholdShard> {
        let k = self.sub_shards.max(1);
        let mut out: Vec<HouseholdShard> = Vec::new();
        for (ci, shard) in self.shards.iter().enumerate() {
            let addresses = shard.config(scale).addresses;
            let k_eff = k.min(addresses).max(1);
            for r in 0..k_eff {
                let households = r * addresses / k_eff..(r + 1) * addresses / k_eff;
                let weight = shard.range_weight(scale, &households);
                out.push(HouseholdShard {
                    capture: ci,
                    households,
                    weight,
                });
            }
        }
        out.sort_by(|a, b| {
            b.weight
                .cmp(&a.weight)
                .then_with(|| {
                    self.shards[a.capture]
                        .merge_slot
                        .cmp(&self.shards[b.capture].merge_slot)
                })
                .then_with(|| a.households.start.cmp(&b.households.start))
        });
        out
    }
}

/// Simulate every household shard of `plan` on up to `jobs` workers and
/// return the capture outputs in merge order (Campus 1, Campus 2, Home 1,
/// Home 2, re-capture for [`ShardPlan::paper`]).
///
/// Each completed range lands in its slot of a per-capture
/// [`nettrace::SpanMerge`]; releasing the merge in household order
/// re-assembles the capture's canonical record stream. `jobs == 1` runs
/// strictly serially on the calling thread; any other value — and any
/// [`ShardPlan::sub_shards`] count — changes wall-clock time only: the
/// returned outputs are byte-identical.
pub fn simulate_shards(
    plan: &ShardPlan,
    scale: f64,
    master_seed: u64,
    faults: &FaultPlan,
    jobs: usize,
) -> Vec<SimOutput> {
    let work = plan.household_shards(scale);
    let spans = par::fork_join(jobs, &work, |_, hs| {
        let shard = &plan.shards[hs.capture];
        simulate_vantage_span(
            &shard.config(scale),
            shard.version,
            shard.capture_seed(master_seed),
            faults,
            hs.households.clone(),
        )
    });

    // The deterministic merge, step 1: bucket completed spans by owning
    // capture, keyed by range start (schedule order -> household order).
    let mut per_capture: Vec<Vec<(usize, crate::driver::SpanOutput)>> =
        (0..plan.shards.len()).map(|_| Vec::new()).collect();
    for (hs, span) in work.iter().zip(spans) {
        per_capture[hs.capture].push((hs.households.start, span));
    }

    // Step 2: re-assemble each capture from its spans in household order,
    // then place captures by merge slot (canonical capture order).
    let mut slots: Vec<Option<SimOutput>> = (0..plan.shards.len()).map(|_| None).collect();
    for (ci, shard) in plan.shards.iter().enumerate() {
        let mut spans = std::mem::take(&mut per_capture[ci]);
        spans.sort_by_key(|(start, _)| *start);
        let mut merge = nettrace::SpanMerge::new(spans.len());
        let mut truths = Vec::new();
        let mut stats = VantageStats {
            lan_synced: 0,
            truth_users: Vec::new(),
            fault_stats: crate::driver::FaultStats::default(),
        };
        for (slot, (_start, span)) in spans.into_iter().enumerate() {
            merge.accept_span(slot, span.flows);
            truths.extend(span.truths);
            stats.lan_synced += span.stats.lan_synced;
            stats.truth_users.extend(span.stats.truth_users);
            stats.fault_stats.absorb(span.stats.fault_stats);
        }
        let config = shard.config(scale);
        let mut dataset = Dataset::new(shard.kind.name(), config.expose_dns, config.days);
        dataset.flows = merge.into_flows();
        assert!(
            slots[shard.merge_slot].is_none(),
            "merge slot {} assigned twice",
            shard.merge_slot
        );
        slots[shard.merge_slot] = Some(SimOutput {
            dataset,
            truths,
            lan_synced: stats.lan_synced,
            truth_users: stats.truth_users,
            fault_stats: stats.fault_stats,
        });
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(slot, out)| out.unwrap_or_else(|| panic!("merge slot {slot} unassigned")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_covers_the_five_captures() {
        let plan = ShardPlan::paper();
        assert_eq!(plan.shards.len(), 5);
        assert_eq!(plan.sub_shards, DEFAULT_SUB_SHARDS);
        // Merge slots are a permutation of 0..5.
        let mut slots: Vec<usize> = plan.shards.iter().map(|s| s.merge_slot).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
        // Derived capture weights reproduce the measured cost ordering
        // (Campus 2 > Home 1 > Home 2 > Campus 1 > re-capture).
        let weights: Vec<u64> = plan.shards.iter().map(|s| s.weight(1.0)).collect();
        let mut sorted = weights.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(
            weights, sorted,
            "captures must be cost-ordered: {weights:?}"
        );
        // Four 42-day Mar–May windows + one 14-day re-capture.
        assert_eq!(
            plan.shards.iter().filter(|s| s.days == 42).count(),
            4,
            "{plan:?}"
        );
        let recapture = plan
            .shards
            .iter()
            .find(|s| s.seed_tag == RECAPTURE_SEED_TAG)
            .expect("re-capture shard present");
        assert_eq!(recapture.days, 14);
        assert_eq!(recapture.kind, VantageKind::Campus1);
        assert_eq!(recapture.version, ClientVersion::V1_4_0);
        assert_eq!(recapture.merge_slot, 4);
    }

    #[test]
    fn household_shards_partition_every_population() {
        let plan = ShardPlan::paper();
        for scale in [0.01, 0.1, 1.0] {
            let work = plan.household_shards(scale);
            let expected: usize = plan
                .shards
                .iter()
                .map(|s| s.config(scale).addresses.min(plan.sub_shards))
                .sum();
            assert_eq!(work.len(), expected);
            for (ci, shard) in plan.shards.iter().enumerate() {
                let addresses = shard.config(scale).addresses;
                let mut ranges: Vec<Range<usize>> = work
                    .iter()
                    .filter(|hs| hs.capture == ci)
                    .map(|hs| hs.households.clone())
                    .collect();
                ranges.sort_by_key(|r| r.start);
                // Contiguous, disjoint, and covering 0..addresses.
                assert_eq!(ranges.first().unwrap().start, 0, "{}", shard.label);
                assert_eq!(ranges.last().unwrap().end, addresses, "{}", shard.label);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "{}", shard.label);
                }
            }
        }
    }

    #[test]
    fn household_shards_clamp_to_tiny_populations() {
        // More requested sub-shards than households: one range per
        // household, never an empty range.
        let plan = ShardPlan::paper().with_sub_shards(64);
        let work = plan.household_shards(0.001); // 8-address minimum
        assert!(work.iter().all(|hs| !hs.households.is_empty()));
        for (ci, shard) in plan.shards.iter().enumerate() {
            let addresses = shard.config(0.001).addresses;
            let count = work.iter().filter(|hs| hs.capture == ci).count();
            assert_eq!(count, addresses.min(64), "{}", shard.label);
        }
    }

    #[test]
    fn schedule_is_weight_ordered_and_deterministic() {
        let plan = ShardPlan::paper();
        let work = plan.household_shards(0.1);
        for w in work.windows(2) {
            assert!(w[0].weight >= w[1].weight, "schedule must be LPT-ordered");
        }
        // Weights derive from range size × days, so the heaviest unit of
        // work belongs to the heaviest capture (Campus 2, merge slot 1).
        assert_eq!(plan.shards[work[0].capture].merge_slot, 1);
        // Deterministic: same inputs, same schedule.
        let again = plan.household_shards(0.1);
        let key = |hs: &HouseholdShard| (hs.capture, hs.households.clone());
        assert!(work.iter().map(key).eq(again.iter().map(key)));
    }

    #[test]
    fn shard_stream_matches_the_driver_root_derivation() {
        // The shard's advertised seed stream must be exactly the root
        // stream simulate_vantage derives, or the contract docs lie.
        let plan = ShardPlan::paper();
        for shard in &plan.shards {
            let mut advertised = shard.stream(2012);
            let mut driver = Rng::new(shard.capture_seed(2012)).fork_named(shard.kind.name());
            for _ in 0..16 {
                assert_eq!(advertised.next_u64(), driver.next_u64(), "{}", shard.label);
            }
        }
    }

    #[test]
    fn truncation_preserves_identity_and_caps_days() {
        let plan = ShardPlan::paper().truncated(5);
        assert!(plan.shards.iter().all(|s| s.days == 5));
        assert_eq!(plan.shards.len(), 5);
        assert_eq!(plan.sub_shards, DEFAULT_SUB_SHARDS);
    }

    #[test]
    fn shard_outputs_match_direct_simulation() {
        // The shard wrapper is plumbing, not semantics: its output must
        // equal a direct simulate_vantage call with the historical
        // arguments.
        let plan = ShardPlan::paper().truncated(3);
        let shard = &plan.shards[0]; // Campus 2, the heavy one
        let via_shard = shard.simulate(0.012, 7, &FaultPlan::none());
        let mut config = VantageConfig::paper(shard.kind, 0.012);
        config.days = 3;
        let direct = simulate_vantage(&config, shard.version, 7, &FaultPlan::none());
        assert_eq!(via_shard.dataset.flows.len(), direct.dataset.flows.len());
        let bytes =
            |o: &SimOutput| -> u64 { o.dataset.flows.iter().map(|f| f.total_bytes()).sum() };
        assert_eq!(bytes(&via_shard), bytes(&direct));
    }

    #[test]
    fn sub_sharded_run_matches_whole_capture_simulation() {
        // The household-range cut is plumbing, not semantics: cutting a
        // capture into ranges and merging must reproduce the uncut run.
        let plan = ShardPlan::paper().truncated(2);
        let whole = simulate_shards(&plan.with_sub_shards(1), 0.012, 3, &FaultPlan::none(), 1);
        for k in [4, 16] {
            let cut = simulate_shards(&plan.with_sub_shards(k), 0.012, 3, &FaultPlan::none(), 1);
            assert_eq!(cut.len(), whole.len());
            for (a, b) in cut.iter().zip(&whole) {
                assert_eq!(a.dataset.flows.len(), b.dataset.flows.len(), "k={k}");
                assert_eq!(a.lan_synced, b.lan_synced, "k={k}");
                assert_eq!(a.truth_users, b.truth_users, "k={k}");
                let bytes = |o: &SimOutput| -> u64 {
                    o.dataset.flows.iter().map(|f| f.total_bytes()).sum()
                };
                assert_eq!(bytes(a), bytes(b), "k={k}");
            }
        }
    }

    #[test]
    fn merge_order_is_canonical_regardless_of_schedule_order() {
        let plan = ShardPlan::paper().truncated(2);
        let outs = simulate_shards(&plan, 0.012, 3, &FaultPlan::none(), 2);
        assert_eq!(outs.len(), 5);
        let names: Vec<&str> = outs.iter().map(|o| o.dataset.name.as_str()).collect();
        assert_eq!(
            names,
            ["Campus 1", "Campus 2", "Home 1", "Home 2", "Campus 1"],
            "merge must follow canonical capture order, not schedule order"
        );
        assert_eq!(outs[4].dataset.days, 2);
    }
}

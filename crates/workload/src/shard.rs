//! Shard decomposition of the reproduction's capture set.
//!
//! The paper's dataset is a union of independent **captures**: four
//! vantage points monitored over the 42-day Mar–May window, plus the
//! Campus 1 Jun/Jul re-capture with Dropbox 1.4.0 (Table 4). Each capture
//! is a pure function of `(vantage point, day window, client version,
//! seed, fault plan)` — separate deployments, separate probes, separate
//! seed streams — which makes *(vantage point × simulated day window)*
//! the natural shard axis for parallel execution.
//!
//! [`ShardPlan::paper`] enumerates those five shards; [`simulate_shards`]
//! runs them on [`simcore::par`]'s deterministic fork-join executor and
//! merges the outputs in canonical capture order. Because every shard
//! draws from its own [`stream`](CaptureShard::stream) and shares no
//! mutable state, the merged result is **byte-identical at every
//! `--jobs` value** — `crates/workload/tests/parallel_identity.rs` pins
//! this, and the `fault_identity` digests pin each shard's stream against
//! historical artifacts.
//!
//! Finer windows (splitting one capture's days across workers) are
//! deliberately **not** offered: within a capture, commits propagate to
//! arbitrarily later sessions (the login synchronisation burst), the
//! chunk store deduplicates across the whole window, and per-flow
//! sequencing (client ports, link-fault draws) is a single stream — a
//! day-window cut inside a capture would either change bytes or
//! re-simulate everything it cut away. `DESIGN.md` §7 documents this
//! boundary as part of the determinism contract.

use crate::driver::{simulate_vantage, SimOutput};
use crate::vantage::{VantageConfig, VantageKind};
use dropbox::client::ClientVersion;
use simcore::faults::FaultPlan;
use simcore::par;
use simcore::{Rng, ShardId};

/// One independently simulable capture: a vantage point observed over one
/// simulated day window with one client generation.
#[derive(Clone, Debug)]
pub struct CaptureShard {
    /// Stable identity (derived from the vantage-point name — the label
    /// [`simulate_vantage`] has always forked its root stream from).
    pub id: ShardId,
    /// Human-readable shard name, e.g. `campus1/days0-42/v1.2.52`.
    pub label: String,
    /// Which vantage point.
    pub kind: VantageKind,
    /// Client generation active during the window.
    pub version: ClientVersion,
    /// Length of the simulated day window.
    pub days: u32,
    /// Mixed into the master seed to separate same-vantage windows
    /// (`0x14` tags the Jun/Jul re-capture; `0` the Mar–May window —
    /// the historical derivation, pinned by the committed `results/`).
    pub seed_tag: u64,
    /// Deterministic relative cost estimate (measured serial seconds at
    /// scale 0.1, normalised; see `BENCH_parallel.json`). Only scheduling
    /// reads this — output never depends on it.
    pub weight: u64,
    /// Position of this shard's output in the merged capture list.
    pub merge_slot: usize,
}

impl CaptureShard {
    /// The capture-level seed: the master seed with the window tag mixed
    /// in. The four Mar–May shards use the master seed unchanged, so
    /// every historical `simulate_vantage(config, version, seed, plan)`
    /// call is shard 0–3 of a plan — bytes pinned by `fault_identity`.
    pub fn capture_seed(&self, master_seed: u64) -> u64 {
        master_seed ^ self.seed_tag
    }

    /// The shard's independent SplitMix64-derived seed stream — exactly
    /// the root stream [`simulate_vantage`] derives internally for this
    /// capture.
    pub fn stream(&self, master_seed: u64) -> Rng {
        par::shard_stream(self.capture_seed(master_seed), self.id)
    }

    /// Vantage configuration for this shard at a population scale.
    pub fn config(&self, scale: f64) -> VantageConfig {
        let mut config = VantageConfig::paper(self.kind, scale);
        config.days = self.days;
        config
    }

    /// Simulate this shard. Pure: the output is a function of
    /// `(self, scale, master_seed, faults)` only.
    pub fn simulate(&self, scale: f64, master_seed: u64, faults: &FaultPlan) -> SimOutput {
        simulate_vantage(
            &self.config(scale),
            self.version,
            self.capture_seed(master_seed),
            faults,
        )
    }
}

/// An ordered set of capture shards. The vector order is the *schedule*
/// (descending expected cost, so greedy workers approximate LPT); merged
/// outputs follow each shard's [`merge_slot`](CaptureShard::merge_slot)
/// instead, so scheduling can never reorder results.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Shards in scheduling order.
    pub shards: Vec<CaptureShard>,
}

/// Seed tag of the Campus 1 Jun/Jul re-capture (kept verbatim from the
/// original serial driver so the committed artifact corpus, generated
/// before sharding existed, stays byte-valid).
pub const RECAPTURE_SEED_TAG: u64 = 0x14;

impl ShardPlan {
    /// The paper's five captures: Campus 1/Campus 2/Home 1/Home 2 over
    /// the 42-day Mar–May window (v1.2.52) and the Campus 1 14-day
    /// Jun/Jul re-capture (v1.4.0), ordered by descending measured cost.
    pub fn paper() -> ShardPlan {
        let capture = |kind: VantageKind,
                       version: ClientVersion,
                       days: u32,
                       seed_tag: u64,
                       weight: u64,
                       merge_slot: usize| {
            let window = if seed_tag == RECAPTURE_SEED_TAG {
                "jun-jul/v1.4.0"
            } else {
                "mar-may/v1.2.52"
            };
            CaptureShard {
                id: ShardId::from_label(kind.name()),
                label: format!(
                    "{}/days0-{days}/{window}",
                    kind.name().to_lowercase().replace(' ', "")
                ),
                kind,
                version,
                days,
                seed_tag,
                weight,
                merge_slot,
            }
        };
        use ClientVersion::{V1_2_52, V1_4_0};
        use VantageKind::{Campus1, Campus2, Home1, Home2};
        // Weights: serial seconds at scale 0.1 (see BENCH_parallel.json),
        // ×10 and rounded. Campus 2 dominates, so it must be claimed
        // first for the 2-worker schedule to beat 1.8× ideal speedup.
        ShardPlan {
            shards: vec![
                capture(Campus2, V1_2_52, 42, 0, 116, 1),
                capture(Home1, V1_2_52, 42, 0, 90, 2),
                capture(Home2, V1_2_52, 42, 0, 37, 3),
                capture(Campus1, V1_2_52, 42, 0, 5, 0),
                capture(Campus1, V1_4_0, 14, RECAPTURE_SEED_TAG, 3, 4),
            ],
        }
    }

    /// A copy of the plan with every window truncated to at most `days`
    /// days — the identity tests use this to exercise the full shard
    /// machinery at test-sized populations.
    pub fn truncated(&self, days: u32) -> ShardPlan {
        let mut plan = self.clone();
        for shard in &mut plan.shards {
            shard.days = shard.days.min(days);
        }
        plan
    }
}

/// Simulate every shard of `plan` on up to `jobs` workers and return the
/// outputs in merge order (Campus 1, Campus 2, Home 1, Home 2,
/// re-capture for [`ShardPlan::paper`]).
///
/// `jobs == 1` runs strictly serially on the calling thread; any other
/// value changes wall-clock time only — the returned outputs are
/// byte-identical for every `jobs`.
pub fn simulate_shards(
    plan: &ShardPlan,
    scale: f64,
    master_seed: u64,
    faults: &FaultPlan,
    jobs: usize,
) -> Vec<SimOutput> {
    let outputs = par::fork_join(jobs, &plan.shards, |_, shard| {
        shard.simulate(scale, master_seed, faults)
    });
    // The deterministic merge: schedule order -> canonical capture order.
    let mut slots: Vec<Option<SimOutput>> = (0..outputs.len()).map(|_| None).collect();
    for (shard, out) in plan.shards.iter().zip(outputs) {
        assert!(
            slots[shard.merge_slot].is_none(),
            "merge slot {} assigned twice",
            shard.merge_slot
        );
        slots[shard.merge_slot] = Some(out);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(slot, out)| out.unwrap_or_else(|| panic!("merge slot {slot} unassigned")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_covers_the_five_captures() {
        let plan = ShardPlan::paper();
        assert_eq!(plan.shards.len(), 5);
        // Merge slots are a permutation of 0..5.
        let mut slots: Vec<usize> = plan.shards.iter().map(|s| s.merge_slot).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
        // Schedule is LPT: descending weight.
        let weights: Vec<u64> = plan.shards.iter().map(|s| s.weight).collect();
        let mut sorted = weights.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(weights, sorted, "shards must be cost-ordered");
        // Four 42-day Mar–May windows + one 14-day re-capture.
        assert_eq!(
            plan.shards.iter().filter(|s| s.days == 42).count(),
            4,
            "{plan:?}"
        );
        let recapture = plan
            .shards
            .iter()
            .find(|s| s.seed_tag == RECAPTURE_SEED_TAG)
            .expect("re-capture shard present");
        assert_eq!(recapture.days, 14);
        assert_eq!(recapture.kind, VantageKind::Campus1);
        assert_eq!(recapture.version, ClientVersion::V1_4_0);
        assert_eq!(recapture.merge_slot, 4);
    }

    #[test]
    fn shard_stream_matches_the_driver_root_derivation() {
        // The shard's advertised seed stream must be exactly the root
        // stream simulate_vantage derives, or the contract docs lie.
        let plan = ShardPlan::paper();
        for shard in &plan.shards {
            let mut advertised = shard.stream(2012);
            let mut driver = Rng::new(shard.capture_seed(2012)).fork_named(shard.kind.name());
            for _ in 0..16 {
                assert_eq!(advertised.next_u64(), driver.next_u64(), "{}", shard.label);
            }
        }
    }

    #[test]
    fn truncation_preserves_identity_and_caps_days() {
        let plan = ShardPlan::paper().truncated(5);
        assert!(plan.shards.iter().all(|s| s.days == 5));
        assert_eq!(plan.shards.len(), 5);
    }

    #[test]
    fn shard_outputs_match_direct_simulation() {
        // The shard wrapper is plumbing, not semantics: its output must
        // equal a direct simulate_vantage call with the historical
        // arguments.
        let plan = ShardPlan::paper().truncated(3);
        let shard = &plan.shards[0]; // Campus 2, the heavy one
        let via_shard = shard.simulate(0.012, 7, &FaultPlan::none());
        let mut config = VantageConfig::paper(shard.kind, 0.012);
        config.days = 3;
        let direct = simulate_vantage(&config, shard.version, 7, &FaultPlan::none());
        assert_eq!(via_shard.dataset.flows.len(), direct.dataset.flows.len());
        let bytes =
            |o: &SimOutput| -> u64 { o.dataset.flows.iter().map(|f| f.total_bytes()).sum() };
        assert_eq!(bytes(&via_shard), bytes(&direct));
    }

    #[test]
    fn merge_order_is_canonical_regardless_of_schedule_order() {
        let plan = ShardPlan::paper().truncated(2);
        let outs = simulate_shards(&plan, 0.012, 3, &FaultPlan::none(), 2);
        assert_eq!(outs.len(), 5);
        let names: Vec<&str> = outs.iter().map(|o| o.dataset.name.as_str()).collect();
        assert_eq!(
            names,
            ["Campus 1", "Campus 2", "Home 1", "Home 2", "Campus 1"],
            "merge must follow canonical capture order, not schedule order"
        );
        assert_eq!(outs[4].dataset.days, 2);
    }
}

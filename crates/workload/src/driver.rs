//! The end-to-end vantage-point simulation.
//!
//! [`simulate_vantage`] plays one vantage point's whole capture:
//!
//! 1. builds the population and registers devices/namespaces with the
//!    meta-data plane,
//! 2. schedules every device's sessions and file events,
//! 3. orders all commits (local uploads and external-producer commits)
//!    chronologically and propagates them to the namespace members —
//!    on-line members download after a notification delay, off-line
//!    members queue the work for their next session start (the login
//!    synchronisation burst of Fig. 15(c)), same-LAN members are served by
//!    the LAN Sync Protocol and generate no WAN traffic (Sec. 5.2),
//! 4. renders every resulting connection through the `dropbox` protocol
//!    engine and the `tcpmodel` network onto a `tstat::Monitor`,
//! 5. adds web/API/direct-link usage and the flow-fidelity background
//!    services.
//!
//! The output pairs each monitored flow record with its generator ground
//! truth so the analysis layer's inferences can be scored.

use crate::activity::{device_sessions, file_events, FileEvent, Session};
use crate::audit::{CommitRecord, DeliveryKind, Excuse, SyncAudit};
use crate::population::{self, Behavior, Household};
use crate::providers;
use crate::vantage::{Access, VantageConfig};
use dnssim::DnsDirectory;
use dropbox::client::{ChunkWork, ClientVersion, RetryPolicy, SyncConfig, SyncEngine};
use dropbox::content::{sample_file_size, ChunkId, Content};
use dropbox::lan_sync::{Announcement, LanSync};
use dropbox::metadata::{FileId, HostInt, MetadataServer, NamespaceId, UserId};
use dropbox::notification::{
    notification_flow, notification_flow_named, poll_check_flow, reconnect_probe_flow,
    reconnect_probe_flow_named, SessionEnd,
};
use dropbox::session::{plan_session, OfflineQueue, PhaseKind, SessionPolicy};
use dropbox::spec::{Naming, NotifyStyle, ProviderSpec};
use dropbox::storage::ChunkStore;
use dropbox::web::{api_session_flows, direct_link_flow, web_session_flows};
use dropbox::{FlowSpec, FlowTruth};
use dropbox_analysis::Dataset;
use nettrace::{Endpoint, FlowKey, FlowRecord, Ipv4};
use simcore::faults::{FaultPlan, FlowFaults};
use simcore::{dist, par, Rng, ShardId, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::ops::Range;
use tcpmodel::{simulate_faulty, TcpParams};
use tstat::Monitor;

/// Ground-truth fault/recovery counters accumulated over a simulated
/// capture. All zero when the run's [`FaultPlan`] is inactive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Retry attempts by sync clients (outage waits plus transfer
    /// re-offers after a mid-flow reset).
    pub sync_retries: u64,
    /// Storage flows cut mid-transfer by an injected reset.
    pub aborted_flows: u64,
    /// Notification connection fragments that ended in an injected abort
    /// (reconnect churn on flaky links).
    pub notify_aborts: u64,
    /// Failed notification reconnect probes sent during control-plane
    /// outages (the build-up of the reconnect storm).
    pub reconnect_attempts: u64,
    /// Successful notification reconnects after an outage end (the storm
    /// itself).
    pub reconnects: u64,
    /// Fallback metadata polls rendered while the notification plane was
    /// down.
    pub fallback_polls: u64,
    /// Local commits queued through a metadata outage before flushing.
    pub offline_commits: u64,
}

impl FaultStats {
    /// Accumulate another household's (or span's) counters.
    pub fn absorb(&mut self, other: FaultStats) {
        self.sync_retries += other.sync_retries;
        self.aborted_flows += other.aborted_flows;
        self.notify_aborts += other.notify_aborts;
        self.reconnect_attempts += other.reconnect_attempts;
        self.reconnects += other.reconnects;
        self.fallback_polls += other.fallback_polls;
        self.offline_commits += other.offline_commits;
    }
}

/// Result of one vantage-point simulation.
pub struct SimOutput {
    /// The dataset (monitored flow records + background records).
    pub dataset: Dataset,
    /// Ground truth aligned with `dataset.flows` (`None` for background).
    pub truths: Vec<Option<FlowTruth>>,
    /// Number of chunk transfers served by the LAN Sync Protocol (never
    /// seen at the probe).
    pub lan_synced: u64,
    /// Ground-truth user accounts: groups of device ids (`host_int`s)
    /// belonging to one user, for scoring the Sec. 2.3.1 inference.
    pub truth_users: Vec<Vec<u64>>,
    /// Fault-injection ground truth (retries, aborts, notification churn).
    pub fault_stats: FaultStats,
}

impl SimOutput {
    /// The record stream with its aligned ground truth — what the
    /// validation harness folds over in a single pass.
    pub fn flows_with_truth(&self) -> impl Iterator<Item = (&FlowRecord, &Option<FlowTruth>)> {
        self.dataset.flows.iter().zip(&self.truths)
    }
}

/// Provider-aware notification session flow: the Dropbox spec routes
/// through the `notifyX` pool (drawing the pool pick from `rng`, exactly
/// as the pre-refactor driver did); flat-named providers pin their single
/// notify front.
#[allow(clippy::too_many_arguments)]
fn spec_notification_flow(
    proto: &'static ProviderSpec,
    dns: &DnsDirectory,
    host: HostInt,
    namespaces: &[NamespaceId],
    span: SimDuration,
    changes: u32,
    end: SessionEnd,
    rng: &mut Rng,
) -> FlowSpec {
    match proto.naming {
        Naming::DropboxDns => notification_flow(dns, host, namespaces, span, changes, end, rng),
        Naming::Flat { .. } => notification_flow_named(
            proto.notify_name(),
            host,
            namespaces,
            span,
            changes,
            end,
            rng,
        ),
    }
}

/// Provider-aware counterpart of `reconnect_probe_flow` (see
/// [`spec_notification_flow`] for the naming split).
fn spec_reconnect_probe_flow(
    proto: &'static ProviderSpec,
    dns: &DnsDirectory,
    host: HostInt,
    namespaces: &[NamespaceId],
    rng: &mut Rng,
) -> FlowSpec {
    match proto.naming {
        Naming::DropboxDns => reconnect_probe_flow(dns, host, namespaces, rng),
        Naming::Flat { .. } => {
            reconnect_probe_flow_named(proto.notify_name(), host, namespaces, rng)
        }
    }
}

/// A commit of chunks into a namespace, in global time order.
struct Commit {
    at: SimTime,
    ns: NamespaceId,
    committer: Option<usize>, // global device index; None = external producer
    chunks: Vec<ChunkWork>,
    /// Chunk versions this commit replaces (the previous ids of edited
    /// chunks) — what offline-queue coalescing drops when the same file
    /// is edited again before the metadata plane recovers.
    superseded: Vec<ChunkId>,
}

/// Work queued for a device. Batches carry the ledger ids of the commits
/// they deliver so the sync audit can match deliveries to commits.
#[derive(Default)]
struct DeviceQueue {
    /// (deliver_at, commit id, chunks) for downloads while on-line.
    online_downloads: Vec<(SimTime, u64, Vec<ChunkWork>)>,
    /// Per-commit chunk batches waiting for the next session start.
    pending: Vec<(SimTime, u64, Vec<ChunkWork>)>,
    /// Pending commit batches per session index (resolved before render).
    pending_at_start: BTreeMap<usize, Vec<(Vec<u64>, Vec<ChunkWork>)>>,
}

/// Flattened device handle (local to one household).
struct Dev {
    host_int: HostInt,
    namespaces: Vec<NamespaceId>,
    sessions: Vec<Session>,
    behavior: Behavior,
    version: ClientVersion,
    abnormal: bool,
    nat_afflicted: bool,
    workstation: bool,
}

impl Dev {
    /// Index of the session whose `[start, end]` interval contains `t`.
    ///
    /// `sessions` is disjoint and ordered (`activity::device_sessions`
    /// merges overlaps), so the first session with `end >= t` is the only
    /// candidate — binary search instead of a linear scan.
    fn session_containing(&self, t: SimTime) -> Option<usize> {
        let i = self.sessions.partition_point(|s| s.end < t);
        match self.sessions.get(i) {
            Some(s) if s.start <= t && t <= s.end => Some(i),
            _ => None,
        }
    }

    /// Index of the first session starting strictly after `t`.
    fn next_session_after(&self, t: SimTime) -> Option<usize> {
        let i = self.sessions.partition_point(|s| s.start <= t);
        (i < self.sessions.len()).then_some(i)
    }
}

/// End of the (possibly chained) metadata outage covering `t` — `t`
/// itself when the plane is up. Pure; draws nothing.
fn meta_recovery(faults: &FaultPlan, t: SimTime) -> SimTime {
    let mut at = t;
    for _ in 0..64 {
        match faults.meta_outage_end(at) {
            Some(e) if e > at => at = e,
            _ => break,
        }
    }
    at
}

/// Earliest instant a committer can flush a commit made at `t` while the
/// metadata plane was down: the first moment at or after recovery at
/// which the device is on-line *and* the plane is up. `None` when the
/// capture ends first (no later session) — those commits never reach the
/// server, as in reality.
fn flush_time(dev: &Dev, t: SimTime, faults: &FaultPlan) -> Option<SimTime> {
    let mut probe = t;
    for _ in 0..64 {
        let recover = meta_recovery(faults, probe);
        let online = if dev.session_containing(recover).is_some() {
            Some(recover)
        } else {
            dev.next_session_after(recover)
                .map(|si| dev.sessions[si].start)
        };
        let at = online?;
        if faults.meta_available(at) {
            return Some(at);
        }
        // The next session itself starts inside another outage: chain on.
        probe = at;
    }
    None
}

/// Drain an offline queue into the committer's upload schedule at its
/// flush instant. Batches keep their commit tags so the render pass can
/// journal each commit's flush exactly once.
fn flush_queue(
    q: &mut OfflineQueue,
    at: SimTime,
    di: usize,
    uploads: &mut [Vec<(SimTime, Vec<u64>, Vec<ChunkWork>)>],
) {
    for b in q.drain() {
        uploads[di].push((at, b.tags, b.chunks));
    }
}

/// Capture-level outputs that are not the record stream itself: what the
/// streaming driver returns alongside the records it emits.
pub struct VantageStats {
    /// Number of chunk transfers served by the LAN Sync Protocol (never
    /// seen at the probe).
    pub lan_synced: u64,
    /// Ground-truth user accounts (groups of `host_int`s).
    pub truth_users: Vec<Vec<u64>>,
    /// Fault-injection ground truth.
    pub fault_stats: FaultStats,
}

/// Simulate one vantage point. `version` selects the client generation
/// (v1.2.52 for the Mar–May capture, v1.4.0 for the Jun/Jul re-capture of
/// Table 4). `faults` injects network and server failures: with
/// [`FaultPlan::none`] no fault branch runs and no extra randomness is
/// drawn, so the output is byte-identical to a fault-free build; with an
/// active plan, flows pick up link degradations, storage transfers can be
/// cut and resumed, and notification connections churn — all still a
/// deterministic function of `(config, version, seed, plan)`.
///
/// This is the materialising wrapper over the full-range household sweep
/// ([`simulate_vantage_span`] over `0..config.addresses`).
pub fn simulate_vantage(
    config: &VantageConfig,
    version: ClientVersion,
    seed: u64,
    faults: &FaultPlan,
) -> SimOutput {
    simulate_vantage_span(config, version, seed, faults, 0..config.addresses)
        .into_sim_output(config)
}

/// Audited form of [`simulate_vantage`]: additionally returns the
/// [`SyncAudit`] ledger of every commit, expected delivery, actual
/// delivery, excuse, flush, and reconnect event — the ground truth the
/// chaos-soak convergence oracle ([`crate::oracle::check`]) judges after
/// the fault plan quiesces. Recording draws no randomness and mutates no
/// simulation state, so the record stream is byte-identical to the
/// unaudited run.
pub fn simulate_vantage_audited(
    config: &VantageConfig,
    version: ClientVersion,
    seed: u64,
    faults: &FaultPlan,
) -> (SimOutput, SyncAudit) {
    let mut audit = SyncAudit::new();
    let mut flows: Vec<FlowRecord> = Vec::new();
    let mut truths: Vec<Option<FlowTruth>> = Vec::new();
    let stats = simulate_span_impl(
        config,
        version,
        seed,
        faults,
        0..config.addresses,
        &mut |rec, truth| {
            flows.push(rec);
            truths.push(truth);
        },
        Some(&mut audit),
    );
    (
        SpanOutput {
            flows,
            truths,
            stats,
        }
        .into_sim_output(config),
        audit,
    )
}

/// Streaming form of [`simulate_vantage`]: completed records are emitted
/// into `sink` as the monitor finalises them, in the same canonical order
/// the materialising wrapper stores them — the capture is never held in
/// memory. Ground truth is not emitted (use [`simulate_vantage`] when the
/// validation harness needs it).
pub fn simulate_vantage_into(
    config: &VantageConfig,
    version: ClientVersion,
    seed: u64,
    faults: &FaultPlan,
    sink: &mut dyn nettrace::FlowSink,
) -> VantageStats {
    simulate_span_impl(
        config,
        version,
        seed,
        faults,
        0..config.addresses,
        &mut |rec, _truth| sink.accept(rec),
        None,
    )
}

/// Materialised output of one household-range span of a capture: the
/// flows and aligned ground truth of households `lo..hi`, plus the span's
/// share of the capture-level counters.
///
/// Spans are the unit the household-range shards of `workload::shard`
/// execute in parallel. Concatenating the spans of any contiguous
/// partition of `0..config.addresses` — flows, truths, `truth_users`, and
/// summed counters alike — reproduces the full-capture output byte for
/// byte, because every household draws from its own seed stream
/// ([`par::household_stream`]) and touches only household-local state.
pub struct SpanOutput {
    /// Flow records in canonical order (households by index; within one
    /// household: device flows, then web/API flows, then background
    /// provider flows).
    pub flows: Vec<FlowRecord>,
    /// Ground truth aligned with `flows` (`None` for background records).
    pub truths: Vec<Option<FlowTruth>>,
    /// The span's share of the capture-level counters.
    pub stats: VantageStats,
}

impl SpanOutput {
    /// Repackage a full-range span as the capture-level [`SimOutput`].
    fn into_sim_output(self, config: &VantageConfig) -> SimOutput {
        let mut dataset = Dataset::new(config.kind.name(), config.expose_dns, config.days);
        dataset.flows = self.flows;
        SimOutput {
            dataset,
            truths: self.truths,
            lan_synced: self.stats.lan_synced,
            truth_users: self.stats.truth_users,
            fault_stats: self.stats.fault_stats,
        }
    }
}

/// Simulate the contiguous household range `households` of one
/// vantage-point capture and materialise its output.
pub fn simulate_vantage_span(
    config: &VantageConfig,
    version: ClientVersion,
    seed: u64,
    faults: &FaultPlan,
    households: Range<usize>,
) -> SpanOutput {
    let mut flows: Vec<FlowRecord> = Vec::new();
    let mut truths: Vec<Option<FlowTruth>> = Vec::new();
    let stats = simulate_span_impl(
        config,
        version,
        seed,
        faults,
        households,
        &mut |rec, truth| {
            flows.push(rec);
            truths.push(truth);
        },
        None,
    );
    SpanOutput {
        flows,
        truths,
        stats,
    }
}

/// The single driver core every entry point shares: sweeps the requested
/// household range in index order and hands each completed record (with
/// its ground truth) to `emit`. The closure indirection draws no
/// randomness, so the record stream is byte-identical however it is
/// consumed.
fn simulate_span_impl(
    config: &VantageConfig,
    version: ClientVersion,
    seed: u64,
    faults: &FaultPlan,
    households: Range<usize>,
    emit: &mut dyn FnMut(FlowRecord, Option<FlowTruth>),
    mut audit: Option<&mut SyncAudit>,
) -> VantageStats {
    assert!(
        households.end <= config.addresses,
        "household range {households:?} exceeds population {}",
        config.addresses
    );
    // The capture's root stream IS its shard stream: derived from
    // (capture seed, vantage label) through SplitMix64, so running this
    // capture as `shard::CaptureShard` household ranges on N workers or
    // calling it directly here consumes identical randomness byte for
    // byte.
    let capture = ShardId::from_label(config.kind.name());
    let root_rng = par::shard_stream(seed, capture);
    // Capture-wide constants of the population plane. Deriving them is
    // pure (non-advancing forks of the population stream), so every span
    // computes identical values without communicating.
    let pop_root = root_rng.fork_named("population");
    let host_base = population::host_int_base(&pop_root);
    let abnormal = population::abnormal_household(config, &pop_root);
    let providers_root = root_rng.fork_named("providers");

    // The Dropbox zone plus (for non-Dropbox specs) the provider's flat
    // deployment. Registration is name-keyed and empty for the Dropbox
    // spec, so default runs see a byte-identical directory.
    let mut dns = DnsDirectory::new();
    for (name, ip) in config.protocol.dns_entries() {
        dns.register(name, ip);
    }
    let dns = dns;
    let policy = RetryPolicy::default();
    let mut stats = VantageStats {
        lan_synced: 0,
        truth_users: Vec::new(),
        fault_stats: FaultStats::default(),
    };
    for idx in households {
        let hh = population::generate_household(
            config,
            version,
            &pop_root,
            idx,
            host_base,
            abnormal == Some(idx),
        );
        simulate_household(
            config,
            version,
            seed,
            capture,
            faults,
            &dns,
            &policy,
            idx,
            &hh,
            &providers_root,
            &mut stats,
            emit,
            audit.as_deref_mut(),
        );
    }
    stats
}

/// Play one household's whole capture — registration, commit ordering,
/// propagation, rendered device flows, web/API usage, and background
/// providers. Every random draw descends from the household's own stream
/// ([`par::household_stream`]) and every piece of mutable state (metadata
/// plane, chunk store, monitor, ephemeral-port counter, LAN subnet) is
/// household-local, so households can be grouped into ranges arbitrarily
/// without any of them observing the cut.
#[allow(clippy::too_many_arguments)]
fn simulate_household(
    config: &VantageConfig,
    version: ClientVersion,
    seed: u64,
    capture: ShardId,
    faults: &FaultPlan,
    dns: &DnsDirectory,
    policy: &RetryPolicy,
    idx: usize,
    hh: &Household,
    providers_root: &Rng,
    stats: &mut VantageStats,
    emit: &mut dyn FnMut(FlowRecord, Option<FlowTruth>),
    mut audit: Option<&mut SyncAudit>,
) {
    // Every stream below descends from this one: a pure function of
    // (capture seed, capture id, household index) — never of the range
    // cut, the worker, or `--jobs` (simlint's `shard-seed` rule).
    let hh_rng = par::household_stream(seed, capture, idx as u64);
    let plan_active = faults.is_active();
    let mut fault_stats = FaultStats::default();
    // Per-household monitor: `play` below observes each flow's DNS name
    // just before processing the flow, so name→address labelling never
    // depends on what other households resolved.
    let mut monitor = Monitor::new(config.expose_dns);
    // Ephemeral client ports count per household (each client churns its
    // own source ports), so flow keys are independent of range grouping.
    let mut port_counter: u32 = 0;
    // Dedicated stream for per-flow link-fault decisions, so fault draws
    // never perturb the schedule/content/render streams.
    let mut link_fault_rng = hh_rng.fork_named("faults");
    let mut scratch: Vec<nettrace::Packet> = Vec::new();

    let mut play = |spec: &FlowSpec,
                    at: SimTime,
                    client_ip: Ipv4,
                    access: Access,
                    day: u32,
                    monitor: &mut Monitor,
                    rng: &mut Rng,
                    scratch: &mut Vec<nettrace::Packet>| {
        let Some(server_ip) = dns.resolve(&spec.server_name) else {
            return;
        };
        monitor.observe_dns(&spec.server_name, server_ip);
        port_counter = port_counter.wrapping_add(1);
        let client = Endpoint::new(client_ip, (10_000 + (port_counter % 50_000)) as u16);
        let server = Endpoint::new(server_ip, spec.port);
        // Small household-stable spread on top of the base RTT so the
        // CDFs of Fig. 6 show the narrow band the paper measures.
        let spread = SimDuration::from_millis((client_ip.0 as u64 * 7) % 6);
        // The storage/control RTT split of Fig. 6, plus the provider's
        // datacenter-placement surcharge (zero for Dropbox, whose measured
        // RTTs *are* the baseline).
        let placement = &config.protocol.placement;
        let outer = spread
            + if config.protocol.is_storage_name(&spec.server_name) {
                config.storage_rtt + placement.storage_extra()
            } else {
                config.control_rtt_on(day) + placement.control_extra()
            };
        let path = config.path(access, outer, rng);
        let tcp = match spec.truth {
            _ if matches!(spec.truth, FlowTruth::Notification) => TcpParams::era_2012_v1(),
            _ => match version {
                ClientVersion::V1_2_52 => TcpParams::era_2012_v1(),
                ClientVersion::V1_4_0 => TcpParams::era_2012_v14(),
            },
        };
        // Merge the flow's intrinsic faults (e.g. a recovering upload's
        // scripted reset) with link-level faults drawn from the plan. With
        // an inactive plan nothing is drawn and `merged` is the spec's own
        // profile (normally `None`), keeping the fault-free output
        // byte-identical.
        let merged = if plan_active {
            FlowFaults::merged(spec.faults, faults.link_faults(&mut link_fault_rng))
        } else {
            spec.faults
        };
        scratch.clear();
        simulate_faulty(
            at,
            FlowKey::new(client, server),
            &spec.dialogue,
            &path,
            &tcp,
            merged.as_ref(),
            rng,
            scratch,
        );
        if let Some(rec) = monitor.process_flow(scratch) {
            emit(rec, Some(spec.truth.clone()));
        }
    };

    // ---- Dropbox sync planes (client households only) -------------------
    if let Some(behavior) = hh.behavior {
        // Household-local server state. Namespace ids allocate from a
        // per-household base so the merged capture still looks like one
        // metadata plane; chunk contents are household-unique, so a local
        // chunk store dedups exactly as a capture-wide one would.
        let store = ChunkStore::new();
        let mut md = MetadataServer::with_ns_base(((idx as u64) + 1) << 32);
        let user = UserId(1_000 + idx as u64);
        let mut sched_rng = hh_rng.fork_named("schedules");

        // ---- Register devices and namespaces ----------------------------
        let mut devs: Vec<Dev> = Vec::new();
        let mut ns_members: BTreeMap<NamespaceId, Vec<usize>> = BTreeMap::new();
        let mut fed_namespaces: Vec<NamespaceId> = Vec::new();

        // Shared-folder pool of the household: enough folders so that the
        // most connected device reaches its namespace count.
        let max_ns = hh
            .devices
            .iter()
            .map(|d| d.namespace_count)
            .max()
            .unwrap_or(1);
        // Shared-folder pool of the household, created unlinked; devices
        // join exactly the folders their namespace count calls for.
        let mut pool: Vec<NamespaceId> = Vec::new();
        while pool.len() < max_ns.saturating_sub(1) {
            let ns = md.create_namespace_unlinked();
            // External feed probability by behaviour: download-only
            // households subscribe to folders produced elsewhere.
            let fed_p = match behavior {
                Behavior::DownloadOnly => 0.85,
                Behavior::Heavy => 0.50,
                Behavior::UploadOnly => 0.10,
                Behavior::Occasional => 0.03,
            };
            if sched_rng.chance(fed_p) {
                fed_namespaces.push(ns);
            }
            pool.push(ns);
        }
        stats
            .truth_users
            .push(hh.devices.iter().map(|d| d.host_int).collect());
        let mut root_marked = false;
        for d in hh.devices.iter() {
            let host = HostInt(d.host_int);
            let root = md.register_host(user, host);
            // Download-only (and some heavy) accounts receive content into
            // their *root* from their own unmonitored devices elsewhere —
            // the mirror image of the paper's upload-only users submitting
            // "to geographically dispersed devices".
            if !root_marked {
                root_marked = true;
                let root_fed_p = match behavior {
                    Behavior::DownloadOnly => 0.85,
                    Behavior::Heavy => 0.35,
                    _ => 0.0,
                };
                if root_fed_p > 0.0 && sched_rng.chance(root_fed_p) {
                    fed_namespaces.push(root);
                }
            }
            // Link this device to the first (namespace_count - 1) folders.
            let mut nss = vec![root];
            for &ns in pool.iter().take(d.namespace_count.saturating_sub(1)) {
                md.link_namespace(host, ns);
                nss.push(ns);
            }
            let local_idx = devs.len();
            for &ns in &nss {
                ns_members.entry(ns).or_default().push(local_idx);
            }
            let sessions =
                device_sessions(config.kind, d, config.days, &mut sched_rng.fork(d.host_int));
            devs.push(Dev {
                host_int: host,
                namespaces: nss,
                sessions,
                behavior,
                version: d.version,
                abnormal: d.abnormal_uploader,
                nat_afflicted: d.nat_afflicted,
                workstation: d.workstation,
            });
        }

        // ---- Phase A: the household's commits in time order -----------------
        let mut commit_rng = hh_rng.fork_named("commits");
        let mut raw_events: Vec<(SimTime, usize, FileEvent)> = Vec::new();
        for (di, dev) in devs.iter().enumerate() {
            if dev.abnormal {
                continue; // handled separately
            }
            for s in &dev.sessions {
                for e in file_events(dev.behavior, s, &mut commit_rng) {
                    raw_events.push((e.at, di, e));
                }
            }
        }
        // External producer commits on fed namespaces.
        let mut external: Vec<(SimTime, NamespaceId)> = Vec::new();
        for &ns in &fed_namespaces {
            let rate_per_day = 1.5;
            let mut t_days = 0.0;
            loop {
                t_days += dist::exponential(&mut commit_rng, rate_per_day);
                if t_days >= config.days as f64 {
                    break;
                }
                external.push((SimTime::from_micros((t_days * 86_400.0 * 1e6) as u64), ns));
            }
        }

        // Materialise commits chronologically so edits see a consistent file
        // registry per namespace.
        #[derive(Clone)]
        struct FileState {
            content: Content,
            chunk_ids: Vec<ChunkId>,
        }
        let mut ns_files: BTreeMap<NamespaceId, Vec<FileState>> = BTreeMap::new();
        let mut next_seed: u64 = hh_rng.fork_named("contentseed").next_u64() | 1;
        let mut next_file: u64 = 1;

        enum RawCommit {
            Local(usize, FileEvent),
            External(NamespaceId),
        }
        let mut ordered: Vec<(SimTime, RawCommit)> = raw_events
            .into_iter()
            .map(|(t, di, e)| (t, RawCommit::Local(di, e)))
            .chain(
                external
                    .into_iter()
                    .map(|(t, ns)| (t, RawCommit::External(ns))),
            )
            .collect();
        ordered.sort_by_key(|(t, _)| *t);

        let mut commits: Vec<Commit> = Vec::new();
        for (t, raw) in ordered {
            let (ns, committer, kind, is_edit) = match &raw {
                RawCommit::Local(di, e) => {
                    let dev = &devs[*di];
                    // Root namespace favoured for personal files.
                    let ns = if dev.namespaces.len() == 1 || commit_rng.chance(0.5) {
                        dev.namespaces[0]
                    } else {
                        dev.namespaces[1 + commit_rng.below_usize(dev.namespaces.len() - 1)]
                    };
                    (ns, Some(*di), e.kind, e.is_edit)
                }
                RawCommit::External(ns) => {
                    // Collaborators elsewhere both add and edit; the kind mix
                    // matches ordinary users.
                    let kind = {
                        let u = commit_rng.f64();
                        if u < 0.42 {
                            dropbox::content::ContentKind::Text
                        } else if u < 0.75 {
                            dropbox::content::ContentKind::Document
                        } else {
                            dropbox::content::ContentKind::Media
                        }
                    };
                    (*ns, None, kind, commit_rng.chance(0.5))
                }
            };
            let files = ns_files.entry(ns).or_default();
            // A change event usually touches several files at once (saving a
            // project, dropping a folder): 1 + geometric burst.
            let burst = 1 + simcore::dist::geometric(&mut commit_rng, 0.38) as usize;
            let mut chunks: Vec<ChunkWork> = Vec::new();
            let mut superseded: Vec<ChunkId> = Vec::new();
            for b in 0..burst {
                let edit_this = (is_edit || b > 0 && commit_rng.chance(0.5)) && !files.is_empty();
                if edit_this {
                    let fi = commit_rng.below_usize(files.len());
                    let frac = (0.03 + commit_rng.f64() * 0.30).min(1.0);
                    let (next, changed) = files[fi].content.edit(frac, &mut commit_rng);
                    for &ci in &changed {
                        let id = next.chunk_id(ci);
                        superseded.push(files[fi].chunk_ids[ci as usize]);
                        files[fi].chunk_ids[ci as usize] = id;
                        chunks.push(ChunkWork {
                            id,
                            // Delta-capable providers ship the rsync-style
                            // delta; the rest re-upload the whole chunk.
                            wire_bytes: if config.protocol.delta {
                                next.delta_wire_size(ci, frac)
                            } else {
                                next.wire_chunk_size(ci)
                            },
                            raw_bytes: next.chunk_size(ci),
                        });
                    }
                    files[fi].content = next;
                } else {
                    next_seed = next_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let size = sample_file_size(kind, &mut commit_rng);
                    let content = Content::with_chunk_size(
                        next_seed,
                        size,
                        kind,
                        config.protocol.chunk_bytes,
                    );
                    let ids = content.chunk_ids();
                    for (i, &id) in ids.iter().enumerate() {
                        chunks.push(ChunkWork {
                            id,
                            wire_bytes: content.wire_chunk_size(i as u32),
                            raw_bytes: content.chunk_size(i as u32),
                        });
                    }
                    next_file += 1;
                    // Journal bookkeeping on the meta-data plane.
                    if let Some(nsm) = md.namespace_mut(ns) {
                        nsm.commit(FileId(next_file), content, ids.clone());
                    }
                    files.push(FileState {
                        content,
                        chunk_ids: ids,
                    });
                }
            }
            if chunks.is_empty() {
                continue;
            }
            commits.push(Commit {
                at: t,
                ns,
                committer,
                chunks,
                superseded,
            });
        }

        // ---- Phase B: propagate commits to members -------------------------
        // The household runs the LAN Sync Protocol on its subnet: on-line
        // devices broadcast discovery announcements and serve chunks they hold
        // to peers sharing the namespace, keeping that traffic off the WAN.
        //
        // Under control-plane faults a commit may not become *visible* at
        // its commit time: while the metadata plane refuses writes, local
        // commits wait in the committer's bounded offline queue (with
        // coalescing of superseded edits) and flush at the first on-line
        // instant after recovery; external producers' commits land as soon
        // as the plane returns. Members propagate from the visibility
        // instant, not the commit instant.
        let ctrl_active = plan_active && faults.has_control_plane();
        let mut queues: Vec<DeviceQueue> =
            (0..devs.len()).map(|_| DeviceQueue::default()).collect();
        let mut uploads: Vec<Vec<(SimTime, Vec<u64>, Vec<ChunkWork>)>> =
            vec![Vec::new(); devs.len()];
        let mut lan = LanSync::default();
        let mut prop_rng = hh_rng.fork_named("propagation");
        const OFFLINE_QUEUE_CAP: usize = 6;
        let mut offline: Vec<OfflineQueue> = (0..devs.len())
            .map(|_| OfflineQueue::new(OFFLINE_QUEUE_CAP))
            .collect();
        let mut offline_flush: Vec<Option<SimTime>> = vec![None; devs.len()];
        // Ledger-wide ids of this household's commits.
        let cid_base = audit.as_ref().map(|a| a.commit_count()).unwrap_or(0);

        for (local_id, c) in commits.iter().enumerate() {
            let cid = cid_base + local_id as u64;
            let deferred = ctrl_active && !faults.meta_available(c.at);
            let mut flush_at: Option<SimTime> = None;
            let mut never_flushed = false;
            let visible_at = if !deferred {
                c.at
            } else {
                match c.committer {
                    Some(di) => match flush_time(&devs[di], c.at, faults) {
                        Some(f) => {
                            flush_at = Some(f);
                            f
                        }
                        None => {
                            never_flushed = true;
                            c.at
                        }
                    },
                    // External producers commit from elsewhere; their
                    // changes land the moment the plane recovers.
                    None => meta_recovery(faults, c.at),
                }
            };
            if let Some(a) = audit.as_deref_mut() {
                a.push_commit(CommitRecord {
                    id: cid,
                    ns: c.ns.0,
                    at: c.at,
                    visible_at,
                    committer: c.committer.map(|di| devs[di].host_int.0),
                    chunks: c.chunks.iter().map(|w| w.id).collect(),
                    deferred,
                });
                if never_flushed {
                    a.excuse_commit(cid, Excuse::NeverFlushed);
                }
            }
            if let Some(di) = c.committer {
                if never_flushed {
                    // The committer's capture ends before the metadata plane
                    // recovers: the commit never reaches the server.
                    fault_stats.offline_commits += 1;
                } else {
                    match flush_at {
                        None => uploads[di].push((c.at, vec![cid], c.chunks.clone())),
                        Some(f) => {
                            // Queue through the outage. A new flush instant
                            // means a new outage window: drain the batches
                            // headed for the earlier one first.
                            if let Some(f0) = offline_flush[di] {
                                if f0 != f {
                                    flush_queue(&mut offline[di], f0, di, &mut uploads);
                                }
                            }
                            offline[di].push(c.at, cid, c.chunks.clone(), &c.superseded);
                            offline_flush[di] = Some(f);
                            fault_stats.offline_commits += 1;
                        }
                    }
                    // The committer holds the chunks and, while on-line,
                    // announces itself on the household subnet — but only
                    // once the commit is visible: LAN peers discover changes
                    // through the metadata journal.
                    let dev = &devs[di];
                    if dev.session_containing(visible_at).is_some() {
                        lan.announce(Announcement {
                            host: dev.host_int,
                            namespaces: dev.namespaces.clone(),
                            at: visible_at,
                        });
                    }
                    for w in &c.chunks {
                        lan.chunk_available(dev.host_int, w.id);
                    }
                }
            }
            let members = ns_members.get(&c.ns).cloned().unwrap_or_default();
            for m in members {
                if Some(m) == c.committer {
                    continue;
                }
                let dev = &devs[m];
                if let Some(a) = audit.as_deref_mut() {
                    a.expect_delivery(cid, dev.host_int.0);
                }
                if never_flushed {
                    continue; // excused above: the commit never synced
                }
                if dev.session_containing(visible_at).is_some() {
                    // On-line member: ask the LAN first (Sec. 5.2), then fall
                    // back to a cloud retrieve.
                    let pairs: Vec<(ChunkId, u64)> =
                        c.chunks.iter().map(|w| (w.id, w.raw_bytes)).collect();
                    if lan
                        .try_serve(dev.host_int, c.ns, &pairs, visible_at)
                        .is_some()
                    {
                        if let Some(a) = audit.as_deref_mut() {
                            a.deliver(cid, dev.host_int.0, visible_at, DeliveryKind::Lan);
                        }
                        continue;
                    }
                    let mut delay = SimDuration::from_secs(prop_rng.range_u64(2, 25));
                    if ctrl_active {
                        if !faults.notify_available(visible_at) {
                            // The push is lost: the member learns of the
                            // change from a fallback metadata poll instead.
                            delay += SimDuration::from_millis(prop_rng.range_u64(30_000, 120_000));
                        } else if faults.degraded_at(visible_at) {
                            // Elevated 5xx rates delay the push.
                            delay += SimDuration::from_millis(faults.notify_delay_ms as u64);
                        }
                    }
                    queues[m]
                        .online_downloads
                        .push((visible_at + delay, cid, c.chunks.clone()));
                    // Once the cloud retrieve lands, this device can serve the
                    // chunks to later peers on its LAN.
                    for w in &c.chunks {
                        lan.chunk_available(dev.host_int, w.id);
                    }
                    lan.announce(Announcement {
                        host: dev.host_int,
                        namespaces: dev.namespaces.clone(),
                        at: visible_at,
                    });
                } else {
                    queues[m].pending.push((visible_at, cid, c.chunks.clone()));
                }
            }
        }
        // Drain every offline queue still holding batches: its flush
        // instant was computed against the committer's sessions, so the
        // drain lands inside one.
        for di in 0..devs.len() {
            if let Some(f) = offline_flush[di] {
                flush_queue(&mut offline[di], f, di, &mut uploads);
            }
        }
        for q in &offline {
            if let Some(a) = audit.as_deref_mut() {
                a.superseded_chunks(q.superseded_ids());
                for &tag in q.coalesced_tags() {
                    a.excuse_commit(tag, Excuse::CoalescedAway);
                }
                if !q.is_empty() {
                    a.residual_batches(q.len() as u64);
                }
            }
        }
        if ctrl_active {
            // Deferred flushes were appended after direct uploads; restore
            // chronological order for the per-session coalescing below.
            for u in &mut uploads {
                u.sort_by_key(|(t, _, _)| *t);
            }
        }
        stats.lan_synced += lan.served_chunks();
        // Resolve pending commit batches to the first session after their
        // visibility time. Commits after a device's last session never
        // sync (the capture ends first), as in reality — the audit excuses
        // them explicitly so the oracle can tell "capture ended" from
        // "delivery lost".
        for (di, dev) in devs.iter().enumerate() {
            let pending = std::mem::take(&mut queues[di].pending);
            for (t, cid, batch) in pending {
                if let Some(si) = dev.next_session_after(t) {
                    queues[di]
                        .pending_at_start
                        .entry(si)
                        .or_default()
                        .push((vec![cid], batch));
                } else if let Some(a) = audit.as_deref_mut() {
                    a.excuse(cid, dev.host_int.0, Excuse::NoLaterSession);
                }
            }
        }

        // ---- Phase C: render the household's device flows -------------------
        let render_rng = hh_rng.fork_named("render");
        let session_policy = SessionPolicy {
            retry: *policy,
            ..SessionPolicy::default()
        };

        for (di, dev) in devs.iter().enumerate() {
            let sync_config = SyncConfig {
                version: dev.version,
                no_storage_acks: dev.abnormal,
                spec: config.protocol,
                ..SyncConfig::default()
            };
            let mut engine = SyncEngine::new(&dns, &store, sync_config, dev.host_int.0);
            let mut dev_rng = render_rng.fork(dev.host_int.0);

            // Index per-session transactions. Bundling lets changes
            // detected close together ride one connection: coalesce
            // commits within the spec's window when bundling is active for
            // this client generation (Dropbox: v1.4.0 only — v1.2.52 stays
            // at zero; per-file-commit providers never coalesce).
            let coalesce = config.protocol.commit_coalesce(dev.version);
            let mut session_uploads: BTreeMap<usize, Vec<(SimTime, Vec<u64>, Vec<ChunkWork>)>> =
                BTreeMap::new();
            for (t, cids, chunks) in &uploads[di] {
                if let Some(si) = dev.session_containing(*t) {
                    let list = session_uploads.entry(si).or_default();
                    match list.last_mut() {
                        Some((t0, acc_ids, acc))
                            if !coalesce.is_zero() && t.saturating_since(*t0) <= coalesce =>
                        {
                            acc_ids.extend(cids.iter().copied());
                            acc.extend(chunks.iter().copied());
                        }
                        _ => list.push((*t, cids.clone(), chunks.clone())),
                    }
                }
            }
            let mut session_downloads: BTreeMap<usize, Vec<(SimTime, Vec<ChunkWork>)>> =
                BTreeMap::new();
            for (t, cid, chunks) in &queues[di].online_downloads {
                let si = dev
                    .session_containing(*t)
                    .or_else(|| dev.next_session_after(*t));
                if let Some(si) = si {
                    let t = (*t).max(dev.sessions[si].start);
                    if let Some(a) = audit.as_deref_mut() {
                        a.deliver(*cid, dev.host_int.0, t, DeliveryKind::Online);
                    }
                    session_downloads
                        .entry(si)
                        .or_default()
                        .push((t, chunks.clone()));
                } else if let Some(a) = audit.as_deref_mut() {
                    a.excuse(*cid, dev.host_int.0, Excuse::NoLaterSession);
                }
            }

            for (si, session) in dev.sessions.iter().enumerate() {
                let day = session.start.day();
                let changes = session_downloads.get(&si).map(|v| v.len()).unwrap_or(0) as u32;

                // Session-start control traffic.
                let mut pending = queues[di].pending_at_start.remove(&si).unwrap_or_default();
                // The login burst replays each missed changeset; very long
                // offline periods collapse the tail into one bulk transaction.
                const MAX_LOGIN_TRANSACTIONS: usize = 12;
                if pending.len() > MAX_LOGIN_TRANSACTIONS {
                    let mut tail_ids: Vec<u64> = Vec::new();
                    let mut tail: Vec<ChunkWork> = Vec::new();
                    for (ids, chunks) in pending.drain(MAX_LOGIN_TRANSACTIONS - 1..) {
                        tail_ids.extend(ids);
                        tail.extend(chunks);
                    }
                    pending.push((tail_ids, tail));
                }
                let pending_chunks: usize = pending.iter().map(|(_, c)| c.len()).sum();
                for spec in engine.session_start_flows(pending_chunks, &mut dev_rng) {
                    play(
                        &spec,
                        session.start + SimDuration::from_millis(dev_rng.range_u64(50, 900)),
                        hh.ip,
                        hh.access,
                        day,
                        &mut monitor,
                        &mut dev_rng,
                        &mut scratch,
                    );
                }

                // Notification connection(s) covering the session.
                let span = session.duration();
                if let NotifyStyle::Poll { period_secs } = config.protocol.notify {
                    // Polling provider: no session-long long-poll. One
                    // short change-check connection per period, jittered,
                    // capped like the long-poll cycle model so 8 h
                    // sessions stay affordable.
                    let period = SimDuration::from_secs(period_secs.max(30));
                    let mut t =
                        session.start + SimDuration::from_millis(dev_rng.range_u64(500, 5_000));
                    let mut polls = 0u32;
                    while t < session.end && polls < 96 {
                        let spec = poll_check_flow(
                            config.protocol.notify_name(),
                            dev.host_int,
                            md.namespaces_of(dev.host_int),
                            &mut dev_rng,
                        );
                        play(
                            &spec,
                            t,
                            hh.ip,
                            hh.access,
                            day,
                            &mut monitor,
                            &mut dev_rng,
                            &mut scratch,
                        );
                        t += period + SimDuration::from_millis(dev_rng.range_u64(0, 2_000));
                        polls += 1;
                    }
                } else if dev.nat_afflicted {
                    // The gateway kills the connection within a minute; the
                    // client reconnects immediately. The effect is bursty in
                    // real gateways ([10]): model ~35 kills per session, after
                    // which the connection survives.
                    let mut t = session.start;
                    let mut frags = 0;
                    while t < session.end && frags < 28 {
                        let frag = SimDuration::from_secs(dev_rng.range_u64(20, 55))
                            .min(session.end.saturating_since(t));
                        let spec = spec_notification_flow(
                            config.protocol,
                            &dns,
                            dev.host_int,
                            md.namespaces_of(dev.host_int),
                            frag,
                            0,
                            SessionEnd::NatReset,
                            &mut dev_rng,
                        );
                        play(
                            &spec,
                            t,
                            hh.ip,
                            hh.access,
                            day,
                            &mut monitor,
                            &mut dev_rng,
                            &mut scratch,
                        );
                        t += frag + SimDuration::from_millis(200);
                        frags += 1;
                    }
                    if t < session.end {
                        let spec = spec_notification_flow(
                            config.protocol,
                            &dns,
                            dev.host_int,
                            md.namespaces_of(dev.host_int),
                            session.end.saturating_since(t),
                            0,
                            SessionEnd::ClientShutdown,
                            &mut dev_rng,
                        );
                        play(
                            &spec,
                            t,
                            hh.ip,
                            hh.access,
                            day,
                            &mut monitor,
                            &mut dev_rng,
                            &mut scratch,
                        );
                    }
                } else if ctrl_active
                    && (!faults.notify_available(session.start)
                        || matches!(
                            faults.next_notify_outage_after(session.start),
                            Some((lo, _)) if lo < session.end
                        ))
                {
                    // A notification outage overlaps the session: degrade
                    // per the client's session state machine (DESIGN.md §9)
                    // — long-poll fragments abort at the outage, jittered
                    // fallback polls keep metadata flowing, and reconnect
                    // probes back off until the plane returns. The probes
                    // and the post-recovery reconnects are the storm the
                    // chaos experiments aggregate fleet-wide.
                    let splan = plan_session(
                        session.start,
                        session.end,
                        faults,
                        &session_policy,
                        &mut dev_rng,
                    );
                    for phase in &splan.phases {
                        match &phase.kind {
                            PhaseKind::Notify { end } => {
                                let frag = phase.end.saturating_since(phase.start);
                                if frag.is_zero() {
                                    continue;
                                }
                                let n_changes = if *end == SessionEnd::ClientShutdown {
                                    changes
                                } else {
                                    0
                                };
                                let spec = spec_notification_flow(
                                    config.protocol,
                                    &dns,
                                    dev.host_int,
                                    md.namespaces_of(dev.host_int),
                                    frag,
                                    n_changes,
                                    *end,
                                    &mut dev_rng,
                                );
                                play(
                                    &spec,
                                    phase.start,
                                    hh.ip,
                                    hh.access,
                                    day,
                                    &mut monitor,
                                    &mut dev_rng,
                                    &mut scratch,
                                );
                                if *end == SessionEnd::Aborted {
                                    fault_stats.notify_aborts += 1;
                                }
                            }
                            PhaseKind::PollFallback { polls } => {
                                for &pt in polls {
                                    // Fallback metadata poll; a dead or
                                    // degraded metadata plane answers with an
                                    // error-sized response.
                                    let resp = if faults.meta_available(pt) { 420 } else { 120 };
                                    let spec =
                                        engine.control_flow(false, &[(340, resp)], &mut dev_rng);
                                    play(
                                        &spec,
                                        pt,
                                        hh.ip,
                                        hh.access,
                                        day,
                                        &mut monitor,
                                        &mut dev_rng,
                                        &mut scratch,
                                    );
                                    fault_stats.fallback_polls += 1;
                                    if let Some(a) = audit.as_deref_mut() {
                                        a.fallback_poll();
                                    }
                                }
                            }
                        }
                    }
                    for &at in &splan.reconnect_attempts {
                        let spec = spec_reconnect_probe_flow(
                            config.protocol,
                            &dns,
                            dev.host_int,
                            md.namespaces_of(dev.host_int),
                            &mut dev_rng,
                        );
                        play(
                            &spec,
                            at,
                            hh.ip,
                            hh.access,
                            day,
                            &mut monitor,
                            &mut dev_rng,
                            &mut scratch,
                        );
                        fault_stats.reconnect_attempts += 1;
                        if let Some(a) = audit.as_deref_mut() {
                            a.reconnect_attempt(at, dev.host_int.0);
                        }
                    }
                    for &at in &splan.reconnects {
                        fault_stats.reconnects += 1;
                        if let Some(a) = audit.as_deref_mut() {
                            a.reconnect(at, dev.host_int.0);
                        }
                    }
                } else if plan_active
                    && faults.notify_churn_p > 0.0
                    && dev_rng.chance(faults.notify_churn_p)
                {
                    // A flaky link churns the notification connection: a few
                    // fragments die mid-poll (RST with a request outstanding)
                    // and the client reconnects after an exponential backoff
                    // before the connection finally stabilises.
                    let n_aborts = 1 + dev_rng.below(3) as u32;
                    let mut t = session.start;
                    let mut attempt = 0u32;
                    while attempt < n_aborts && t < session.end {
                        let frag = SimDuration::from_secs(dev_rng.range_u64(90, 900))
                            .min(session.end.saturating_since(t));
                        let spec = spec_notification_flow(
                            config.protocol,
                            &dns,
                            dev.host_int,
                            md.namespaces_of(dev.host_int),
                            frag,
                            0,
                            SessionEnd::Aborted,
                            &mut dev_rng,
                        );
                        play(
                            &spec,
                            t,
                            hh.ip,
                            hh.access,
                            day,
                            &mut monitor,
                            &mut dev_rng,
                            &mut scratch,
                        );
                        fault_stats.notify_aborts += 1;
                        t += frag + policy.backoff(attempt, &mut dev_rng);
                        attempt += 1;
                    }
                    if t < session.end {
                        let spec = spec_notification_flow(
                            config.protocol,
                            &dns,
                            dev.host_int,
                            md.namespaces_of(dev.host_int),
                            session.end.saturating_since(t),
                            changes,
                            SessionEnd::ClientShutdown,
                            &mut dev_rng,
                        );
                        play(
                            &spec,
                            t,
                            hh.ip,
                            hh.access,
                            day,
                            &mut monitor,
                            &mut dev_rng,
                            &mut scratch,
                        );
                    }
                } else {
                    let spec = spec_notification_flow(
                        config.protocol,
                        &dns,
                        dev.host_int,
                        md.namespaces_of(dev.host_int),
                        span,
                        changes,
                        SessionEnd::ClientShutdown,
                        &mut dev_rng,
                    );
                    play(
                        &spec,
                        session.start,
                        hh.ip,
                        hh.access,
                        day,
                        &mut monitor,
                        &mut dev_rng,
                        &mut scratch,
                    );
                }

                // Login synchronisation burst: one transaction per missed
                // changeset, staggered over the first minutes of the session.
                let mut t_login = session.start + SimDuration::from_secs(dev_rng.range_u64(10, 40));
                for (cids, batch) in &pending {
                    if let Some(a) = audit.as_deref_mut() {
                        for &cid in cids {
                            a.deliver(cid, dev.host_int.0, t_login, DeliveryKind::Login);
                        }
                    }
                    if plan_active {
                        let outcome = engine.download_transaction_faulty(
                            batch,
                            day,
                            t_login,
                            faults,
                            &policy,
                            &mut dev_rng,
                        );
                        fault_stats.sync_retries += u64::from(outcome.retries);
                        fault_stats.aborted_flows += u64::from(outcome.aborted_flows);
                        for (off, spec) in &outcome.flows {
                            play(
                                spec,
                                t_login + *off,
                                hh.ip,
                                hh.access,
                                day,
                                &mut monitor,
                                &mut dev_rng,
                                &mut scratch,
                            );
                        }
                    } else {
                        for spec in
                            engine.download_transaction(batch, day, &mut dev_rng, None, t_login)
                        {
                            play(
                                &spec,
                                t_login,
                                hh.ip,
                                hh.access,
                                day,
                                &mut monitor,
                                &mut dev_rng,
                                &mut scratch,
                            );
                        }
                    }
                    t_login += SimDuration::from_secs(dev_rng.range_u64(3, 25));
                }

                // Periodic list refreshes (the short meta-data connections).
                let mut t = session.start + SimDuration::from_mins(dev_rng.range_u64(20, 45));
                while t < session.end {
                    if ctrl_active && faults.degraded_at(t) && dev_rng.chance(faults.degraded_5xx_p)
                    {
                        // Partially degraded metadata plane: the first
                        // attempt bounces with a 5xx-sized response and is
                        // retried immediately after.
                        let spec = engine.control_flow(false, &[(340, 120)], &mut dev_rng);
                        play(
                            &spec,
                            t,
                            hh.ip,
                            hh.access,
                            day,
                            &mut monitor,
                            &mut dev_rng,
                            &mut scratch,
                        );
                        fault_stats.sync_retries += 1;
                    }
                    let spec = engine.control_flow(false, &[(340, 420)], &mut dev_rng);
                    play(
                        &spec,
                        t,
                        hh.ip,
                        hh.access,
                        day,
                        &mut monitor,
                        &mut dev_rng,
                        &mut scratch,
                    );
                    t += SimDuration::from_mins(dev_rng.range_u64(25, 50));
                }

                // Uploads.
                if let Some(ups) = session_uploads.get(&si) {
                    for (t, cids, chunks) in ups {
                        if let Some(a) = audit.as_deref_mut() {
                            for &cid in cids {
                                a.flushed(cid, *t);
                            }
                        }
                        if plan_active {
                            let outcome = engine.upload_transaction_faulty(
                                chunks,
                                day,
                                *t,
                                faults,
                                &policy,
                                &mut dev_rng,
                            );
                            fault_stats.sync_retries += u64::from(outcome.retries);
                            fault_stats.aborted_flows += u64::from(outcome.aborted_flows);
                            for (off, spec) in &outcome.flows {
                                play(
                                    spec,
                                    *t + *off,
                                    hh.ip,
                                    hh.access,
                                    day,
                                    &mut monitor,
                                    &mut dev_rng,
                                    &mut scratch,
                                );
                            }
                        } else {
                            for spec in
                                engine.upload_transaction(chunks, day, &mut dev_rng, None, *t)
                            {
                                play(
                                    &spec,
                                    *t,
                                    hh.ip,
                                    hh.access,
                                    day,
                                    &mut monitor,
                                    &mut dev_rng,
                                    &mut scratch,
                                );
                            }
                        }
                    }
                }

                // Downloads while on-line.
                if let Some(downs) = session_downloads.get(&si) {
                    for (t, chunks) in downs {
                        if plan_active {
                            let outcome = engine.download_transaction_faulty(
                                chunks,
                                day,
                                *t,
                                faults,
                                &policy,
                                &mut dev_rng,
                            );
                            fault_stats.sync_retries += u64::from(outcome.retries);
                            fault_stats.aborted_flows += u64::from(outcome.aborted_flows);
                            for (off, spec) in &outcome.flows {
                                play(
                                    spec,
                                    *t + *off,
                                    hh.ip,
                                    hh.access,
                                    day,
                                    &mut monitor,
                                    &mut dev_rng,
                                    &mut scratch,
                                );
                            }
                        } else {
                            for spec in
                                engine.download_transaction(chunks, day, &mut dev_rng, None, *t)
                            {
                                play(
                                    &spec,
                                    *t,
                                    hh.ip,
                                    hh.access,
                                    day,
                                    &mut monitor,
                                    &mut dev_rng,
                                    &mut scratch,
                                );
                            }
                        }
                    }
                }

                // Rare crash report (exception back-trace to dl-debugX).
                if dev_rng.chance(0.008) {
                    let spec = engine.backtrace_flow(&mut dev_rng);
                    play(
                        &spec,
                        session.start + SimDuration::from_secs(dev_rng.range_u64(30, 300)),
                        hh.ip,
                        hh.access,
                        day,
                        &mut monitor,
                        &mut dev_rng,
                        &mut scratch,
                    );
                }

                // Occasional event-log report.
                if dev_rng.chance(0.15) {
                    let spec = engine.event_log_flow(&mut dev_rng);
                    play(
                        &spec,
                        session.start + SimDuration::from_secs(dev_rng.range_u64(60, 600)),
                        hh.ip,
                        hh.access,
                        day,
                        &mut monitor,
                        &mut dev_rng,
                        &mut scratch,
                    );
                }

                // The misbehaving uploader: consecutive single-4MB-chunk
                // connections during its active window (Home 2, days 8–22),
                // clipped to the part of the session overlapping that window.
                if dev.abnormal {
                    let win_lo =
                        SimTime::from_day_offset(8.min(config.days - 1), SimDuration::ZERO);
                    let win_hi = SimTime::from_day_offset(23.min(config.days), SimDuration::ZERO);
                    let lo = session.start.max(win_lo);
                    let hi = session.end.min(win_hi);
                    let mut t = lo + SimDuration::from_secs(30);
                    let mut n: u64 = dev.host_int.0 << 16;
                    while t < hi {
                        n += 1;
                        let chunk = ChunkWork {
                            id: ChunkId(n),
                            wire_bytes: 4 * 1024 * 1024,
                            raw_bytes: 4 * 1024 * 1024,
                        };
                        let spec = engine.store_flow(&[chunk], day, &mut dev_rng, None, t);
                        play(
                            &spec,
                            t,
                            hh.ip,
                            hh.access,
                            day,
                            &mut monitor,
                            &mut dev_rng,
                            &mut scratch,
                        );
                        t += SimDuration::from_secs(dev_rng.range_u64(1_100, 1_900));
                    }
                }

                let _ = dev.workstation;
            }
        }

        // The household's final chunk-store content: the durability side
        // of the convergence oracle checks every flushed commit's live
        // chunks against this snapshot.
        if let Some(a) = audit.as_deref_mut() {
            a.snapshot_store(store.ids());
        }
    }

    // ---- Phase D: web interface, direct links, API ----------------------
    if hh.uses_web {
        let mut web_rng = hh_rng.fork_named("web");
        for day in 0..config.days {
            let at = |r: &mut Rng| {
                SimTime::from_day_offset(day, SimDuration::from_secs(r.range_u64(8 * 3600, 85_000)))
            };
            if web_rng.chance(0.06) {
                let t = at(&mut web_rng);
                for spec in web_session_flows(&mut web_rng) {
                    play(
                        &spec,
                        t,
                        hh.ip,
                        hh.access,
                        day,
                        &mut monitor,
                        &mut web_rng.clone(),
                        &mut scratch,
                    );
                }
            }
            if web_rng.chance(0.55) {
                let t = at(&mut web_rng);
                let spec = direct_link_flow(&mut web_rng);
                play(
                    &spec,
                    t,
                    hh.ip,
                    hh.access,
                    day,
                    &mut monitor,
                    &mut web_rng.clone(),
                    &mut scratch,
                );
            }
            if hh.behavior.is_some() && web_rng.chance(0.08) {
                let t = at(&mut web_rng);
                for spec in api_session_flows(&mut web_rng) {
                    play(
                        &spec,
                        t,
                        hh.ip,
                        hh.access,
                        day,
                        &mut monitor,
                        &mut web_rng.clone(),
                        &mut scratch,
                    );
                }
            }
        }
    }

    // ---- Phase E: background provider traffic ---------------------------
    let mut prng = providers_root.fork(idx as u64);
    providers::household_flows(config, hh, &mut prng, &mut |rec| emit(rec, None));

    stats.fault_stats.absorb(fault_stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vantage::VantageKind;
    use dropbox_analysis::classify::{dropbox_role, provider_of, DropboxRole, Provider};

    fn small_sim(kind: VantageKind) -> SimOutput {
        let mut config = VantageConfig::paper(kind, 0.02);
        config.days = 7;
        simulate_vantage(&config, ClientVersion::V1_2_52, 42, &FaultPlan::none())
    }

    #[test]
    fn produces_flows_of_all_planes() {
        let out = small_sim(VantageKind::Home1);
        let ds = &out.dataset;
        assert!(!ds.flows.is_empty());
        let mut roles = std::collections::HashSet::new();
        for f in ds.flows.iter() {
            if let Some(r) = dropbox_role(f) {
                roles.insert(format!("{r:?}"));
            }
        }
        assert!(roles.contains("ClientStorage"), "roles: {roles:?}");
        assert!(roles.contains("ClientControl"));
        assert!(roles.contains("NotifyControl"));
    }

    #[test]
    fn truths_align_with_flows() {
        let out = small_sim(VantageKind::Home1);
        assert_eq!(out.dataset.flows.len(), out.truths.len());
        // All monitored Dropbox flows carry a truth; background has none.
        for (f, t) in out.dataset.flows.iter().zip(&out.truths) {
            match provider_of(f) {
                Provider::Dropbox => assert!(t.is_some(), "dropbox flow without truth"),
                _ => assert!(t.is_none(), "background flow with truth"),
            }
        }
    }

    #[test]
    fn none_plan_reports_zero_fault_stats() {
        let out = small_sim(VantageKind::Home1);
        assert_eq!(out.fault_stats, FaultStats::default());
        assert!(out.dataset.flows.iter().all(|f| !f.aborted));
    }

    #[test]
    fn lossy_plan_yields_retries_and_aborted_records() {
        let mut config = VantageConfig::paper(VantageKind::Home1, 0.02);
        config.days = 7;
        let plan = FaultPlan::lossy(42, config.days);
        let out = simulate_vantage(&config, ClientVersion::V1_2_52, 42, &plan);
        let s = out.fault_stats;
        assert!(s.sync_retries > 0, "no retries recorded: {s:?}");
        assert!(s.aborted_flows > 0, "no aborted flows recorded: {s:?}");
        assert!(s.notify_aborts > 0, "no notification churn recorded: {s:?}");
        // The injected resets are visible at the probe as aborted records.
        assert!(
            out.dataset.flows.iter().any(|f| f.aborted),
            "no monitored record flagged aborted"
        );
        // Recovery is lossless: retried transfers add wire bytes, but the
        // analysis-facing unique byte counters stay panic-free and sane.
        assert!(out
            .dataset
            .flows
            .iter()
            .any(|f| f.up.rtx_bytes > 0 || f.down.rtx_bytes > 0));
    }

    #[test]
    fn chaos_plan_exercises_degraded_modes_and_converges() {
        let mut config = VantageConfig::paper(VantageKind::Home1, 0.02);
        config.days = 7;
        let plan = FaultPlan::chaos(42, config.days, &simcore::faults::OutageKnobs::default());
        let (out, audit) = simulate_vantage_audited(&config, ClientVersion::V1_2_52, 42, &plan);
        let s = out.fault_stats;
        assert!(s.reconnect_attempts > 0, "no reconnect probes: {s:?}");
        assert!(s.reconnects > 0, "no reconnect storm: {s:?}");
        assert!(s.fallback_polls > 0, "no fallback polls: {s:?}");
        // The convergence oracle finds nothing to complain about.
        let violations = crate::oracle::check(&audit);
        assert!(
            violations.is_empty(),
            "oracle violations: {:?}",
            violations.iter().map(|v| v.render()).collect::<Vec<_>>()
        );
        // Degraded sessions still produce a full flow mix.
        assert!(out.dataset.flows.len() > 100);
    }

    #[test]
    fn audited_chaos_run_is_byte_identical_to_unaudited() {
        let mut config = VantageConfig::paper(VantageKind::Campus1, 0.02);
        config.days = 7;
        let plan = FaultPlan::chaos(7, config.days, &simcore::faults::OutageKnobs::default());
        let plain = simulate_vantage(&config, ClientVersion::V1_2_52, 9, &plan);
        let (audited, audit) = simulate_vantage_audited(&config, ClientVersion::V1_2_52, 9, &plan);
        assert_eq!(plain.dataset.flows.len(), audited.dataset.flows.len());
        for (a, b) in plain.dataset.flows.iter().zip(audited.dataset.flows.iter()) {
            assert_eq!(a.total_bytes(), b.total_bytes());
            assert_eq!(a.first_syn, b.first_syn);
        }
        assert_eq!(plain.fault_stats, audited.fault_stats);
        // The ledger actually recorded the capture.
        assert!(audit.commit_count() > 0);
    }

    #[test]
    fn clean_audited_run_has_no_degraded_mode_artifacts() {
        let mut config = VantageConfig::paper(VantageKind::Home1, 0.02);
        config.days = 7;
        let (out, audit) =
            simulate_vantage_audited(&config, ClientVersion::V1_2_52, 42, &FaultPlan::none());
        assert_eq!(out.fault_stats, FaultStats::default());
        assert!(audit.reconnect_events().is_empty());
        assert_eq!(audit.fallback_poll_count(), 0);
        assert!(audit.commits().iter().all(|c| !c.deferred));
        let violations = crate::oracle::check(&audit);
        assert!(
            violations.is_empty(),
            "clean run must converge: {:?}",
            violations.iter().map(|v| v.render()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_sim(VantageKind::Campus1);
        let b = small_sim(VantageKind::Campus1);
        assert_eq!(a.dataset.flows.len(), b.dataset.flows.len());
        let bytes_a: u64 = a.dataset.flows.iter().map(|f| f.total_bytes()).sum();
        let bytes_b: u64 = b.dataset.flows.iter().map(|f| f.total_bytes()).sum();
        assert_eq!(bytes_a, bytes_b);
    }

    #[test]
    fn notification_flows_carry_device_ids() {
        let out = small_sim(VantageKind::Home1);
        let notify: Vec<_> = out
            .dataset
            .flows
            .iter()
            .filter(|f| dropbox_role(f) == Some(DropboxRole::NotifyControl))
            .collect();
        assert!(!notify.is_empty());
        assert!(notify.iter().all(|f| f.notify.is_some()));
    }

    #[test]
    fn storage_flows_have_valid_truth_tags() {
        let out = small_sim(VantageKind::Home1);
        let mut stores = 0;
        let mut retrieves = 0;
        for (f, t) in out.dataset.flows.iter().zip(&out.truths) {
            if dropbox_role(f) == Some(DropboxRole::ClientStorage) {
                match t {
                    Some(FlowTruth::Store { .. }) => stores += 1,
                    Some(FlowTruth::Retrieve { .. }) => retrieves += 1,
                    other => panic!("storage flow with truth {other:?}"),
                }
            }
        }
        assert!(stores > 0, "no store flows generated");
        assert!(retrieves > 0, "no retrieve flows generated");
    }

    #[test]
    fn lan_sync_saves_wan_retrievals_in_multi_device_homes() {
        // With LAN sync active, some same-household propagation is served
        // locally; the saving counter must be positive on home vantages.
        let mut config = VantageConfig::paper(VantageKind::Home1, 0.04);
        config.days = 10;
        let out = simulate_vantage(&config, ClientVersion::V1_2_52, 11, &FaultPlan::none());
        assert!(out.lan_synced > 0, "no LAN-sync savings recorded");
    }

    #[test]
    fn v14_coalescing_reduces_storage_flow_count() {
        let mut config = VantageConfig::paper(VantageKind::Campus1, 0.2);
        config.days = 10;
        let v1 = simulate_vantage(&config, ClientVersion::V1_2_52, 5, &FaultPlan::none());
        let v14 = simulate_vantage(&config, ClientVersion::V1_4_0, 5, &FaultPlan::none());
        let stores = |o: &SimOutput| {
            o.truths
                .iter()
                .filter(|t| matches!(t, Some(FlowTruth::Store { .. })))
                .count()
        };
        // Same population and events; coalescing merges commits within
        // 60 s, so v1.4.0 produces at most as many store flows.
        assert!(
            stores(&v14) <= stores(&v1),
            "v14 {} vs v1 {}",
            stores(&v14),
            stores(&v1)
        );
    }

    #[test]
    fn truth_users_cover_all_observed_devices() {
        let mut config = VantageConfig::paper(VantageKind::Home2, 0.03);
        config.days = 7;
        let out = simulate_vantage(&config, ClientVersion::V1_2_52, 9, &FaultPlan::none());
        let truth_devices: std::collections::BTreeSet<u64> =
            out.truth_users.iter().flatten().copied().collect();
        for f in &out.dataset.flows {
            if let Some(meta) = &f.notify {
                assert!(
                    truth_devices.contains(&meta.host_int),
                    "observed device {} missing from truth users",
                    meta.host_int
                );
            }
        }
    }

    #[test]
    fn campus2_records_lack_fqdn() {
        let out = small_sim(VantageKind::Campus2);
        assert!(out.dataset.flows.iter().all(|f| f.server_fqdn.is_none()));
        // But SNI still identifies Dropbox.
        assert!(out
            .dataset
            .flows
            .iter()
            .any(|f| provider_of(f) == Provider::Dropbox));
    }

    #[test]
    fn session_lookup_matches_linear_scan_on_boundaries() {
        use crate::activity::Session;
        use crate::population::Behavior;

        let s = |a: u64, b: u64| Session {
            start: SimTime::from_secs(a),
            end: SimTime::from_secs(b),
        };
        let cases: Vec<Vec<Session>> = vec![
            vec![],
            vec![s(10, 20)],
            vec![s(10, 20), s(30, 45), s(100, 100), s(200, 250)],
        ];
        for sessions in cases {
            let dev = Dev {
                host_int: dropbox::metadata::HostInt(1),
                namespaces: Vec::new(),
                sessions: sessions.clone(),
                behavior: Behavior::Heavy,
                version: ClientVersion::V1_2_52,
                abnormal: false,
                nat_afflicted: false,
                workstation: false,
            };
            // Probe every boundary instant plus its neighbours and the
            // gaps, so `t == start`, `t == end`, and zero-length sessions
            // are all exercised.
            let second = simcore::SimDuration::from_secs(1);
            let mut probes = vec![SimTime::from_secs(0), SimTime::from_secs(1_000)];
            for sess in &sessions {
                for t in [sess.start, sess.end] {
                    probes.push(t);
                    probes.push(t + second);
                    if t >= SimTime::from_secs(1) {
                        probes.push(t - second);
                    }
                }
            }
            for t in probes {
                let linear_containing = sessions
                    .iter()
                    .position(|sess| sess.start <= t && t <= sess.end);
                let linear_next = sessions.iter().position(|sess| sess.start > t);
                assert_eq!(
                    dev.session_containing(t),
                    linear_containing,
                    "session_containing({t:?}) in {sessions:?}"
                );
                assert_eq!(
                    dev.next_session_after(t),
                    linear_next,
                    "next_session_after({t:?}) in {sessions:?}"
                );
            }
        }
    }
}

//! The sync-convergence oracle: read-only invariant checks over a
//! [`SyncAudit`] ledger after a fault plan has quiesced.
//!
//! The oracle never touches simulation state — every check folds over the
//! ledger through `&self` accessors. simlint's `oracle-pure` rule keeps
//! mutable borrows out of this file, so the oracle cannot "fix up" the
//! run it is judging.
//!
//! Invariants (DESIGN.md §9):
//!
//! 1. **Reachability** — every `(commit, member)` pair the driver declared
//!    is either delivered at least once or carries an explicit excuse
//!    (capture ended before the member's next session, the commit never
//!    reached the server, or coalescing superseded it entirely).
//! 2. **No double-apply** — no member receives a commit twice, and no
//!    local commit's upload transaction renders more than once.
//! 3. **Durability** — every chunk of a flushed local commit is present
//!    in the final chunk-store snapshot, unless a later offline edit
//!    superseded it.
//! 4. **Queue drain** — no offline-queue batch survives the capture, and
//!    every non-excused local commit was flushed.
//! 5. **Causality** — no delivery precedes its commit.

use crate::audit::SyncAudit;

/// One violated invariant, with enough trace to reproduce and debug it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant failed (stable machine-readable label).
    pub invariant: &'static str,
    /// Offending commit id, when the violation is commit-scoped.
    pub commit: Option<u64>,
    /// Human-readable event trace.
    pub detail: String,
}

impl Violation {
    /// One-line report form (no `Display` impl: a `fmt::Formatter` is a
    /// mutable borrow, and this module stays free of them by contract).
    pub fn render(&self) -> String {
        match self.commit {
            Some(id) => format!("[{}] commit {}: {}", self.invariant, id, self.detail),
            None => format!("[{}] {}", self.invariant, self.detail),
        }
    }
}

/// Render the ledger's view of one commit — the event trace attached to
/// violations so a failing seed can be debugged from the report alone.
fn trace(audit: &SyncAudit, id: u64) -> String {
    let c = &audit.commits()[id as usize];
    let mut s = format!(
        "committed at {} (visible {}) by {:?} into ns {} with {} chunks{}",
        c.at,
        c.visible_at,
        c.committer,
        c.ns,
        c.chunks.len(),
        if c.deferred { ", deferred" } else { "" },
    );
    for (cid, host) in audit.expects() {
        if cid != id {
            continue;
        }
        let dels = audit.deliveries(id, host);
        if dels.is_empty() {
            match audit.excuse_of(id, host) {
                Some(why) => s.push_str(&format!("; dev {host}: excused ({why:?})")),
                None => s.push_str(&format!("; dev {host}: NO DELIVERY")),
            }
        } else {
            for (t, kind) in dels {
                s.push_str(&format!("; dev {host}: {kind:?} at {t}"));
            }
        }
    }
    s
}

/// Run every convergence check over the ledger; an empty vector means the
/// capture converged.
pub fn check(audit: &SyncAudit) -> Vec<Violation> {
    let mut out = Vec::new();

    // 1 + 2a + 5: per expected (commit, member) pair.
    for (id, host) in audit.expects() {
        let dels = audit.deliveries(id, host);
        if dels.is_empty() && audit.excuse_of(id, host).is_none() {
            out.push(Violation {
                invariant: "reachability",
                commit: Some(id),
                detail: format!("device {host} never received it: {}", trace(audit, id)),
            });
        }
        if dels.len() > 1 {
            out.push(Violation {
                invariant: "double-apply",
                commit: Some(id),
                detail: format!(
                    "device {host} received it {} times: {}",
                    dels.len(),
                    trace(audit, id)
                ),
            });
        }
        let committed_at = audit.commits()[id as usize].at;
        for (t, kind) in dels {
            if *t < committed_at {
                out.push(Violation {
                    invariant: "causality",
                    commit: Some(id),
                    detail: format!(
                        "device {host} got {kind:?} at {t}, before the commit: {}",
                        trace(audit, id)
                    ),
                });
            }
        }
    }

    // 2b + 3 + 4: per local commit.
    for c in audit.commits() {
        if c.committer.is_none() {
            continue; // external producers upload outside the capture
        }
        let flushes = audit.flushes_of(c.id);
        match (flushes.len(), audit.commit_excuse(c.id)) {
            (0, None) => out.push(Violation {
                invariant: "queue-drain",
                commit: Some(c.id),
                detail: format!("never flushed and not excused: {}", trace(audit, c.id)),
            }),
            (n, _) if n > 1 => out.push(Violation {
                invariant: "double-apply",
                commit: Some(c.id),
                detail: format!("upload rendered {n} times: {}", trace(audit, c.id)),
            }),
            _ => {}
        }
        if !flushes.is_empty() {
            for &chunk in &c.chunks {
                if !audit.is_stored(chunk) && !audit.is_superseded(chunk) {
                    out.push(Violation {
                        invariant: "durability",
                        commit: Some(c.id),
                        detail: format!(
                            "chunk {:#x} missing from the store: {}",
                            chunk.0,
                            trace(audit, c.id)
                        ),
                    });
                }
            }
        }
    }

    // 4: residual queues.
    if audit.residual_batch_count() > 0 {
        out.push(Violation {
            invariant: "queue-drain",
            commit: None,
            detail: format!(
                "{} offline-queue batches left undrained at capture end",
                audit.residual_batch_count()
            ),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{CommitRecord, DeliveryKind, Excuse};
    use dropbox::content::ChunkId;
    use simcore::SimTime;

    fn commit(id: u64, committer: Option<u64>, chunks: Vec<ChunkId>) -> CommitRecord {
        CommitRecord {
            id,
            ns: 1,
            at: SimTime::from_secs(100),
            visible_at: SimTime::from_secs(100),
            committer,
            chunks,
            deferred: false,
        }
    }

    #[test]
    fn clean_ledger_passes() {
        let mut a = SyncAudit::new();
        a.push_commit(commit(0, Some(1), vec![ChunkId(9)]));
        a.expect_delivery(0, 2);
        a.deliver(0, 2, SimTime::from_secs(130), DeliveryKind::Online);
        a.flushed(0, SimTime::from_secs(100));
        a.snapshot_store([ChunkId(9)]);
        assert!(check(&a).is_empty());
    }

    #[test]
    fn missing_delivery_is_a_reachability_violation() {
        let mut a = SyncAudit::new();
        a.push_commit(commit(0, Some(1), vec![]));
        a.expect_delivery(0, 2);
        a.flushed(0, SimTime::from_secs(100));
        let v = check(&a);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "reachability");
        assert!(v[0].detail.contains("NO DELIVERY"), "{}", v[0].detail);
    }

    #[test]
    fn excused_members_do_not_trip_the_oracle() {
        let mut a = SyncAudit::new();
        a.push_commit(commit(0, Some(1), vec![]));
        a.expect_delivery(0, 2);
        a.excuse(0, 2, Excuse::NoLaterSession);
        a.flushed(0, SimTime::from_secs(100));
        assert!(check(&a).is_empty());
    }

    #[test]
    fn duplicate_delivery_and_flush_are_double_applies() {
        let mut a = SyncAudit::new();
        a.push_commit(commit(0, Some(1), vec![]));
        a.expect_delivery(0, 2);
        a.deliver(0, 2, SimTime::from_secs(130), DeliveryKind::Lan);
        a.deliver(0, 2, SimTime::from_secs(140), DeliveryKind::Login);
        a.flushed(0, SimTime::from_secs(100));
        a.flushed(0, SimTime::from_secs(101));
        let kinds: Vec<&str> = check(&a).iter().map(|v| v.invariant).collect();
        assert_eq!(kinds, vec!["double-apply", "double-apply"]);
    }

    #[test]
    fn lost_chunk_is_a_durability_violation_unless_superseded() {
        let mut a = SyncAudit::new();
        a.push_commit(commit(0, Some(1), vec![ChunkId(5), ChunkId(6)]));
        a.flushed(0, SimTime::from_secs(100));
        a.snapshot_store([ChunkId(5)]);
        let v = check(&a);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "durability");
        // Excusing the missing chunk as superseded clears the violation.
        let mut b = SyncAudit::new();
        b.push_commit(commit(0, Some(1), vec![ChunkId(5), ChunkId(6)]));
        b.flushed(0, SimTime::from_secs(100));
        b.snapshot_store([ChunkId(5)]);
        b.superseded_chunks(&[ChunkId(6)]);
        assert!(check(&b).is_empty());
    }

    #[test]
    fn unflushed_local_commit_needs_an_excuse() {
        let mut a = SyncAudit::new();
        a.push_commit(commit(0, Some(1), vec![]));
        let v = check(&a);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "queue-drain");
        let mut b = SyncAudit::new();
        b.push_commit(commit(0, Some(1), vec![]));
        b.excuse_commit(0, Excuse::NeverFlushed);
        assert!(check(&b).is_empty());
    }

    #[test]
    fn residual_batches_trip_the_oracle() {
        let mut a = SyncAudit::new();
        a.residual_batches(2);
        let v = check(&a);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "queue-drain");
    }
}

//! Households, devices, and users (Secs. 5.1–5.3).
//!
//! Each monitored address hosts a household (home vantage points) or a
//! workstation/portable population (campuses). Households with the client
//! installed get a behaviour group with the shares reported in Table 5, a
//! device count matching Fig. 12's distribution (group-dependent, heavy
//! users own more devices), and per-device namespace counts matching
//! Fig. 13 (campus users hold more shared folders than home users).
//!
//! Generation is **per household**: [`generate_household`] is a pure
//! function of the population plane (one non-advancing [`Rng`] fork per
//! household index) plus two capture-wide constants ([`host_int_base`] and
//! the [`abnormal_household`] index), so any contiguous household range
//! can be built independently and concatenated — the invariant the
//! sub-capture shards of `workload::shard` rest on.

use crate::vantage::{Access, VantageConfig, VantageKind};
use dropbox::client::ClientVersion;
use nettrace::Ipv4;
use simcore::{dist, Rng};

/// Behaviour group of a household (workload-side ground truth; the
/// analysis layer re-derives groups from traffic alone).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Behavior {
    /// Client abandoned, hardly any data.
    Occasional,
    /// Mostly submits content (backups, hand-offs to third parties).
    UploadOnly,
    /// Mostly fetches content produced elsewhere.
    DownloadOnly,
    /// Active multi-device synchronisation in both directions.
    Heavy,
}

impl Behavior {
    /// Group shares per vantage point (Table 5 for the homes; campuses
    /// lean more active).
    pub fn shares(kind: VantageKind) -> [(Behavior, f64); 4] {
        let (o, u, d, h) = match kind {
            VantageKind::Home1 => (0.31, 0.06, 0.26, 0.37),
            VantageKind::Home2 => (0.32, 0.07, 0.28, 0.33),
            VantageKind::Campus1 => (0.22, 0.06, 0.28, 0.44),
            VantageKind::Campus2 => (0.27, 0.07, 0.28, 0.38),
        };
        [
            (Behavior::Occasional, o),
            (Behavior::UploadOnly, u),
            (Behavior::DownloadOnly, d),
            (Behavior::Heavy, h),
        ]
    }
}

/// One Dropbox-linked device.
#[derive(Clone, Debug)]
pub struct Device {
    /// Unique device identifier (`host_int`).
    pub host_int: u64,
    /// Number of namespaces this device advertises (root + shared folders).
    pub namespace_count: usize,
    /// Office workstation: long working-hour sessions (Campus 1 pattern).
    pub workstation: bool,
    /// Device never shuts down (tail of Fig. 16).
    pub always_on: bool,
    /// Home-gateway NAT kills its notification connections within a minute
    /// (the sub-minute flows of Fig. 16).
    pub nat_afflicted: bool,
    /// The Home 2 misbehaving uploader (Sec. 4.3.1).
    pub abnormal_uploader: bool,
    /// Probability the device comes on-line on any given day.
    pub daily_presence: f64,
    /// Client software generation.
    pub version: ClientVersion,
}

/// One monitored address.
#[derive(Clone, Debug)]
pub struct Household {
    /// Static client address.
    pub ip: Ipv4,
    /// Access technology.
    pub access: Access,
    /// Behaviour group, when the Dropbox client is installed.
    pub behavior: Option<Behavior>,
    /// Linked devices (empty without the client).
    pub devices: Vec<Device>,
    /// Household also uses competing cloud services / the web interface.
    pub uses_web: bool,
}

/// The complete population behind one vantage point.
#[derive(Clone, Debug)]
pub struct Population {
    /// All monitored addresses.
    pub households: Vec<Household>,
}

/// Sample a device count for a household of the given group (Fig. 12:
/// ~60% single-device overall; heavy households average >2 devices).
fn sample_device_count(kind: VantageKind, behavior: Behavior, rng: &mut Rng) -> usize {
    match kind {
        // Wired workstations, occasionally a second linked machine.
        VantageKind::Campus1 => return if rng.chance(0.12) { 2 } else { 1 },
        // An address at the campus border is an AP/NAT aggregating several
        // student devices (6609 devices behind 2528 addresses in Table 3).
        VantageKind::Campus2 => {
            return (1 + dist::poisson(rng, 1.8) as usize).min(8);
        }
        _ => {}
    }
    let weights: &[(usize, f64)] = match behavior {
        Behavior::Occasional => &[(1, 0.85), (2, 0.12), (3, 0.03)],
        Behavior::UploadOnly => &[(1, 0.72), (2, 0.20), (3, 0.08)],
        Behavior::DownloadOnly => &[(1, 0.62), (2, 0.26), (3, 0.09), (4, 0.03)],
        Behavior::Heavy => &[(1, 0.26), (2, 0.32), (3, 0.22), (4, 0.13), (5, 0.07)],
    };
    *dist::Categorical::new(
        &weights
            .iter()
            .map(|&(n, w)| (n, w))
            .collect::<Vec<(usize, f64)>>(),
    )
    .sample(rng)
}

/// Sample the namespace count of a device (Fig. 13: Campus 1 users hold
/// more shared folders — 13% with a single namespace and 50% with ≥5 —
/// than Home 1 users — 28% and 23%).
pub fn sample_namespace_count(kind: VantageKind, rng: &mut Rng) -> usize {
    let (p_single, extra_mean) = match kind {
        VantageKind::Campus1 => (0.13, 3.4),
        VantageKind::Campus2 => (0.18, 2.8),
        VantageKind::Home1 | VantageKind::Home2 => (0.28, 2.2),
    };
    if rng.chance(p_single) {
        1
    } else {
        // Root + at least one shared folder + a Poisson tail, giving the
        // broad upper halves of Fig. 13 (C1: 50% with ≥5, H1: 23%).
        (2 + dist::poisson(rng, extra_mean) as usize).min(14)
    }
}

/// Per-group probability of coming on-line on a given day, calibrated to
/// Table 5's "days on-line" column (16–28 of 42).
fn daily_presence(behavior: Behavior, rng: &mut Rng) -> f64 {
    let base = match behavior {
        Behavior::Occasional => 0.39,
        Behavior::UploadOnly => 0.47,
        Behavior::DownloadOnly => 0.49,
        Behavior::Heavy => 0.66,
    };
    (base + (rng.f64() - 0.5) * 0.2).clamp(0.05, 0.98)
}

/// Upper bound on devices per household across every vantage point (the
/// Campus 2 access-point model caps its Poisson draw at 8). `host_int`
/// allocation strides by this, so household `idx` owns the id block
/// `[base + 8*idx + 1, base + 8*idx + 8]` regardless of how many devices
/// its neighbours materialise.
pub const MAX_HOUSEHOLD_DEVICES: u64 = 8;

/// Capture-wide base for `host_int` allocation: a single draw from a
/// dedicated fork of the population plane. Non-advancing on `pop_root`,
/// so it can be computed by every household-range shard identically.
pub fn host_int_base(pop_root: &Rng) -> u64 {
    pop_root.fork_named("hostbase").next_u64() >> 32 // vantage-unique base
}

/// The cheap household-local prefix of generation: what the
/// [`abnormal_household`] scan needs without materialising devices.
struct Profile {
    access: Access,
    uses_web: bool,
    behavior: Option<Behavior>,
}

fn household_profile(config: &VantageConfig, pop_root: &Rng, idx: usize) -> Profile {
    let mut rng = pop_root.fork(idx as u64).fork_named("profile");
    let access = config.sample_access(&mut rng);
    let has_client = rng.chance(config.dropbox_penetration);
    let uses_web = rng.chance(if has_client { 0.25 } else { 0.04 });
    let behavior = if has_client {
        let shares = Behavior::shares(config.kind);
        let behavior_dist = dist::Categorical::new(
            &shares
                .iter()
                .map(|&(b, w)| (b, w))
                .collect::<Vec<(Behavior, f64)>>(),
        );
        Some(*behavior_dist.sample(&mut rng))
    } else {
        None
    };
    Profile {
        access,
        uses_web,
        behavior,
    }
}

/// Index of the household hosting the Home 2 misbehaving uploader
/// (Sec. 4.3.1): the first client household of the Heavy group. `None`
/// for vantage points without one, or when the scaled population happens
/// to contain no heavy household. The scan re-derives each household's
/// profile fork, so every household-range shard agrees on the answer
/// without seeing the other ranges.
pub fn abnormal_household(config: &VantageConfig, pop_root: &Rng) -> Option<usize> {
    if !config.has_abnormal_uploader {
        return None;
    }
    (0..config.addresses)
        .find(|&idx| household_profile(config, pop_root, idx).behavior == Some(Behavior::Heavy))
}

/// Build household `idx` — a pure function of the population plane
/// (`pop_root` is only forked, never advanced) and the two capture-wide
/// constants `host_base` ([`host_int_base`]) and `abnormal` (whether this
/// index is the [`abnormal_household`]).
pub fn generate_household(
    config: &VantageConfig,
    version: ClientVersion,
    pop_root: &Rng,
    idx: usize,
    host_base: u64,
    abnormal: bool,
) -> Household {
    let profile = household_profile(config, pop_root, idx);
    let ip = address_of(config.kind, idx);
    let Some(behavior) = profile.behavior else {
        return Household {
            ip,
            access: profile.access,
            behavior: None,
            devices: Vec::new(),
            uses_web: profile.uses_web,
        };
    };
    let mut rng = pop_root.fork(idx as u64).fork_named("devices");
    let n_devices = sample_device_count(config.kind, behavior, &mut rng);
    debug_assert!(n_devices as u64 <= MAX_HOUSEHOLD_DEVICES);
    let presence = daily_presence(behavior, &mut rng);
    let mut devices = Vec::with_capacity(n_devices);
    for k in 0..n_devices {
        // The first device of the designated heavy household becomes the
        // Home 2 misbehaving uploader; it ran for days on end.
        let is_abnormal = abnormal && k == 0;
        devices.push(Device {
            host_int: host_base + idx as u64 * MAX_HOUSEHOLD_DEVICES + k as u64 + 1,
            namespace_count: sample_namespace_count(config.kind, &mut rng),
            workstation: config.kind == VantageKind::Campus1 && rng.chance(0.85),
            always_on: is_abnormal
                || rng.chance(match config.kind {
                    VantageKind::Campus1 => 0.15,
                    _ => 0.06,
                }),
            // Deterministic per-household assignment so that even small
            // scaled populations contain the few devices with broken home
            // gateways (Sec. 5.5).
            nat_afflicted: config.kind.is_home() && idx % 40 == 5 && k == 0,
            abnormal_uploader: is_abnormal,
            daily_presence: presence,
            version,
        });
    }
    Household {
        ip,
        access: profile.access,
        behavior: Some(behavior),
        devices,
        uses_web: profile.uses_web,
    }
}

impl Population {
    /// Build the population of one vantage point: the serial sweep over
    /// [`generate_household`]. `rng` is the population plane (the driver's
    /// `root.fork_named("population")`); it is only forked per household,
    /// never advanced, so partial sweeps over household ranges concatenate
    /// to exactly this result.
    pub fn generate(config: &VantageConfig, version: ClientVersion, rng: &Rng) -> Population {
        let host_base = host_int_base(rng);
        let abnormal = abnormal_household(config, rng);
        let households = (0..config.addresses)
            .map(|idx| {
                generate_household(config, version, rng, idx, host_base, abnormal == Some(idx))
            })
            .collect();
        Population { households }
    }

    /// Households with the Dropbox client installed.
    pub fn with_client(&self) -> impl Iterator<Item = &Household> {
        self.households.iter().filter(|h| h.behavior.is_some())
    }

    /// Total number of Dropbox devices.
    pub fn device_count(&self) -> usize {
        self.households.iter().map(|h| h.devices.len()).sum()
    }
}

/// Stable client address of the idx-th monitored endpoint.
pub fn address_of(kind: VantageKind, idx: usize) -> Ipv4 {
    let base = match kind {
        VantageKind::Campus1 => Ipv4::new(130, 42, 0, 0),
        VantageKind::Campus2 => Ipv4::new(160, 80, 0, 0),
        VantageKind::Home1 => Ipv4::new(87, 10, 0, 0),
        VantageKind::Home2 => Ipv4::new(93, 60, 0, 0),
    };
    Ipv4(base.0 + idx as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(kind: VantageKind, scale: f64, seed: u64) -> Population {
        let config = VantageConfig::paper(kind, scale);
        Population::generate(&config, ClientVersion::V1_2_52, &mut Rng::new(seed))
    }

    #[test]
    fn penetration_matches_config() {
        let p = population(VantageKind::Home1, 0.2, 1);
        let with = p.with_client().count();
        let frac = with as f64 / p.households.len() as f64;
        assert!((frac - 0.069).abs() < 0.02, "penetration {frac}");
    }

    #[test]
    fn campus1_is_single_device_workstations() {
        let p = population(VantageKind::Campus1, 1.0, 2);
        for h in p.with_client() {
            assert!(h.devices.len() <= 2);
        }
        let workstations = p.with_client().filter(|h| h.devices[0].workstation).count();
        assert!(workstations as f64 / p.with_client().count() as f64 > 0.7);
    }

    #[test]
    fn home_device_distribution_mostly_single() {
        let p = population(VantageKind::Home1, 1.0, 3);
        let mut single = 0usize;
        let mut multi = 0usize;
        let mut heavy_devs = Vec::new();
        for h in p.with_client() {
            if h.devices.len() == 1 {
                single += 1;
            } else {
                multi += 1;
            }
            if h.behavior == Some(Behavior::Heavy) {
                heavy_devs.push(h.devices.len());
            }
        }
        let frac_single = single as f64 / (single + multi) as f64;
        assert!((0.5..0.75).contains(&frac_single), "single {frac_single}");
        let heavy_avg = heavy_devs.iter().sum::<usize>() as f64 / heavy_devs.len() as f64;
        assert!(
            heavy_avg > 2.0,
            "heavy households average {heavy_avg} devices"
        );
    }

    #[test]
    fn namespace_counts_differ_campus_vs_home() {
        let mut rng = Rng::new(4);
        let n = 4_000;
        let mut campus_ge5 = 0;
        let mut home_ge5 = 0;
        let mut campus_single = 0;
        let mut home_single = 0;
        for _ in 0..n {
            let c = sample_namespace_count(VantageKind::Campus1, &mut rng);
            let h = sample_namespace_count(VantageKind::Home1, &mut rng);
            assert!((1..=14).contains(&c));
            if c >= 5 {
                campus_ge5 += 1;
            }
            if c == 1 {
                campus_single += 1;
            }
            if h >= 5 {
                home_ge5 += 1;
            }
            if h == 1 {
                home_single += 1;
            }
        }
        let f = |x: i32| x as f64 / n as f64;
        assert!(
            (f(campus_single) - 0.13).abs() < 0.04,
            "{}",
            f(campus_single)
        );
        assert!((f(home_single) - 0.28).abs() < 0.05, "{}", f(home_single));
        assert!(f(campus_ge5) > 0.40, "campus ≥5: {}", f(campus_ge5));
        assert!(f(home_ge5) < f(campus_ge5), "home fewer namespaces");
    }

    #[test]
    fn behavior_shares_sum_to_one() {
        for kind in VantageKind::ALL {
            let s: f64 = Behavior::shares(kind).iter().map(|&(_, w)| w).sum();
            assert!((s - 1.0).abs() < 1e-9, "{kind:?}");
        }
    }

    #[test]
    fn home2_gets_exactly_one_abnormal_uploader() {
        let p = population(VantageKind::Home2, 0.3, 5);
        let abnormal: usize = p
            .households
            .iter()
            .flat_map(|h| &h.devices)
            .filter(|d| d.abnormal_uploader)
            .count();
        assert_eq!(abnormal, 1);
        let p1 = population(VantageKind::Home1, 0.3, 5);
        assert_eq!(
            p1.households
                .iter()
                .flat_map(|h| &h.devices)
                .filter(|d| d.abnormal_uploader)
                .count(),
            0
        );
    }

    #[test]
    fn household_generation_is_range_independent() {
        // Rebuilding the population from arbitrary contiguous household
        // ranges must reproduce the serial sweep exactly — the invariant
        // the sub-capture shards rest on.
        let config = VantageConfig::paper(VantageKind::Home2, 0.05);
        let rng = Rng::new(11);
        let full = Population::generate(&config, ClientVersion::V1_2_52, &rng);
        let base = host_int_base(&rng);
        let ab = abnormal_household(&config, &rng);
        let cuts = [0, 3, config.addresses / 2, config.addresses];
        let mut rebuilt = Vec::new();
        for w in cuts.windows(2) {
            for idx in w[0]..w[1] {
                rebuilt.push(generate_household(
                    &config,
                    ClientVersion::V1_2_52,
                    &rng,
                    idx,
                    base,
                    ab == Some(idx),
                ));
            }
        }
        assert_eq!(full.households.len(), rebuilt.len());
        for (a, b) in full.households.iter().zip(&rebuilt) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn host_ints_are_unique() {
        let p = population(VantageKind::Campus2, 0.3, 6);
        let mut ids: Vec<u64> = p
            .households
            .iter()
            .flat_map(|h| &h.devices)
            .map(|d| d.host_int)
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn addresses_are_stable_and_distinct() {
        assert_eq!(
            address_of(VantageKind::Home1, 5),
            address_of(VantageKind::Home1, 5)
        );
        assert_ne!(
            address_of(VantageKind::Home1, 5),
            address_of(VantageKind::Home1, 6)
        );
        assert_ne!(
            address_of(VantageKind::Home1, 5),
            address_of(VantageKind::Home2, 5)
        );
    }
}

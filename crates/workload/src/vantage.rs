//! Vantage-point configurations (Table 2 / Secs. 3.2, 4.2).
//!
//! The four monitored networks differ in access technology, user
//! population, and distance to the Dropbox data-centers. Absolute
//! population sizes are scaled by a configurable factor (simulating tens
//! of thousands of ADSL lines at packet fidelity is pointless); every
//! reported figure is a *share* or a *distribution*, so the scale cancels
//! out — `EXPERIMENTS.md` documents the factor used for the shipped
//! results.

use dropbox::spec::{self, ProviderSpec};
use simcore::{Rng, SimDuration};
use tcpmodel::{AccessLink, PathParams};

/// The four vantage points.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VantageKind {
    /// Wired research/administrative workstations (CS department).
    Campus1,
    /// Border of a university: wireless access points + student houses,
    /// NAT and proxies; DNS not visible to the probe.
    Campus2,
    /// FTTH/ADSL customers of a nationwide ISP.
    Home1,
    /// ADSL customers.
    Home2,
}

impl VantageKind {
    /// All vantage points in the paper's order.
    pub const ALL: [VantageKind; 4] = [
        VantageKind::Campus1,
        VantageKind::Campus2,
        VantageKind::Home1,
        VantageKind::Home2,
    ];

    /// Dataset name as in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            VantageKind::Campus1 => "Campus 1",
            VantageKind::Campus2 => "Campus 2",
            VantageKind::Home1 => "Home 1",
            VantageKind::Home2 => "Home 2",
        }
    }

    /// Whether this is a home (ISP) vantage point.
    pub fn is_home(self) -> bool {
        matches!(self, VantageKind::Home1 | VantageKind::Home2)
    }
}

/// Access technology of a household / client machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// Campus wired Ethernet.
    Wired,
    /// Campus WiFi.
    Wireless,
    /// Fibre to the home.
    Ftth,
    /// ADSL (asymmetric, uplink-constrained).
    Adsl,
}

/// Full configuration of one vantage point simulation.
#[derive(Clone, Debug)]
pub struct VantageConfig {
    /// Which vantage point.
    pub kind: VantageKind,
    /// Number of client addresses (households / workstations) simulated.
    pub addresses: usize,
    /// Fraction of addresses with the Dropbox client installed.
    pub dropbox_penetration: f64,
    /// Capture length in days.
    pub days: u32,
    /// Whether the probe sees DNS traffic.
    pub expose_dns: bool,
    /// Base probe↔storage (Amazon) RTT.
    pub storage_rtt: SimDuration,
    /// Base probe↔control (Dropbox DC) RTT.
    pub control_rtt: SimDuration,
    /// Days at which the control route shifts by a small step
    /// (the <10 ms steps of Fig. 6 in Campus 1 / Home 2).
    pub control_route_steps: Vec<(u32, i64)>,
    /// Whether this vantage hosts the misbehaving single-chunk uploader.
    pub has_abnormal_uploader: bool,
    /// Provider protocol the synced devices speak. The paper's captures
    /// are Dropbox; the provider-matrix experiments swap in competing
    /// specs through the same driver.
    pub protocol: &'static ProviderSpec,
    /// Access-link profile override. `None` keeps the per-vantage access
    /// mix of [`VantageConfig::sample_access`]; `Some` forces every
    /// household onto the given profile (the `--access wifi|lte` runs).
    pub link: Option<&'static AccessLink>,
}

impl VantageConfig {
    /// The paper-calibrated configuration of a vantage point, with the
    /// device population scaled by `scale`.
    pub fn paper(kind: VantageKind, scale: f64) -> Self {
        let s = |n: usize| ((n as f64 * scale).round() as usize).max(8);
        match kind {
            VantageKind::Campus1 => VantageConfig {
                kind,
                addresses: s(400),
                dropbox_penetration: 0.62, // 283 devices over 400 wired IPs
                days: 42,
                expose_dns: true,
                storage_rtt: SimDuration::from_millis(96),
                control_rtt: SimDuration::from_millis(168),
                control_route_steps: vec![(12, 6), (30, -4)],
                has_abnormal_uploader: false,
                protocol: &spec::DROPBOX,
                link: None,
            },
            VantageKind::Campus2 => VantageConfig {
                kind,
                addresses: s(2_528),
                dropbox_penetration: 0.75,
                days: 42,
                expose_dns: false,
                storage_rtt: SimDuration::from_millis(88),
                control_rtt: SimDuration::from_millis(152),
                control_route_steps: Vec::new(),
                has_abnormal_uploader: false,
                protocol: &spec::DROPBOX,
                link: None,
            },
            VantageKind::Home1 => VantageConfig {
                kind,
                addresses: s(18_785),
                dropbox_penetration: 0.069, // 6.9% of households (Sec. 3.3)
                days: 42,
                expose_dns: true,
                storage_rtt: SimDuration::from_millis(108),
                control_rtt: SimDuration::from_millis(204),
                control_route_steps: Vec::new(),
                has_abnormal_uploader: false,
                protocol: &spec::DROPBOX,
                link: None,
            },
            VantageKind::Home2 => VantageConfig {
                kind,
                addresses: s(13_723),
                dropbox_penetration: 0.062,
                days: 42,
                expose_dns: true,
                storage_rtt: SimDuration::from_millis(82),
                control_rtt: SimDuration::from_millis(146),
                control_route_steps: vec![(20, 8)],
                has_abnormal_uploader: true,
                protocol: &spec::DROPBOX,
                link: None,
            },
        }
    }

    /// Sample the access technology of a household at this vantage point.
    pub fn sample_access(&self, rng: &mut Rng) -> Access {
        match self.kind {
            VantageKind::Campus1 => Access::Wired,
            VantageKind::Campus2 => {
                if rng.chance(0.75) {
                    Access::Wireless
                } else {
                    Access::Wired
                }
            }
            VantageKind::Home1 => {
                if rng.chance(0.35) {
                    Access::Ftth
                } else {
                    Access::Adsl
                }
            }
            VantageKind::Home2 => Access::Adsl,
        }
    }

    /// Control-plane RTT on a given day (including route steps).
    pub fn control_rtt_on(&self, day: u32) -> SimDuration {
        let mut ms = self.control_rtt.millis() as i64;
        for &(step_day, delta) in &self.control_route_steps {
            if day >= step_day {
                ms += delta;
            }
        }
        SimDuration::from_millis(ms.max(1) as u64)
    }

    /// Path parameters for a flow from a household with the given access
    /// technology to a server plane with base RTT `outer`. A forced
    /// [`AccessLink`] profile (the `--access` runs) takes precedence over
    /// the vantage's own access mix and draws the same number of RNG
    /// values per rate-capped path.
    pub fn path(&self, access: Access, outer: SimDuration, rng: &mut Rng) -> PathParams {
        if let Some(link) = self.link {
            return link.path(outer, rng);
        }
        let (inner_ms, loss, up_rate, down_rate) = match access {
            Access::Wired => (rng.range_u64(2, 8), 0.0004, None, None),
            Access::Wireless => (rng.range_u64(6, 35), 0.006, None, None),
            Access::Ftth => (
                rng.range_u64(3, 10),
                0.0006,
                Some(rng.range_u64(1_200_000, 4_000_000)),
                Some(rng.range_u64(3_000_000, 12_000_000)),
            ),
            Access::Adsl => (
                rng.range_u64(25, 60),
                0.001,
                Some(rng.range_u64(40_000, 130_000)),
                Some(rng.range_u64(250_000, 2_500_000)),
            ),
        };
        PathParams {
            inner_rtt: SimDuration::from_millis(inner_ms),
            outer_rtt: outer,
            jitter: 0.06,
            loss_up: loss,
            loss_down: loss,
            up_rate,
            down_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_respects_minimum() {
        let c = VantageConfig::paper(VantageKind::Campus1, 0.001);
        assert!(c.addresses >= 8);
        let full = VantageConfig::paper(VantageKind::Home1, 1.0);
        assert_eq!(full.addresses, 18_785);
    }

    #[test]
    fn storage_rtt_band_matches_figure_6() {
        for kind in VantageKind::ALL {
            let c = VantageConfig::paper(kind, 0.1);
            let s = c.storage_rtt.millis();
            let ctl = c.control_rtt.millis();
            assert!((80..=120).contains(&s), "{kind:?} storage {s}");
            assert!((140..=220).contains(&ctl), "{kind:?} control {ctl}");
            assert!(ctl > s, "control farther than storage");
        }
    }

    #[test]
    fn control_route_steps_apply() {
        let c = VantageConfig::paper(VantageKind::Campus1, 0.1);
        let before = c.control_rtt_on(0).millis();
        let mid = c.control_rtt_on(15).millis();
        assert_eq!(mid as i64 - before as i64, 6);
        // Steps stay under 10 ms as in the paper.
        for d in 0..42 {
            let diff = (c.control_rtt_on(d).millis() as i64 - before as i64).abs();
            assert!(diff < 10);
        }
    }

    #[test]
    fn access_matches_vantage() {
        let mut rng = Rng::new(1);
        let c1 = VantageConfig::paper(VantageKind::Campus1, 0.1);
        for _ in 0..10 {
            assert_eq!(c1.sample_access(&mut rng), Access::Wired);
        }
        let h2 = VantageConfig::paper(VantageKind::Home2, 0.1);
        for _ in 0..10 {
            assert_eq!(h2.sample_access(&mut rng), Access::Adsl);
        }
        let h1 = VantageConfig::paper(VantageKind::Home1, 0.1);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..100 {
            kinds.insert(format!("{:?}", h1.sample_access(&mut rng)));
        }
        assert!(kinds.contains("Ftth") && kinds.contains("Adsl"));
    }

    #[test]
    fn adsl_paths_are_rate_capped() {
        let mut rng = Rng::new(2);
        let h2 = VantageConfig::paper(VantageKind::Home2, 0.1);
        let p = h2.path(Access::Adsl, h2.storage_rtt, &mut rng);
        assert!(
            p.up_rate.unwrap() < 150_000,
            "ADSL uplink under ~1.2 Mbit/s"
        );
        assert!(p.down_rate.unwrap() > p.up_rate.unwrap(), "asymmetric");
        let c1 = VantageConfig::paper(VantageKind::Campus1, 0.1);
        let p = c1.path(Access::Wired, c1.storage_rtt, &mut rng);
        assert!(p.up_rate.is_none() && p.down_rate.is_none());
    }

    #[test]
    fn campus2_hides_dns() {
        assert!(!VantageConfig::paper(VantageKind::Campus2, 0.1).expose_dns);
        assert!(VantageConfig::paper(VantageKind::Home1, 0.1).expose_dns);
    }
}

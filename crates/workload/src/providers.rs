//! Background services at flow fidelity (Secs. 3.2–3.3, Figs. 2–3).
//!
//! The provider comparison and the Table 2 totals only need per-flow
//! endpoints, names, timestamps and byte counts — no packet dynamics — so
//! competing cloud services (iCloud, SkyDrive, Google Drive, the smaller
//! providers), YouTube, and the residual "everything else" traffic are
//! generated directly as flow records. Calibration follows the paper:
//!
//! * iCloud reaches the most households (~11%) but moves little data
//!   (no arbitrary-file sync),
//! * Dropbox dominates volume by an order of magnitude,
//! * SkyDrive (~1.7%) and Google Drive step up at their late-April
//!   launches — Google Drive appears exactly on 2012-04-24 (capture
//!   day 31),
//! * YouTube carries roughly 3× the Dropbox volume in Campus 2, with
//!   Dropbox itself around 4% of all traffic.

use crate::population::Population;
use crate::vantage::{VantageConfig, VantageKind};
use nettrace::flow::{DirStats, FlowClose};
use nettrace::{Endpoint, FlowKey, FlowRecord, Ipv4};
use simcore::time::CaptureCalendar;
use simcore::{dist, Rng, SimDuration, SimTime};

/// Capture day of the Google Drive launch (2012-04-24).
pub const GDRIVE_LAUNCH_DAY: u32 = 31;
/// Capture day of the SkyDrive re-launch volume jump (2012-04-23).
pub const SKYDRIVE_JUMP_DAY: u32 = 30;

/// Next ephemeral source port of a household: a plain per-household
/// counter over the 30000–49999 range. Ports are presentation-only (the
/// digests hash timestamps and byte counts, not ports), but a counter
/// keeps them independent of flow start times.
fn ephemeral_port(seq: &mut u32) -> u16 {
    let port = 30_000 + (*seq % 20_000) as u16;
    *seq += 1;
    port
}

/// A synthetic background flow record.
#[allow(clippy::too_many_arguments)]
fn record(
    client: Ipv4,
    port: u16,
    server: Ipv4,
    server_name: &str,
    sni: bool,
    at: SimTime,
    up: u64,
    down: u64,
    expose_dns: bool,
) -> FlowRecord {
    FlowRecord {
        key: FlowKey::new(Endpoint::new(client, port), Endpoint::new(server, 443)),
        first_syn: at,
        last_packet: at + SimDuration::from_secs(30 + (up + down) / 200_000),
        up: DirStats {
            bytes: up,
            packets: up / 1_400 + 2,
            ..DirStats::default()
        },
        down: DirStats {
            bytes: down,
            packets: down / 1_400 + 2,
            ..DirStats::default()
        },
        min_rtt_ms: None,
        rtt_samples: 0,
        tls_sni: sni.then(|| server_name.to_owned()),
        tls_certificate_cn: None,
        http_host: (!sni).then(|| server_name.to_owned()),
        server_fqdn: expose_dns.then(|| server_name.to_owned()),
        notify: None,
        close: FlowClose::Fin,
        aborted: false,
    }
}

/// One row of the background-model calibration table. Everything the
/// provider comparison is fitted with — adoption fractions, volume
/// medians, and the launch-calendar days — lives here, per vantage, so
/// recalibrating against Figs. 2–3 touches exactly one table.
struct Calibration {
    icloud_frac: f64,
    skydrive_frac: f64,
    gdrive_final_frac: f64,
    other_frac: f64,
    youtube_frac: f64,
    /// Median YouTube bytes per active household-day.
    youtube_median: f64,
    /// Median residual bytes per household-day.
    residual_median: f64,
    /// Capture day Google Drive adoption can start.
    gdrive_launch_day: u32,
    /// Capture day of the SkyDrive volume jump.
    skydrive_jump_day: u32,
}

const CAMPUS1_CAL: Calibration = Calibration {
    icloud_frac: 0.10,
    skydrive_frac: 0.02,
    gdrive_final_frac: 0.02,
    other_frac: 0.015,
    youtube_frac: 0.55,
    youtube_median: 90.0e6,
    residual_median: 350.0e6,
    gdrive_launch_day: GDRIVE_LAUNCH_DAY,
    skydrive_jump_day: SKYDRIVE_JUMP_DAY,
};

const CAMPUS2_CAL: Calibration = Calibration {
    icloud_frac: 0.13,
    skydrive_frac: 0.02,
    gdrive_final_frac: 0.02,
    other_frac: 0.015,
    youtube_frac: 0.50,
    youtube_median: 58.0e6,
    residual_median: 170.0e6,
    ..CAMPUS1_CAL
};

const HOME_CAL: Calibration = Calibration {
    icloud_frac: 0.111,
    skydrive_frac: 0.017,
    gdrive_final_frac: 0.012,
    other_frac: 0.01,
    youtube_frac: 0.40,
    youtube_median: 70.0e6,
    residual_median: 250.0e6,
    ..CAMPUS1_CAL
};

fn calibration(kind: VantageKind) -> &'static Calibration {
    match kind {
        VantageKind::Campus1 => &CAMPUS1_CAL,
        VantageKind::Campus2 => &CAMPUS2_CAL,
        VantageKind::Home1 | VantageKind::Home2 => &HOME_CAL,
    }
}

/// Generate the background flow records of a vantage point: the serial
/// sweep over [`household_flows`]. `rng` is the providers plane (the
/// driver's `root.fork_named("providers")`); it is only forked per
/// household, so per-household emission concatenates to this result.
pub fn background_flows(
    config: &VantageConfig,
    population: &Population,
    rng: &mut Rng,
) -> Vec<FlowRecord> {
    let mut out = Vec::new();
    for (idx, hh) in population.households.iter().enumerate() {
        let mut hrng = rng.fork(idx as u64);
        household_flows(config, hh, &mut hrng, &mut |rec| out.push(rec));
    }
    out
}

/// Background flows of one household, emitted in canonical (day, service)
/// order. Pure in `(config, hh, hrng)`: the stream handed in must be the
/// household's own fork of the providers plane, so household-range shards
/// replay exactly the records of the capture-wide sweep.
pub fn household_flows(
    config: &VantageConfig,
    hh: &crate::population::Household,
    hrng: &mut Rng,
    emit: &mut dyn FnMut(FlowRecord),
) {
    let k = calibration(config.kind);
    let mut port_seq: u32 = 0;
    let weekday = |day: u32| {
        if config.kind.is_home() || CaptureCalendar::is_working_day(day) {
            1.0
        } else {
            0.35
        }
    };

    let icloud = hrng.chance(k.icloud_frac);
    let skydrive = hrng.chance(k.skydrive_frac);
    let gdrive_adopter = hrng.chance(k.gdrive_final_frac);
    // Adoption day: launch day or shortly after.
    let gdrive_day = k.gdrive_launch_day + dist::geometric(hrng, 0.35) as u32;
    let other = hrng.chance(k.other_frac);
    let youtube = hrng.chance(k.youtube_frac);

    for day in 0..config.days {
        let w = weekday(day);
        let at = |h: &mut Rng| {
            SimTime::from_day_offset(day, SimDuration::from_secs(h.range_u64(6 * 3600, 86_000)))
        };
        if icloud && hrng.chance(0.80 * w) {
            // Several small flows: push notifications, photo-stream
            // trickle. High device popularity, low volume.
            for _ in 0..hrng.range_u64(2, 6) {
                let t = at(hrng);
                let down = dist::lognormal_median(hrng, 110_000.0, 1.2) as u64;
                emit(record(
                    hh.ip,
                    ephemeral_port(&mut port_seq),
                    Ipv4::new(17, 172, 100, hrng.range_u64(1, 250) as u8),
                    "p05-content.icloud.com",
                    true,
                    t,
                    down / 8,
                    down,
                    config.expose_dns,
                ));
            }
        }
        if skydrive && hrng.chance(0.5 * w) {
            let boost = if day >= k.skydrive_jump_day { 4.0 } else { 1.0 };
            let t = at(hrng);
            let down = (dist::lognormal_median(hrng, 900_000.0, 1.4) * boost) as u64;
            emit(record(
                hh.ip,
                ephemeral_port(&mut port_seq),
                Ipv4::new(134, 170, 20, hrng.range_u64(1, 250) as u8),
                "duc281.livefilestore.com",
                true,
                t,
                down / 6,
                down,
                config.expose_dns,
            ));
        }
        if gdrive_adopter && day >= gdrive_day && hrng.chance(0.6 * w) {
            let t = at(hrng);
            let down = dist::lognormal_median(hrng, 1_500_000.0, 1.4) as u64;
            emit(record(
                hh.ip,
                ephemeral_port(&mut port_seq),
                Ipv4::new(74, 125, 30, hrng.range_u64(1, 250) as u8),
                "drive.google.com",
                true,
                t,
                down / 5,
                down,
                config.expose_dns,
            ));
        }
        if other && hrng.chance(0.4 * w) {
            let t = at(hrng);
            let down = dist::lognormal_median(hrng, 600_000.0, 1.3) as u64;
            let name = *hrng.pick(&["api.sugarsync.com", "upload.box.com", "fs-1.one.ubuntu.com"]);
            emit(record(
                hh.ip,
                ephemeral_port(&mut port_seq),
                Ipv4::new(64, 30, 128, hrng.range_u64(1, 250) as u8),
                name,
                true,
                t,
                down / 6,
                down,
                config.expose_dns,
            ));
        }
        if youtube && hrng.chance(0.75 * w) {
            let total = dist::lognormal_median(hrng, k.youtube_median, 1.1) as u64;
            // Split the day's watching into a few progressive flows.
            let n = hrng.range_u64(1, 4);
            for _ in 0..n {
                let t = at(hrng);
                emit(record(
                    hh.ip,
                    ephemeral_port(&mut port_seq),
                    Ipv4::new(208, 65, 153, hrng.range_u64(1, 250) as u8),
                    "r4---sn-hpa7zn7s.googlevideo.com",
                    true,
                    t,
                    total / n / 60,
                    total / n,
                    config.expose_dns,
                ));
            }
        }
        // Residual traffic: one aggregate record per household-day.
        if hrng.chance(0.85) {
            let t = at(hrng);
            let down = (dist::lognormal_median(hrng, k.residual_median, 0.9) * w) as u64;
            emit(record(
                hh.ip,
                ephemeral_port(&mut port_seq),
                Ipv4::new(203, 0, 113, hrng.range_u64(1, 250) as u8),
                "cdn.example.net",
                true,
                t,
                down / 10,
                down,
                config.expose_dns,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use dropbox::client::ClientVersion;
    use dropbox_analysis::classify::{provider_of, Provider};

    fn setup(kind: VantageKind) -> (VantageConfig, Vec<FlowRecord>) {
        let config = VantageConfig::paper(kind, 0.05);
        let rng = Rng::new(9);
        let pop = Population::generate(&config, ClientVersion::V1_2_52, &mut rng.fork(1));
        let flows = background_flows(&config, &pop, &mut rng.fork(2));
        (config, flows)
    }

    #[test]
    fn google_drive_appears_at_launch() {
        let (_, flows) = setup(VantageKind::Home1);
        let gdrive: Vec<&FlowRecord> = flows
            .iter()
            .filter(|f| provider_of(f) == Provider::GoogleDrive)
            .collect();
        assert!(!gdrive.is_empty(), "Google Drive traffic must exist");
        assert!(gdrive
            .iter()
            .all(|f| f.first_syn.day() >= GDRIVE_LAUNCH_DAY));
        assert!(gdrive
            .iter()
            .any(|f| f.first_syn.day() <= GDRIVE_LAUNCH_DAY + 3));
    }

    #[test]
    fn icloud_reaches_more_households_than_skydrive() {
        let (_, flows) = setup(VantageKind::Home1);
        let households = |p: Provider| {
            flows
                .iter()
                .filter(|f| provider_of(f) == p)
                .map(|f| f.key.client.ip)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        };
        assert!(households(Provider::ICloud) > 3 * households(Provider::SkyDrive));
    }

    #[test]
    fn skydrive_volume_jumps_after_launch() {
        let (config, flows) = setup(VantageKind::Home1);
        let mut before = 0u64;
        let mut after = 0u64;
        let mut before_days = 0u64;
        let mut after_days = 0u64;
        for d in 0..config.days {
            if d < SKYDRIVE_JUMP_DAY {
                before_days += 1;
            } else {
                after_days += 1;
            }
        }
        for f in &flows {
            if provider_of(f) == Provider::SkyDrive {
                if f.first_syn.day() < SKYDRIVE_JUMP_DAY {
                    before += f.total_bytes();
                } else {
                    after += f.total_bytes();
                }
            }
        }
        let rate_before = before as f64 / before_days as f64;
        let rate_after = after as f64 / after_days as f64;
        assert!(
            rate_after > 2.0 * rate_before,
            "{rate_after:.0} vs {rate_before:.0}"
        );
    }

    #[test]
    fn youtube_dominates_cloud_providers_in_volume() {
        let (_, flows) = setup(VantageKind::Campus2);
        let vol = |p: Provider| -> u64 {
            flows
                .iter()
                .filter(|f| provider_of(f) == p)
                .map(|f| f.total_bytes())
                .sum()
        };
        assert!(vol(Provider::YouTube) > vol(Provider::ICloud));
        assert!(vol(Provider::YouTube) > vol(Provider::SkyDrive));
    }

    #[test]
    fn campus_weekends_are_quieter() {
        let (config, flows) = setup(VantageKind::Campus2);
        let mut weekday_bytes = 0u64;
        let mut weekend_bytes = 0u64;
        let mut wd = 0u32;
        let mut we = 0u32;
        for d in 0..config.days {
            if SimTime::from_day_offset(d, SimDuration::ZERO).is_weekend() {
                we += 1;
            } else {
                wd += 1;
            }
        }
        for f in &flows {
            if f.first_syn.is_weekend() {
                weekend_bytes += f.total_bytes();
            } else {
                weekday_bytes += f.total_bytes();
            }
        }
        let weekday_rate = weekday_bytes as f64 / wd as f64;
        let weekend_rate = weekend_bytes as f64 / we as f64;
        assert!(weekend_rate < 0.75 * weekday_rate);
    }

    #[test]
    fn ephemeral_ports_count_per_household_not_per_timestamp() {
        let (_, flows) = setup(VantageKind::Home1);
        let mut per_hh: std::collections::BTreeMap<_, Vec<u16>> = Default::default();
        for f in &flows {
            let p = f.key.client.port;
            assert!((30_000..50_000).contains(&p), "port {p} in ephemeral band");
            per_hh.entry(f.key.client.ip).or_default().push(p);
        }
        // Each household's flows are emitted in order with consecutive
        // ports starting at the base — independent of flow timestamps.
        for ports in per_hh.values() {
            for (i, &p) in ports.iter().enumerate() {
                assert_eq!(p as u32, 30_000 + (i as u32 % 20_000));
            }
        }
    }

    #[test]
    fn dns_exposure_controls_fqdn_labels() {
        let (_, flows_home) = setup(VantageKind::Home1);
        assert!(flows_home.iter().all(|f| f.server_fqdn.is_some()));
        let (_, flows_c2) = setup(VantageKind::Campus2);
        assert!(flows_c2.iter().all(|f| f.server_fqdn.is_none()));
    }
}

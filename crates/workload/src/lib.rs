//! Workload generation: the populations, behaviours, and schedules that
//! drive the simulated Dropbox deployment at the four vantage points.
//!
//! * [`vantage`] — per-vantage-point configuration: population sizes,
//!   access technologies, RTT bands to the storage and control
//!   data-centers, loss rates, and capability flags (Table 2 / Sec. 3.2),
//! * [`population`] — households, devices and users: behaviour groups
//!   (Sec. 5.1), devices per household (Fig. 12), namespaces per device
//!   (Fig. 13), and the special actors (the Home 2 misbehaving uploader),
//! * [`activity`] — session schedules (diurnal and weekly patterns,
//!   Figs. 14–16) and file-event processes per behaviour group,
//! * [`providers`] — background services at flow fidelity: iCloud,
//!   SkyDrive, Google Drive (with its launch-day step), the smaller
//!   providers, YouTube, and residual traffic (Figs. 2–3),
//! * [`driver`] — the end-to-end simulation: plays every device's sessions
//!   through the `dropbox` protocol engine and the `tcpmodel` network onto
//!   a `tstat` monitor, producing one `dropbox_analysis`-ready dataset
//!   of flow records per vantage point,
//! * [`audit`] / [`oracle`] — the chaos-soak ground truth: the driver
//!   journals every commit, delivery, excuse, flush, and reconnect into a
//!   [`SyncAudit`] ledger, and the read-only convergence oracle checks
//!   the sync invariants of DESIGN.md §9 over it after quiescence,
//! * [`shard`] — the parallel decomposition: each of the five captures
//!   cut into contiguous *household ranges* with independent per-household
//!   seed streams, executed on `simcore::par` so `--jobs N` runs are
//!   byte-identical to serial runs at every job and sub-shard count.
//!
//! [`simulate_vantage`] is a household sweep: every household is played
//! from its own seed stream (`simcore::par::household_stream`) against
//! household-local state, so any contiguous range of the sweep
//! ([`driver::simulate_vantage_span`]) can run on its own worker and the
//! ranges merge back byte-identically in household order. Parallelism
//! happens between household ranges, via [`shard::simulate_shards`];
//! `DESIGN.md` §7 pins the contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod audit;
pub mod driver;
pub mod oracle;
pub mod population;
pub mod providers;
pub mod shard;
pub mod vantage;

pub use audit::SyncAudit;
pub use driver::{
    simulate_vantage, simulate_vantage_audited, simulate_vantage_span, FaultStats, SimOutput,
    SpanOutput,
};
pub use oracle::Violation;
pub use shard::{simulate_shards, CaptureShard, HouseholdShard, ShardPlan};
pub use simcore::faults::{FaultPlan, FlowFaults, OutageKnobs};
pub use vantage::{VantageConfig, VantageKind};

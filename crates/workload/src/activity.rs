//! Session schedules and file-event processes (Secs. 5.4–5.5).
//!
//! Sessions follow the patterns of Figs. 14–16: office-hour workstation
//! sessions on working days in Campus 1, transit-driven daytime sessions
//! in Campus 2 with a strong weekly seasonality, morning/evening peaks in
//! the home networks with ~40% of devices starting a session every day,
//! and a small population of always-on devices producing the tails of the
//! session-duration CDF. Within a session, file events arrive at
//! behaviour-group-dependent rates.

use crate::population::{Behavior, Device};
use crate::vantage::VantageKind;
use dropbox::content::ContentKind;
use simcore::time::CaptureCalendar;
use simcore::{dist, Rng, SimDuration, SimTime};

/// One on-line period of a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Session {
    /// Session start.
    pub start: SimTime,
    /// Session end.
    pub end: SimTime,
}

impl Session {
    /// Session length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Sample the start hour (fractional) of a session for a vantage point.
fn sample_start_hour(kind: VantageKind, workstation: bool, rng: &mut Rng) -> f64 {
    match kind {
        VantageKind::Campus1 if workstation => dist::normal(rng, 8.8, 1.0).clamp(6.0, 12.0),
        VantageKind::Campus1 | VantageKind::Campus2 => {
            // Student transit: spread across the teaching day.
            dist::normal(rng, 13.0, 3.2).clamp(7.5, 21.0)
        }
        VantageKind::Home1 | VantageKind::Home2 => {
            // Morning and evening peaks (Fig. 15(a)).
            let u = rng.f64();
            if u < 0.30 {
                dist::normal(rng, 8.0, 1.1).clamp(5.0, 12.0)
            } else if u < 0.85 {
                dist::normal(rng, 20.0, 1.8).clamp(16.0, 23.9)
            } else {
                rng.range_f64(10.0, 18.0)
            }
        }
    }
}

/// Sample a session duration.
fn sample_duration(kind: VantageKind, workstation: bool, rng: &mut Rng) -> SimDuration {
    let hours = match kind {
        VantageKind::Campus1 if workstation => dist::normal(rng, 8.3, 1.3).clamp(4.0, 12.0),
        VantageKind::Campus1 | VantageKind::Campus2 => {
            dist::lognormal_median(rng, 1.4, 0.8).clamp(0.05, 10.0)
        }
        VantageKind::Home1 | VantageKind::Home2 => {
            dist::lognormal_median(rng, 1.8, 1.0).clamp(0.05, 16.0)
        }
    };
    SimDuration::from_secs_f64(hours * 3600.0)
}

/// Weekly presence factor (Fig. 14: strong weekday seasonality at the
/// campuses, flat at home).
fn weekday_factor(kind: VantageKind, day: u32) -> f64 {
    let working = CaptureCalendar::is_working_day(day);
    match kind {
        VantageKind::Campus1 => {
            if working {
                1.0
            } else {
                0.12
            }
        }
        VantageKind::Campus2 => {
            if working {
                1.0
            } else {
                0.35
            }
        }
        VantageKind::Home1 | VantageKind::Home2 => 1.0,
    }
}

/// Generate the session schedule of one device over the capture.
pub fn device_sessions(
    kind: VantageKind,
    device: &Device,
    days: u32,
    rng: &mut Rng,
) -> Vec<Session> {
    if device.always_on {
        // Connected from early in the capture to its end.
        let start = SimTime::from_day_offset(0, SimDuration::from_secs(rng.range_u64(0, 86_399)));
        let end = SimTime::from_day_offset(days - 1, SimDuration::from_hours(24));
        return vec![Session { start, end }];
    }

    let mut sessions: Vec<Session> = Vec::new();
    for day in 0..days {
        let p = device.daily_presence * weekday_factor(kind, day);
        if !rng.chance(p) {
            continue;
        }
        let n = if rng.chance(match kind {
            VantageKind::Campus1 => 0.10,
            VantageKind::Campus2 => 0.18,
            _ => 0.30,
        }) {
            2
        } else {
            1
        };
        for _ in 0..n {
            let hour = sample_start_hour(kind, device.workstation, rng);
            let start = SimTime::from_day_offset(day, SimDuration::from_secs_f64(hour * 3600.0));
            let dur = sample_duration(kind, device.workstation, rng);
            sessions.push(Session {
                start,
                end: start + dur,
            });
        }
    }
    sessions.sort_by_key(|s| s.start);
    // Merge overlaps (a device has at most one live session) and clip at
    // the end of the capture — the probe simply stops observing.
    let capture_end = SimTime::from_day_offset(days - 1, SimDuration::from_hours(24));
    let mut merged: Vec<Session> = Vec::with_capacity(sessions.len());
    for mut s in sessions {
        if s.start >= capture_end {
            continue;
        }
        s.end = s.end.min(capture_end);
        match merged.last_mut() {
            Some(last) if s.start <= last.end => last.end = last.end.max(s.end),
            _ => merged.push(s),
        }
    }
    merged
}

/// A local file event inside a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileEvent {
    /// When the client detects the change.
    pub at: SimTime,
    /// Content class of the touched file.
    pub kind: ContentKind,
    /// True for an edit of an existing file (delta path), false for a new
    /// file.
    pub is_edit: bool,
}

/// Upload-event rate per active hour, by behaviour group.
pub fn upload_rate_per_hour(behavior: Behavior) -> f64 {
    match behavior {
        Behavior::Occasional => 0.002,
        Behavior::UploadOnly => 2.0,
        Behavior::DownloadOnly => 0.005,
        Behavior::Heavy => 2.6,
    }
}

/// Sample the content-kind mix of a group (upload-only users skew to
/// media/backup content).
fn sample_kind(behavior: Behavior, rng: &mut Rng) -> ContentKind {
    let (text, doc) = match behavior {
        Behavior::UploadOnly => (0.25, 0.25),
        // The rare uploads of passive users are small text/config files.
        Behavior::Occasional | Behavior::DownloadOnly => (0.85, 0.12),
        Behavior::Heavy => (0.60, 0.28),
    };
    let u = rng.f64();
    if u < text {
        ContentKind::Text
    } else if u < text + doc {
        ContentKind::Document
    } else {
        ContentKind::Media
    }
}

/// Poisson file events of one session.
pub fn file_events(behavior: Behavior, session: &Session, rng: &mut Rng) -> Vec<FileEvent> {
    let rate = upload_rate_per_hour(behavior);
    let hours = session.duration().as_secs_f64() / 3600.0;
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        t += dist::exponential(rng, rate.max(1e-9));
        if t >= hours {
            break;
        }
        out.push(FileEvent {
            at: session.start + SimDuration::from_secs_f64(t * 3600.0),
            kind: sample_kind(behavior, rng),
            is_edit: rng.chance(0.45),
        });
        if out.len() >= 400 {
            break; // safety valve for extreme sessions
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropbox::client::ClientVersion;

    fn device(presence: f64) -> Device {
        Device {
            host_int: 1,
            namespace_count: 3,
            workstation: false,
            always_on: false,
            nat_afflicted: false,
            abnormal_uploader: false,
            daily_presence: presence,
            version: ClientVersion::V1_2_52,
        }
    }

    #[test]
    fn sessions_are_disjoint_and_ordered() {
        let mut rng = Rng::new(1);
        let d = device(0.9);
        let sessions = device_sessions(VantageKind::Home1, &d, 42, &mut rng);
        assert!(!sessions.is_empty());
        for w in sessions.windows(2) {
            assert!(w[0].end < w[1].start, "sessions must not overlap");
        }
    }

    #[test]
    fn always_on_device_has_single_long_session() {
        let mut rng = Rng::new(2);
        let mut d = device(0.5);
        d.always_on = true;
        let sessions = device_sessions(VantageKind::Home1, &d, 42, &mut rng);
        assert_eq!(sessions.len(), 1);
        assert!(sessions[0].duration().secs() > 40 * 86_400);
    }

    #[test]
    fn campus1_workstation_office_hours() {
        let mut rng = Rng::new(3);
        let mut d = device(0.9);
        d.workstation = true;
        let sessions = device_sessions(VantageKind::Campus1, &d, 42, &mut rng);
        let mut weekend = 0;
        for s in &sessions {
            let h = s.start.hour();
            assert!((6..=12).contains(&h), "start hour {h}");
            if s.start.is_weekend() {
                weekend += 1;
            }
        }
        assert!(
            (weekend as f64) < 0.2 * sessions.len() as f64,
            "weekday seasonality: {weekend}/{}",
            sessions.len()
        );
        // Typical duration around a work day.
        let avg_h: f64 = sessions
            .iter()
            .map(|s| s.duration().as_secs_f64() / 3600.0)
            .sum::<f64>()
            / sessions.len() as f64;
        assert!((6.0..11.0).contains(&avg_h), "avg session {avg_h} h");
    }

    #[test]
    fn home_presence_is_flat_across_week() {
        let rng = Rng::new(4);
        let d = device(0.6);
        let mut weekday_days = std::collections::BTreeSet::new();
        let mut weekend_days = std::collections::BTreeSet::new();
        // Aggregate over many devices for stability.
        for seed in 0..200u64 {
            let mut r = rng.fork(seed);
            for s in device_sessions(VantageKind::Home1, &d, 42, &mut r) {
                let day = s.start.day();
                if s.start.is_weekend() {
                    weekend_days.insert((seed, day));
                } else {
                    weekday_days.insert((seed, day));
                }
            }
        }
        // 12 weekend days vs 30 weekdays in the capture: the per-day rate
        // should be comparable.
        let weekday_rate = weekday_days.len() as f64 / 30.0;
        let weekend_rate = weekend_days.len() as f64 / 12.0;
        assert!(
            (weekend_rate / weekday_rate) > 0.8,
            "home usage should not drop at weekends: {weekend_rate:.1} vs {weekday_rate:.1}"
        );
    }

    #[test]
    fn presence_scales_days_online() {
        let rng = Rng::new(5);
        let low = device(0.3);
        let high = device(0.9);
        let days_of = |d: &Device, r: &mut Rng| {
            let mut set = std::collections::BTreeSet::new();
            for s in device_sessions(VantageKind::Home1, d, 42, r) {
                set.insert(s.start.day());
            }
            set.len()
        };
        let mut low_sum = 0;
        let mut high_sum = 0;
        for i in 0..30 {
            let mut r1 = rng.fork(i);
            let mut r2 = rng.fork(1000 + i);
            low_sum += days_of(&low, &mut r1);
            high_sum += days_of(&high, &mut r2);
        }
        assert!(high_sum > low_sum * 2, "{high_sum} vs {low_sum}");
    }

    #[test]
    fn file_event_rates_differ_by_group() {
        let mut rng = Rng::new(6);
        let session = Session {
            start: SimTime::from_day_offset(2, SimDuration::from_hours(10)),
            end: SimTime::from_day_offset(2, SimDuration::from_hours(14)),
        };
        let mut heavy = 0usize;
        let mut occasional = 0usize;
        for _ in 0..100 {
            heavy += file_events(Behavior::Heavy, &session, &mut rng).len();
            occasional += file_events(Behavior::Occasional, &session, &mut rng).len();
        }
        // 4-hour sessions at 2.6/h → ~10.4 expected per heavy session.
        assert!((850..1_250).contains(&heavy), "heavy events {heavy}");
        assert!(occasional < 30, "occasional events {occasional}");
    }

    #[test]
    fn events_fall_inside_session() {
        let mut rng = Rng::new(7);
        let session = Session {
            start: SimTime::from_secs(1_000),
            end: SimTime::from_secs(10_000),
        };
        for e in file_events(Behavior::Heavy, &session, &mut rng) {
            assert!(e.at >= session.start && e.at < session.end);
        }
    }
}

//! A Tstat-like passive monitor.
//!
//! [`Monitor`] reconstructs per-TCP-flow metrics from the packet stream
//! crossing the vantage point, exactly as the paper's instrumented Tstat
//! does (Sec. 3.1):
//!
//! * byte/packet/PSH counters per direction and payload timestamps,
//! * retransmission detection from sequence numbers,
//! * **external RTT** estimation (probe ↔ server): samples are taken from
//!   client-sent SYN/data segments and the server's covering ACKs, with a
//!   Karn-style rule that suspends sampling while a retransmission is
//!   outstanding,
//! * TLS server-name extraction from ClientHello/Certificate records,
//! * FQDN labelling of server addresses from observed DNS answers
//!   ("DNS to the Rescue", \[2\]) — available only at vantage points whose
//!   DNS traffic passes the probe (not Campus 2),
//! * notification-payload inspection: device `host_int` and namespace
//!   lists are cleartext (Sec. 2.3.1).
//!
//! The monitor never reads opaque payload bytes: everything comes from
//! headers, sizes, timing, and the cleartext/handshake fields a real DPI
//! probe could parse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nettrace::flow::{DirStats, FlowClose, NotifyMeta};
use nettrace::{AppMarker, FlowKey, FlowRecord, Ipv4, Packet};
use simcore::SimTime;
use std::collections::BTreeMap;

/// Maximum outstanding (unacknowledged) client segments tracked for RTT
/// sampling per flow.
const RTT_WINDOW: usize = 64;

/// Per-flow reconstruction state.
struct FlowState {
    key: FlowKey,
    first_syn: SimTime,
    last_packet: SimTime,
    up: DirStats,
    down: DirStats,
    max_seq_end_up: u32,
    max_seq_end_down: u32,
    seen_up_data: bool,
    seen_down_data: bool,
    outstanding: Vec<(u32, SimTime)>, // client seq_end -> probe ts
    karn_suspended: bool,
    min_rtt: Option<f64>,
    rtt_samples: u32,
    tls_sni: Option<String>,
    tls_cn: Option<String>,
    http_host: Option<String>,
    notify: Option<NotifyMeta>,
    fin_up: bool,
    fin_down: bool,
    rst: bool,
    // PSH state of the most recent payload segment in either direction.
    // Application writes always end with PSH, so an RST arriving while
    // this is false means a write was cut mid-transfer.
    last_data_psh: bool,
}

impl FlowState {
    fn new(key: FlowKey, ts: SimTime) -> Self {
        FlowState {
            key,
            first_syn: ts,
            last_packet: ts,
            up: DirStats::default(),
            down: DirStats::default(),
            max_seq_end_up: 0,
            max_seq_end_down: 0,
            seen_up_data: false,
            seen_down_data: false,
            outstanding: Vec::new(),
            karn_suspended: false,
            min_rtt: None,
            rtt_samples: 0,
            tls_sni: None,
            tls_cn: None,
            http_host: None,
            notify: None,
            fin_up: false,
            fin_down: false,
            rst: false,
            last_data_psh: true,
        }
    }

    fn finalize(self, server_fqdn: Option<String>) -> FlowRecord {
        let close = if self.rst {
            FlowClose::Rst
        } else if self.fin_up || self.fin_down {
            FlowClose::Fin
        } else {
            FlowClose::Timeout
        };
        // Cut mid-transfer: reset while the last data segment lacked PSH.
        // Idle NAT resets after complete (PSH-terminated) writes, and
        // resets on data-free flows, are not aborts.
        let aborted = self.rst && (self.seen_up_data || self.seen_down_data) && !self.last_data_psh;
        FlowRecord {
            key: self.key,
            first_syn: self.first_syn,
            last_packet: self.last_packet,
            up: self.up,
            down: self.down,
            min_rtt_ms: self.min_rtt,
            rtt_samples: self.rtt_samples,
            tls_sni: self.tls_sni,
            tls_certificate_cn: self.tls_cn,
            http_host: self.http_host,
            server_fqdn,
            notify: self.notify,
            close,
            aborted,
        }
    }
}

/// Wrapping sequence-space comparison: is `a <= b`?
#[inline]
fn seq_le(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) < 0x8000_0000
}

/// The passive monitor of one vantage point.
pub struct Monitor {
    flows: BTreeMap<FlowKey, FlowState>,
    dns_view: BTreeMap<Ipv4, String>,
    expose_dns: bool,
    done: Vec<FlowRecord>,
}

impl Monitor {
    /// Create a monitor. `expose_dns` states whether the vantage point's
    /// DNS traffic passes the probe (false in Campus 2, Sec. 3.2).
    pub fn new(expose_dns: bool) -> Self {
        Monitor {
            flows: BTreeMap::new(),
            dns_view: BTreeMap::new(),
            expose_dns,
            done: Vec::new(),
        }
    }

    /// Record a DNS answer seen on the wire (name → address). Ignored when
    /// the vantage point does not expose DNS.
    pub fn observe_dns(&mut self, name: &str, ip: Ipv4) {
        if self.expose_dns {
            self.dns_view.insert(ip, name.to_owned());
        }
    }

    /// Number of flows currently being tracked.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Feed one packet.
    pub fn observe(&mut self, pkt: &Packet) {
        // Determine orientation: a pure SYN identifies the client side.
        let (key, from_client) = if pkt.flags.syn() && !pkt.flags.ack() {
            (FlowKey::new(pkt.src, pkt.dst), true)
        } else if let Some(key) = self.orient(pkt) {
            key
        } else {
            // Mid-flow packet for an unknown connection (trimmed capture):
            // assume the lower port is the server, as Tstat's heuristics do.
            if pkt.src.port > pkt.dst.port {
                ((FlowKey::new(pkt.src, pkt.dst)), true)
            } else {
                ((FlowKey::new(pkt.dst, pkt.src)), false)
            }
        };

        // A fresh SYN for a key already tracked (port reuse) finalizes the
        // previous incarnation.
        if pkt.flags.syn() && !pkt.flags.ack() {
            if let Some(old) = self.flows.remove(&key) {
                let fqdn = self.dns_view.get(&old.key.server.ip).cloned();
                self.done.push(old.finalize(fqdn));
            }
        }

        let state = self
            .flows
            .entry(key)
            .or_insert_with(|| FlowState::new(key, pkt.ts));
        state.last_packet = state.last_packet.max(pkt.ts);

        // --- RTT sampling (probe ↔ server semi-connection) -------------
        if from_client {
            if pkt.flags.syn() || pkt.payload_len > 0 {
                let seq_end = pkt
                    .seq
                    .wrapping_add(pkt.payload_len.max(if pkt.flags.syn() { 1 } else { 0 }));
                // Retransmission? (seen this sequence range before)
                let is_rtx = pkt.payload_len > 0
                    && state.seen_up_data
                    && seq_le(seq_end, state.max_seq_end_up);
                if is_rtx {
                    // Karn: stop sampling until acks pass the rtx point.
                    state.karn_suspended = true;
                    state.outstanding.clear();
                } else if state.outstanding.len() < RTT_WINDOW && !state.karn_suspended {
                    state.outstanding.push((seq_end, pkt.ts));
                }
            }
        } else if pkt.flags.ack() {
            // Server ACK: sample every outstanding segment it covers.
            let mut i = 0;
            while i < state.outstanding.len() {
                let (seq_end, t_data) = state.outstanding[i];
                if seq_le(seq_end, pkt.ack_no) {
                    let sample_ms = (pkt.ts - t_data).as_secs_f64() * 1_000.0;
                    state.min_rtt = Some(match state.min_rtt {
                        Some(m) => m.min(sample_ms),
                        None => sample_ms,
                    });
                    state.rtt_samples += 1;
                    state.outstanding.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if state.karn_suspended && state.outstanding.is_empty() {
                state.karn_suspended = false;
            }
        }

        // --- Per-direction counters -------------------------------------
        let (dir, max_seq_end, seen_data) = if from_client {
            (
                &mut state.up,
                &mut state.max_seq_end_up,
                &mut state.seen_up_data,
            )
        } else {
            (
                &mut state.down,
                &mut state.max_seq_end_down,
                &mut state.seen_down_data,
            )
        };
        dir.packets += 1;
        if pkt.payload_len > 0 {
            let seq_end = pkt.seq.wrapping_add(pkt.payload_len);
            if *seen_data && seq_le(seq_end, *max_seq_end) {
                dir.retransmissions += 1;
                dir.rtx_bytes += pkt.payload_len as u64;
            } else {
                dir.bytes += pkt.payload_len as u64;
                *max_seq_end = seq_end;
                *seen_data = true;
            }
            if pkt.flags.psh() {
                dir.psh_segments += 1;
            }
            if dir.first_payload.is_none() {
                dir.first_payload = Some(pkt.ts);
            }
            dir.last_payload = Some(pkt.ts);
        }
        if pkt.payload_len > 0 {
            state.last_data_psh = pkt.flags.psh();
        }

        // --- DPI-visible content ----------------------------------------
        if let Some(marker) = &pkt.marker {
            match marker {
                AppMarker::TlsClientHello { sni } => {
                    state.tls_sni.get_or_insert_with(|| sni.clone());
                }
                AppMarker::TlsCertificate { common_name } => {
                    state.tls_cn.get_or_insert_with(|| common_name.clone());
                }
                AppMarker::HttpRequest { host, .. } => {
                    state.http_host.get_or_insert_with(|| host.clone());
                }
                AppMarker::HttpResponse { .. } => {}
                AppMarker::NotifyRequest {
                    host,
                    host_int,
                    namespaces,
                } => {
                    state.http_host.get_or_insert_with(|| host.clone());
                    state.notify = Some(NotifyMeta {
                        host_int: *host_int,
                        namespaces: namespaces.clone(),
                    });
                }
            }
        }

        // --- Close tracking ----------------------------------------------
        if pkt.flags.rst() {
            state.rst = true;
        }
        if pkt.flags.fin() {
            if from_client {
                state.fin_up = true;
            } else {
                state.fin_down = true;
            }
        }
        // A reset is the last packet of a connection: finalize eagerly.
        // Orderly FIN closes are finalized lazily (at flush or on port
        // reuse) because the final ACK still belongs to the flow.
        if state.rst {
            let state = self.flows.remove(&key).expect("state exists");
            let fqdn = self.dns_view.get(&key.server.ip).cloned();
            self.done.push(state.finalize(fqdn));
        }
    }

    /// Orient a non-SYN packet onto a tracked flow.
    fn orient(&self, pkt: &Packet) -> Option<(FlowKey, bool)> {
        let as_client = FlowKey::new(pkt.src, pkt.dst);
        if self.flows.contains_key(&as_client) {
            return Some((as_client, true));
        }
        let as_server = FlowKey::new(pkt.dst, pkt.src);
        if self.flows.contains_key(&as_server) {
            return Some((as_server, false));
        }
        None
    }

    /// Take the flows completed so far.
    pub fn drain_completed(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.done)
    }

    /// Stream the flows completed so far into a sink, in finalisation
    /// order, without materialising a vector.
    pub fn drain_into(&mut self, sink: &mut dyn nettrace::FlowSink) {
        for rec in self.done.drain(..) {
            sink.accept(rec);
        }
    }

    /// End of capture, streaming form: finalize all remaining flows and
    /// emit everything not yet drained into `sink` (same order as
    /// [`Monitor::flush`]).
    pub fn flush_into(&mut self, sink: &mut dyn nettrace::FlowSink) {
        let keys: Vec<FlowKey> = self.flows.keys().copied().collect();
        for key in keys {
            let state = self.flows.remove(&key).expect("key listed");
            let fqdn = self.dns_view.get(&key.server.ip).cloned();
            self.done.push(state.finalize(fqdn));
        }
        self.drain_into(sink);
    }

    /// Evict flows idle since before `now - idle`: real Tstat flushes
    /// long-silent connections so state does not grow over a 42-day
    /// capture. Evicted flows are finalized as their observed close state.
    pub fn evict_idle(&mut self, now: simcore::SimTime, idle: simcore::SimDuration) {
        let keys: Vec<FlowKey> = self
            .flows
            .iter()
            .filter(|(_, st)| now.saturating_since(st.last_packet) > idle)
            .map(|(&k, _)| k)
            .collect();
        for key in keys {
            let state = self.flows.remove(&key).expect("listed");
            let fqdn = self.dns_view.get(&key.server.ip).cloned();
            self.done.push(state.finalize(fqdn));
        }
    }

    /// End of capture: finalize all remaining flows and return everything
    /// not yet drained.
    pub fn flush(&mut self) -> Vec<FlowRecord> {
        let keys: Vec<FlowKey> = self.flows.keys().copied().collect();
        for key in keys {
            let state = self.flows.remove(&key).expect("key listed");
            let fqdn = self.dns_view.get(&key.server.ip).cloned();
            self.done.push(state.finalize(fqdn));
        }
        self.drain_completed()
    }

    /// Convenience: process the complete packet trace of a single
    /// connection and return its record. Equivalent to `observe`ing every
    /// packet and flushing. DNS labelling uses the monitor's current view.
    pub fn process_flow(&mut self, packets: &[Packet]) -> Option<FlowRecord> {
        for p in packets {
            self.observe(p);
        }
        // The flow either completed eagerly or is still tracked.
        if let Some(last) = packets.last() {
            let key_a = FlowKey::new(last.src, last.dst);
            let key_b = FlowKey::new(last.dst, last.src);
            for key in [key_a, key_b] {
                if let Some(state) = self.flows.remove(&key) {
                    let fqdn = self.dns_view.get(&key.server.ip).cloned();
                    return Some(state.finalize(fqdn));
                }
            }
        }
        self.done.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::{Endpoint, TcpFlags};
    use simcore::{Rng, SimDuration};
    use tcpmodel::tls;
    use tcpmodel::{simulate, CloseMode, Dialogue, Direction, Message, PathParams, TcpParams};

    fn key() -> FlowKey {
        FlowKey::new(
            Endpoint::new(Ipv4::new(10, 0, 0, 5), 42_000),
            Endpoint::new(Ipv4::new(107, 22, 1, 2), 443),
        )
    }

    fn path(outer_ms: u64) -> PathParams {
        PathParams {
            inner_rtt: SimDuration::from_millis(12),
            outer_rtt: SimDuration::from_millis(outer_ms),
            jitter: 0.02,
            loss_up: 0.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        }
    }

    fn play(dialogue: Dialogue, p: PathParams, seed: u64) -> FlowRecord {
        let mut out = Vec::new();
        let mut rng = Rng::new(seed);
        simulate(
            SimTime::from_secs(5),
            key(),
            &dialogue,
            &p,
            &TcpParams::era_2012_v1(),
            &mut rng,
            &mut out,
        );
        let mut mon = Monitor::new(true);
        mon.observe_dns("dl-client9.dropbox.com", key().server.ip);
        mon.process_flow(&out).expect("flow record")
    }

    fn store_like_dialogue(chunks: usize, chunk_bytes: u32) -> Dialogue {
        let mut messages = tls::handshake(
            "dl-client9.dropbox.com",
            "*.dropbox.com",
            SimDuration::from_millis(50),
        );
        for _ in 0..chunks {
            messages.push(Message::simple(
                Direction::Up,
                SimDuration::from_millis(30),
                634 + chunk_bytes,
            ));
            messages.push(Message::simple(
                Direction::Down,
                SimDuration::from_millis(60),
                309,
            ));
        }
        Dialogue::new(messages)
    }

    #[test]
    fn byte_counters_match_dialogue() {
        let d = store_like_dialogue(3, 10_000);
        let rec = play(d.clone(), path(90), 1);
        assert_eq!(rec.up.bytes, d.bytes_up());
        // Down includes the 37-byte close alert.
        assert_eq!(rec.down.bytes, d.bytes_down() + 37);
    }

    #[test]
    fn external_rtt_measured_not_total() {
        let rec = play(store_like_dialogue(5, 5_000), path(90), 2);
        let rtt = rec.min_rtt_ms.expect("rtt measured");
        // Probe↔server RTT is 90 ms; client access adds 12 ms that must
        // NOT appear in the estimate.
        assert!((rtt - 90.0).abs() < 3.0, "rtt = {rtt}");
        assert!(rec.rtt_samples >= 10);
    }

    #[test]
    fn psh_counting_matches_appendix_a() {
        // Store flow with c chunks closed by the server: the server sends
        // 2 handshake PSH + c OK PSH + 1 alert PSH => c = s - 3 (A.3).
        let c = 7;
        let rec = play(store_like_dialogue(c, 2_000), path(90), 3);
        assert_eq!(rec.down.psh_segments as usize, c + 3);
        // Client side: 2 handshake PSH + c data-chunk PSH.
        assert_eq!(rec.up.psh_segments as usize, c + 2);
    }

    #[test]
    fn tls_names_extracted() {
        let rec = play(store_like_dialogue(1, 500), path(90), 4);
        assert_eq!(rec.tls_sni.as_deref(), Some("dl-client9.dropbox.com"));
        assert_eq!(rec.tls_certificate_cn.as_deref(), Some("*.dropbox.com"));
        assert_eq!(rec.server_fqdn.as_deref(), Some("dl-client9.dropbox.com"));
        assert_eq!(rec.server_name(), Some("dl-client9.dropbox.com"));
    }

    #[test]
    fn dns_hidden_when_not_exposed() {
        let mut out = Vec::new();
        let mut rng = Rng::new(5);
        simulate(
            SimTime::from_secs(5),
            key(),
            &store_like_dialogue(1, 500),
            &path(90),
            &TcpParams::era_2012_v1(),
            &mut rng,
            &mut out,
        );
        let mut mon = Monitor::new(false);
        mon.observe_dns("dl-client9.dropbox.com", key().server.ip);
        let rec = mon.process_flow(&out).unwrap();
        assert!(rec.server_fqdn.is_none());
        // TLS still identifies the service.
        assert_eq!(rec.tls_sni.as_deref(), Some("dl-client9.dropbox.com"));
    }

    #[test]
    fn retransmissions_counted_once_bytes_not_double_counted() {
        let mut p = path(90);
        p.loss_up = 0.03;
        let d = Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            400_000,
        )])
        .with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(50),
        });
        let mut out = Vec::new();
        let mut rng = Rng::new(6);
        let sum = simulate(
            SimTime::from_secs(5),
            key(),
            &d,
            &p,
            &TcpParams::era_2012_v1(),
            &mut rng,
            &mut out,
        );
        let mut mon = Monitor::new(true);
        let rec = mon.process_flow(&out).unwrap();
        assert!(sum.rtx_up > 0);
        assert_eq!(rec.up.retransmissions, sum.rtx_up);
        assert_eq!(rec.up.bytes, 400_000, "unique bytes only");
        assert_eq!(rec.up.rtx_bytes, sum.rtx_bytes_up);
        assert!(!rec.aborted);
    }

    #[test]
    fn mid_flow_reset_flagged_as_aborted() {
        let d = Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            400_000,
        )]);
        let faults = simcore::faults::FlowFaults {
            reset_after_bytes: Some(60_000),
            ..Default::default()
        };
        let mut out = Vec::new();
        let mut rng = Rng::new(12);
        let sum = tcpmodel::simulate_faulty(
            SimTime::from_secs(5),
            key(),
            &d,
            &path(90),
            &TcpParams::era_2012_v1(),
            Some(&faults),
            &mut rng,
            &mut out,
        );
        assert!(sum.aborted);
        let mut mon = Monitor::new(true);
        let rec = mon.process_flow(&out).unwrap();
        assert_eq!(rec.close, FlowClose::Rst);
        assert!(rec.aborted, "truncated write must be wire-detectable");
        assert!(rec.up.bytes < 400_000);
    }

    #[test]
    fn idle_timeout_rst_is_not_flagged_as_aborted() {
        // The normal server-idle-timeout close ends with a client RST, but
        // every application write completed (PSH-terminated): not an abort.
        let rec = play(store_like_dialogue(2, 1_000), path(90), 13);
        assert_eq!(rec.close, FlowClose::Rst);
        assert!(!rec.aborted);
    }

    #[test]
    fn close_classification() {
        // Server idle timeout ends with a client RST.
        let rec = play(store_like_dialogue(1, 100), path(90), 7);
        assert_eq!(rec.close, FlowClose::Rst);
        // Client FIN close.
        let d = Dialogue::new(vec![Message::simple(Direction::Up, SimDuration::ZERO, 100)])
            .with_close(CloseMode::ClientFin {
                delay: SimDuration::from_millis(10),
            });
        let rec = play(d, path(90), 8);
        assert_eq!(rec.close, FlowClose::Fin);
        // Left open: timeout at flush.
        let d = Dialogue::new(vec![Message::simple(Direction::Up, SimDuration::ZERO, 100)])
            .with_close(CloseMode::LeftOpen);
        let rec = play(d, path(90), 9);
        assert_eq!(rec.close, FlowClose::Timeout);
    }

    #[test]
    fn notify_metadata_extracted() {
        let mut messages = vec![Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(10),
            writes: vec![tcpmodel::Write::marked(
                350,
                AppMarker::NotifyRequest {
                    host: "notify5.dropbox.com".into(),
                    host_int: 777,
                    namespaces: vec![1, 2, 3],
                },
            )],
        }];
        messages.push(Message::simple(
            Direction::Down,
            SimDuration::from_secs(60),
            160,
        ));
        // A later request advertises one more namespace.
        messages.push(Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(5),
            writes: vec![tcpmodel::Write::marked(
                368,
                AppMarker::NotifyRequest {
                    host: "notify5.dropbox.com".into(),
                    host_int: 777,
                    namespaces: vec![1, 2, 3, 4],
                },
            )],
        });
        let d = Dialogue::new(messages).with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(10),
        });
        let rec = play(d, path(150), 10);
        assert_eq!(rec.http_host.as_deref(), Some("notify5.dropbox.com"));
        let notify = rec.notify.expect("notify meta");
        assert_eq!(notify.host_int, 777);
        assert_eq!(notify.namespaces, vec![1, 2, 3, 4], "last list wins");
    }

    #[test]
    fn multiple_interleaved_flows_tracked() {
        // Two connections from different client ports, packets interleaved.
        let mut out1 = Vec::new();
        let mut out2 = Vec::new();
        let mut rng = Rng::new(11);
        let k2 = FlowKey::new(Endpoint::new(Ipv4::new(10, 0, 0, 5), 42_001), key().server);
        simulate(
            SimTime::from_secs(5),
            key(),
            &store_like_dialogue(2, 1_000),
            &path(90),
            &TcpParams::era_2012_v1(),
            &mut rng,
            &mut out1,
        );
        simulate(
            SimTime::from_secs(5),
            k2,
            &store_like_dialogue(3, 1_000),
            &path(90),
            &TcpParams::era_2012_v1(),
            &mut rng,
            &mut out2,
        );
        let mut all: Vec<Packet> = out1.into_iter().chain(out2).collect();
        all.sort_by_key(|p| p.ts);
        let mut mon = Monitor::new(true);
        for p in &all {
            mon.observe(p);
        }
        let recs = mon.flush();
        assert_eq!(recs.len(), 2);
        let mut psh: Vec<u64> = recs.iter().map(|r| r.down.psh_segments).collect();
        psh.sort_unstable();
        assert_eq!(psh, vec![2 + 3, 3 + 3]); // c+3 each
    }

    #[test]
    fn syn_reuse_splits_flows() {
        let mut mon = Monitor::new(false);
        let mk = |ts: u64, flags: TcpFlags, payload: u32| Packet {
            ts: SimTime::from_secs(ts),
            src: key().client,
            dst: key().server,
            seq: 1,
            ack_no: 0,
            flags,
            payload_len: payload,
            marker: None,
        };
        mon.observe(&mk(1, TcpFlags::SYN, 0));
        mon.observe(&mk(2, TcpFlags::PSH.union(TcpFlags::ACK), 100));
        // New SYN on the same 4-tuple.
        mon.observe(&mk(100, TcpFlags::SYN, 0));
        let completed = mon.drain_completed();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].up.bytes, 100);
        assert_eq!(mon.active_flows(), 1);
    }

    #[test]
    fn flush_into_sink_matches_flush_order() {
        // The streaming emission path must yield the same records in the
        // same order as the materialising flush.
        let build = |seed: u64| -> (Monitor, Vec<Packet>) {
            let mut out1 = Vec::new();
            let mut out2 = Vec::new();
            let mut rng = Rng::new(seed);
            let k2 = FlowKey::new(Endpoint::new(Ipv4::new(10, 0, 0, 5), 42_001), key().server);
            simulate(
                SimTime::from_secs(5),
                key(),
                &store_like_dialogue(2, 1_000),
                &path(90),
                &TcpParams::era_2012_v1(),
                &mut rng,
                &mut out1,
            );
            simulate(
                SimTime::from_secs(6),
                k2,
                &store_like_dialogue(1, 500),
                &path(90),
                &TcpParams::era_2012_v1(),
                &mut rng,
                &mut out2,
            );
            let mut all: Vec<Packet> = out1.into_iter().chain(out2).collect();
            all.sort_by_key(|p| p.ts);
            (Monitor::new(true), all)
        };
        let (mut a, pkts) = build(11);
        let (mut b, _) = build(11);
        for p in &pkts {
            a.observe(p);
            b.observe(p);
        }
        let legacy = a.flush();
        let mut streamed: Vec<FlowRecord> = Vec::new();
        b.flush_into(&mut streamed);
        assert_eq!(legacy.len(), streamed.len());
        for (l, s) in legacy.iter().zip(&streamed) {
            assert_eq!(l.key, s.key);
            assert_eq!(l.up.bytes, s.up.bytes);
            assert_eq!(l.down.bytes, s.down.bytes);
        }
    }
}

//! Robustness: the monitor must accept arbitrary packet streams without
//! panicking, conserve counters, and tolerate reordering.

use nettrace::{Endpoint, FlowKey, Ipv4, Packet, TcpFlags};
use simcore::proptest::{any_u16, any_u32, any_u64, any_u8, vec_of};
use simcore::{prop_assert, prop_assert_eq, proptest};
use simcore::{Rng, SimDuration, SimTime};
use tcpmodel::{simulate, CloseMode, Dialogue, Direction, Message, PathParams, TcpParams};
use tstat::Monitor;

fn arbitrary_packet(seed: (u64, u16, u16, u8, u32, u32, u32)) -> Packet {
    let (ts, sport, dport, flags, seq, ack, len) = seed;
    Packet {
        ts: SimTime::from_micros(ts % 1_000_000_000),
        src: Endpoint::new(Ipv4::new(10, 0, 0, (sport % 7) as u8), 1 + sport % 1000),
        dst: Endpoint::new(Ipv4::new(107, 22, 0, (dport % 5) as u8), 1 + dport % 1000),
        seq,
        ack_no: ack,
        flags: TcpFlags(flags),
        payload_len: len % 100_000,
        marker: None,
    }
}

proptest! {
    #![cases(64)]

    /// Garbage in, no panic out — and every record keeps its invariants.
    #[test]
    fn monitor_never_panics_on_garbage(
        seeds in vec_of(
            (any_u64(), any_u16(), any_u16(), any_u8(), any_u32(), any_u32(), any_u32()),
            0..200
        )
    ) {
        let mut mon = Monitor::new(true);
        for s in &seeds {
            mon.observe(&arbitrary_packet(*s));
        }
        let records = mon.flush();
        for r in &records {
            prop_assert!(r.last_packet >= r.first_syn);
            prop_assert!(r.up.psh_segments <= r.up.packets);
            prop_assert!(r.down.psh_segments <= r.down.packets);
        }
    }

    /// Mild reordering of a real connection's packets must not change the
    /// unique byte totals or PSH counts.
    #[test]
    fn reordering_preserves_byte_and_psh_counters(
        swap_at in vec_of(0usize..400, 0..24),
        size in 10_000u32..200_000,
    ) {
        let d = Dialogue::new(vec![
            Message::simple(Direction::Up, SimDuration::ZERO, size),
            Message::simple(Direction::Down, SimDuration::from_millis(20), size / 2),
        ])
        .with_close(CloseMode::ClientFin { delay: SimDuration::from_millis(10) });
        let path = PathParams {
            inner_rtt: SimDuration::from_millis(10),
            outer_rtt: SimDuration::from_millis(90),
            jitter: 0.0,
            loss_up: 0.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        };
        let key = FlowKey::new(
            Endpoint::new(Ipv4::new(10, 0, 0, 9), 45_000),
            Endpoint::new(Ipv4::new(107, 22, 0, 9), 443),
        );
        let mut packets = Vec::new();
        simulate(SimTime::from_secs(1), key, &d, &path, &TcpParams::era_2012_v1(),
                 &mut Rng::new(1), &mut packets);

        let mut mon = Monitor::new(false);
        let base = mon.process_flow(&packets).unwrap();

        // Swap adjacent same-direction packets at the given positions.
        let mut shuffled = packets.clone();
        for &i in &swap_at {
            if i + 1 < shuffled.len() && shuffled[i].src == shuffled[i + 1].src {
                shuffled.swap(i, i + 1);
            }
        }
        let mut mon = Monitor::new(false);
        let rec = mon.process_flow(&shuffled).unwrap();
        // Unique-byte accounting may reclassify a swapped segment as a
        // retransmission; bytes + rtx·MSS together must be stable.
        prop_assert_eq!(rec.up.bytes + 1430 * rec.up.retransmissions,
                        base.up.bytes + 1430 * base.up.retransmissions);
        prop_assert_eq!(rec.up.psh_segments, base.up.psh_segments);
        prop_assert_eq!(rec.down.psh_segments, base.down.psh_segments);
    }
}

#[test]
fn idle_eviction_flushes_stale_flows() {
    let mut mon = Monitor::new(false);
    let mk = |ts: u64, port: u16| Packet {
        ts: SimTime::from_secs(ts),
        src: Endpoint::new(Ipv4::new(10, 0, 0, 1), port),
        dst: Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
        seq: 0,
        ack_no: 0,
        flags: TcpFlags::SYN,
        payload_len: 0,
        marker: None,
    };
    mon.observe(&mk(100, 1000));
    mon.observe(&mk(4_000, 1001));
    assert_eq!(mon.active_flows(), 2);
    // Evict flows idle for > 1 h at t = 4100 s: only the first qualifies.
    mon.evict_idle(SimTime::from_secs(4_100), SimDuration::from_hours(1));
    assert_eq!(mon.active_flows(), 1);
    let done = mon.drain_completed();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].first_syn, SimTime::from_secs(100));
}

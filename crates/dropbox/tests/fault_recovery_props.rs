//! Property: chunk-level resume is lossless. For any seeded fault plan,
//! a faulty upload transaction commits every offered chunk exactly once —
//! the store ends up holding precisely the original bytes, no chunk is
//! lost to a mid-flow reset and none is double-committed by a retry.

use dnssim::DnsDirectory;
use dropbox::client::{ChunkWork, ClientVersion, RetryPolicy, SyncConfig, SyncEngine};
use dropbox::content::ChunkId;
use dropbox::storage::ChunkStore;
use dropbox::FlowTruth;
use simcore::faults::FaultPlan;
use simcore::proptest::any_u64;
use simcore::{prop_assert, prop_assert_eq, proptest, Rng, SimDuration, SimTime};

fn arb_chunks(rng: &mut Rng) -> Vec<ChunkWork> {
    let n = 1 + (rng.next_u64() % 150) as usize;
    (0..n as u64)
        .map(|i| {
            let raw = 1 + rng.next_u64() % 400_000;
            ChunkWork {
                id: ChunkId(0x5eed_0000 + i),
                wire_bytes: 1 + raw / 2,
                raw_bytes: raw,
            }
        })
        .collect()
}

proptest! {
    #![cases(48)]

    /// Store bytes == offered bytes after recovery, for any seed: resume
    /// re-offers exactly the uncommitted chunks, and the idempotent store
    /// never double-counts a retried one.
    #[test]
    fn faulty_upload_is_lossless_and_exactly_once(seed in any_u64()) {
        let mut rng = Rng::new(seed);
        let chunks = arb_chunks(&mut rng);
        let raw_total: u64 = chunks.iter().map(|c| c.raw_bytes).sum();

        let plan = FaultPlan::lossy(seed ^ 0xfau64, 7);
        let version = if seed % 2 == 0 {
            ClientVersion::V1_2_52
        } else {
            ClientVersion::V1_4_0
        };
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = SyncEngine::new(
            &dns,
            &store,
            SyncConfig { version, ..SyncConfig::default() },
            7,
        );
        let out = eng.upload_transaction_faulty(
            &chunks,
            0,
            SimTime::from_secs(seed % 500_000),
            &plan,
            &RetryPolicy::default(),
            &mut rng,
        );

        let stats = store.stats();
        prop_assert_eq!(stats.chunks, chunks.len() as u64, "every chunk committed once");
        prop_assert_eq!(stats.bytes, raw_total, "no loss, no double-commit");
        prop_assert_eq!(stats.dedup_hits, 0, "fresh store: nothing deduplicated");

        // Flow offsets are non-decreasing and the plan's counters agree
        // with the emitted flows.
        let offsets: Vec<SimDuration> = out.flows.iter().map(|(o, _)| *o).collect();
        prop_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let aborted_specs = out
            .flows
            .iter()
            .filter(|(_, f)| {
                matches!(f.truth, FlowTruth::Store { .. })
                    && f.faults.is_some_and(|x| x.reset_after_bytes.is_some())
            })
            .count();
        prop_assert_eq!(aborted_specs as u32, out.aborted_flows);
    }

    /// A retried upload against a store that already holds some of the
    /// content still converges: the union of dedup hits and commits covers
    /// every chunk exactly once.
    #[test]
    fn faulty_upload_respects_preexisting_dedup(seed in any_u64()) {
        let mut rng = Rng::new(seed.wrapping_mul(3));
        let chunks = arb_chunks(&mut rng);
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        // Pre-seed every third chunk.
        for c in chunks.iter().step_by(3) {
            store.put(c.id, c.raw_bytes);
        }
        let pre = store.stats();
        let plan = FaultPlan::lossy(seed, 7);
        let mut eng = SyncEngine::new(&dns, &store, SyncConfig::default(), 8);
        eng.upload_transaction_faulty(
            &chunks,
            0,
            SimTime::from_secs(123),
            &plan,
            &RetryPolicy::default(),
            &mut rng,
        );
        let post = store.stats();
        prop_assert_eq!(post.chunks, chunks.len() as u64);
        let raw_total: u64 = chunks.iter().map(|c| c.raw_bytes).sum();
        prop_assert_eq!(post.bytes, raw_total);
        prop_assert_eq!(post.dedup_hits, pre.chunks, "each pre-seeded chunk hits once");
    }
}

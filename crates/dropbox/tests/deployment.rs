//! Deployment-level integration: two devices of one account plus a
//! stranger, exercising metadata journals, dedup, the reference server
//! endpoints, LAN sync and the notification payloads together.

use dnssim::DnsDirectory;
use dropbox::client::{ChunkWork, SyncConfig, SyncEngine};
use dropbox::content::{Content, ContentKind};
use dropbox::lan_sync::{Announcement, LanSync};
use dropbox::metadata::{FileId, HostInt, MetadataServer, UserId};
use dropbox::protocol::ProtocolTrace;
use dropbox::server::replay_accepts;
use dropbox::storage::ChunkStore;
use dropbox::FlowTruth;
use simcore::{Rng, SimTime};

/// One full sync cycle: laptop commits, journal advances, desktop reads
/// the increment, the stranger's duplicate upload deduplicates, and the
/// protocol trace replays against the reference endpoints.
#[test]
fn end_to_end_sync_cycle() {
    let dns = DnsDirectory::new();
    let store = ChunkStore::new();
    let mut md = MetadataServer::new();
    let mut rng = Rng::new(42);

    let user = UserId(7);
    let laptop = HostInt(70);
    let desktop = HostInt(71);
    let root = md.register_host(user, laptop);
    assert_eq!(md.register_host(user, desktop), root, "shared root");

    // Laptop commits a 3-chunk file.
    let content = Content::new(0xC0FFEE, 9 * 1024 * 1024, ContentKind::Document);
    let ids = content.chunk_ids();
    assert_eq!(ids.len(), 3);
    let work: Vec<ChunkWork> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| ChunkWork {
            id,
            wire_bytes: content.wire_chunk_size(i as u32),
            raw_bytes: content.chunk_size(i as u32),
        })
        .collect();

    let mut engine = SyncEngine::new(&dns, &store, SyncConfig::default(), laptop.0);
    let mut trace = ProtocolTrace::new();
    let flows = engine.upload_transaction(&work, 0, &mut rng, Some(&mut trace), SimTime::EPOCH);
    assert!(flows
        .iter()
        .any(|f| matches!(f.truth, FlowTruth::Store { chunks: 3, .. })));

    // The trace is accepted verbatim by the reference server endpoints.
    let sizes: Vec<_> = work.iter().map(|w| (w.id, w.raw_bytes)).collect();
    replay_accepts(&trace, laptop, user, &sizes).expect("protocol conformance");

    // Journal: the desktop's incremental list sees exactly one update.
    let seq0 = md.namespace(root).unwrap().seq();
    md.namespace_mut(root)
        .unwrap()
        .commit(FileId(1), content, ids.clone());
    let updates = md.namespace(root).unwrap().updates_since(seq0);
    assert_eq!(updates.len(), 1);
    assert_eq!(updates[0].chunk_ids, ids);

    // All chunks are now held by the store.
    for w in &work {
        assert!(store.has(w.id));
        assert_eq!(store.size_of(w.id), Some(w.raw_bytes));
    }

    // LAN sync: the desktop fetches from the laptop locally.
    let mut lan = LanSync::new();
    lan.announce(Announcement {
        host: laptop,
        namespaces: vec![root],
        at: SimTime::from_secs(10),
    });
    for w in &work {
        lan.chunk_available(laptop, w.id);
    }
    let pairs: Vec<_> = work.iter().map(|w| (w.id, w.raw_bytes)).collect();
    assert_eq!(
        lan.try_serve(desktop, root, &pairs, SimTime::from_secs(20)),
        Some(laptop)
    );
    assert_eq!(lan.served_chunks(), 3);

    // A stranger uploading the same content generates no storage flow.
    let mut stranger = SyncEngine::new(&dns, &store, SyncConfig::default(), 999);
    let flows = stranger.upload_transaction(&work, 0, &mut rng, None, SimTime::EPOCH);
    assert!(flows.iter().all(|f| matches!(f.truth, FlowTruth::Control)));
    assert_eq!(store.stats().dedup_hits, 3);
}

/// An edit produces delta-sized work for only the touched chunks, and the
/// journal exposes the new version to members.
#[test]
fn edit_propagates_deltas_through_journal() {
    let mut md = MetadataServer::new();
    let user = UserId(1);
    let host = HostInt(10);
    let root = md.register_host(user, host);

    let v0 = Content::new(5, 12 * 1024 * 1024, ContentKind::Text);
    let mut ids = v0.chunk_ids();
    md.namespace_mut(root)
        .unwrap()
        .commit(FileId(1), v0, ids.clone());
    let cursor = md.namespace(root).unwrap().seq();

    // Edit ~1 chunk of 3.
    let (v1, changed) = v0.edit(0.3, &mut Rng::new(3));
    assert_eq!(changed.len(), 1);
    let ci = changed[0];
    let new_id = v1.chunk_id(ci);
    assert_ne!(ids[ci as usize], new_id);
    ids[ci as usize] = new_id;
    md.namespace_mut(root)
        .unwrap()
        .commit(FileId(1), v1, ids.clone());

    let updates = md.namespace(root).unwrap().updates_since(cursor);
    assert_eq!(updates.len(), 1);
    assert_eq!(updates[0].content.version, 1);
    // Untouched chunk ids survive -> a member only downloads the delta.
    let unchanged: Vec<_> = (0..3u32)
        .filter(|i| *i != ci)
        .map(|i| v0.chunk_id(i))
        .collect();
    for id in unchanged {
        assert!(updates[0].chunk_ids.contains(&id));
    }
    // And the delta wire size is a fraction of the chunk.
    let delta = v1.delta_wire_size(ci, 0.3);
    assert!(delta < v1.wire_chunk_size(ci), "{delta}");
}

/// Notification payloads expose exactly the device's namespace list.
#[test]
fn notification_advertises_metadata_state() {
    let dns = DnsDirectory::new();
    let mut md = MetadataServer::new();
    let host = HostInt(50);
    let root = md.register_host(UserId(2), host);
    let shared = md.create_namespace(host);

    let spec = dropbox::notification::notification_flow(
        &dns,
        host,
        md.namespaces_of(host),
        simcore::SimDuration::from_mins(3),
        0,
        dropbox::notification::SessionEnd::ClientShutdown,
        &mut Rng::new(1),
    );
    let marker = spec
        .dialogue
        .messages
        .iter()
        .find_map(|m| m.writes[0].marker.as_ref())
        .expect("notify marker");
    match marker {
        nettrace::AppMarker::NotifyRequest {
            host_int,
            namespaces,
            ..
        } => {
            assert_eq!(*host_int, host.0);
            assert_eq!(namespaces, &vec![root.0, shared.0]);
        }
        other => panic!("unexpected marker: {other:?}"),
    }
}

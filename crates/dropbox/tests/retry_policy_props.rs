//! Property coverage of [`dropbox::client::RetryPolicy`]: the backoff cap
//! holds for every attempt, the nominal (pre-jitter) schedule is monotone
//! up to the cap, and the jittered schedule is byte-identical for a fixed
//! RNG seed — the contract the degraded-mode reconnect machinery
//! (`dropbox::session`) leans on.

use dropbox::client::RetryPolicy;
use simcore::{Rng, SimDuration};

/// A policy drawn from arbitrary-but-sane knobs: base in [1 ms, 60 s],
/// factor in [1.0, 4.0], cap in [base, base + 10 min].
fn policy(base_ms: u64, factor_q: u64, extra_cap_ms: u64) -> RetryPolicy {
    let base = SimDuration::from_millis(1 + base_ms % 60_000);
    RetryPolicy {
        base,
        factor: 1.0 + (factor_q % 300) as f64 / 100.0,
        max_backoff: base + SimDuration::from_millis(extra_cap_ms % 600_000),
        max_attempts: 6,
    }
}

simcore::proptest! {
    #![cases(64)]
    #[test]
    fn backoff_never_exceeds_max_backoff(
        base_ms in simcore::proptest::any_u64(),
        factor_q in simcore::proptest::any_u64(),
        extra_cap_ms in simcore::proptest::any_u64(),
        seed in simcore::proptest::any_u64(),
    ) {
        let p = policy(base_ms, factor_q, extra_cap_ms);
        let mut rng = Rng::new(seed);
        for attempt in 0..64u32 {
            let b = p.backoff(attempt, &mut rng);
            simcore::prop_assert!(
                b <= p.max_backoff,
                "attempt {}: backoff {:?} above cap {:?}",
                attempt,
                b,
                p.max_backoff
            );
            simcore::prop_assert!(b > SimDuration::ZERO, "backoff must advance time");
        }
    }

    #[test]
    fn nominal_schedule_is_monotone_up_to_the_cap(
        base_ms in simcore::proptest::any_u64(),
        factor_q in simcore::proptest::any_u64(),
        extra_cap_ms in simcore::proptest::any_u64(),
    ) {
        let p = policy(base_ms, factor_q, extra_cap_ms);
        // Strip the jitter by fixing its draw: backoff = nominal·(0.5 + 0.5·u)
        // with u from the RNG, so comparing attempts under *identical* RNG
        // state isolates the nominal component.
        let probe = |attempt: u32| {
            let mut rng = Rng::new(7);
            p.backoff(attempt, &mut rng)
        };
        let mut prev = probe(0);
        let mut capped = false;
        for attempt in 1..48u32 {
            let cur = probe(attempt);
            simcore::prop_assert!(
                cur >= prev,
                "attempt {}: {:?} < previous {:?} — nominal schedule must be monotone",
                attempt,
                cur,
                prev
            );
            if cur == prev {
                capped = true; // plateaued at the cap
            }
            simcore::prop_assert!(
                !(capped && cur > prev),
                "schedule grew again after reaching the cap"
            );
            prev = cur;
        }
    }

    #[test]
    fn jitter_is_byte_identical_for_a_fixed_seed(
        base_ms in simcore::proptest::any_u64(),
        factor_q in simcore::proptest::any_u64(),
        extra_cap_ms in simcore::proptest::any_u64(),
        seed in simcore::proptest::any_u64(),
    ) {
        let p = policy(base_ms, factor_q, extra_cap_ms);
        let run = || {
            let mut rng = Rng::new(seed);
            (0..16u32).map(|a| p.backoff(a, &mut rng).micros()).collect::<Vec<u64>>()
        };
        let a = run();
        let b = run();
        simcore::prop_assert_eq!(&a, &b, "same seed, same jittered schedule");
        // And a different seed perturbs at least one draw (jitter is live).
        let mut other = Rng::new(seed ^ 0x9E3779B97F4A7C15);
        let c: Vec<u64> = (0..16u32).map(|at| p.backoff(at, &mut other).micros()).collect();
        simcore::prop_assert!(a != c || p.base.micros() == 0, "jitter must depend on the stream");
    }
}

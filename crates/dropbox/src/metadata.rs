//! Server-side meta-data: users, devices, namespaces, files, journals.
//!
//! Each device linked to Dropbox has a unique identifier (`host_int`), and
//! each shared folder a unique *namespace* id; the root folder of every
//! user is itself a namespace (Sec. 2.3.1). File entries live inside
//! namespaces and carry the chunk-id list of the current version. Every
//! namespace keeps a journal sequence number; clients hold a cursor per
//! namespace and fetch the entries added since (the incremental `list`
//! mechanism of Sec. 2.2).

use crate::content::{ChunkId, Content};
use std::collections::BTreeMap;

/// Unique device identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct HostInt(pub u64);

/// Unique namespace (folder) identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NamespaceId(pub u64);

/// Unique user (account) identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct UserId(pub u64);

/// Unique file identifier within a namespace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FileId(pub u64);

/// One version of a file as known by the server.
#[derive(Clone, Debug)]
pub struct FileEntry {
    /// File identity.
    pub file: FileId,
    /// Content descriptor of the current version.
    pub content: Content,
    /// Chunk-id list of the current version (ids persist for untouched
    /// chunks across edits, which is what makes dedup effective).
    pub chunk_ids: Vec<ChunkId>,
    /// Journal sequence number at which this version was committed.
    pub journal_seq: u64,
    /// True when the file has been deleted (tombstone).
    pub deleted: bool,
}

/// A namespace: the unit of sharing and of journal ordering.
#[derive(Clone, Debug, Default)]
pub struct Namespace {
    files: BTreeMap<FileId, FileEntry>,
    journal_seq: u64,
}

impl Namespace {
    /// Current journal sequence number.
    pub fn seq(&self) -> u64 {
        self.journal_seq
    }

    /// Number of live (non-deleted) files.
    pub fn live_files(&self) -> usize {
        self.files.values().filter(|f| !f.deleted).count()
    }

    /// Commit a new version of a file; returns the journal seq assigned.
    pub fn commit(&mut self, file: FileId, content: Content, chunk_ids: Vec<ChunkId>) -> u64 {
        self.journal_seq += 1;
        self.files.insert(
            file,
            FileEntry {
                file,
                content,
                chunk_ids,
                journal_seq: self.journal_seq,
                deleted: false,
            },
        );
        self.journal_seq
    }

    /// Mark a file deleted; returns the journal seq assigned.
    pub fn delete(&mut self, file: FileId) -> Option<u64> {
        let entry = self.files.get_mut(&file)?;
        self.journal_seq += 1;
        entry.deleted = true;
        entry.journal_seq = self.journal_seq;
        Some(self.journal_seq)
    }

    /// Entries committed after `cursor` (the incremental `list` response).
    pub fn updates_since(&self, cursor: u64) -> Vec<&FileEntry> {
        let mut out: Vec<&FileEntry> = self
            .files
            .values()
            .filter(|f| f.journal_seq > cursor)
            .collect();
        out.sort_by_key(|f| f.journal_seq);
        out
    }

    /// Access a file entry.
    pub fn file(&self, id: FileId) -> Option<&FileEntry> {
        self.files.get(&id)
    }
}

/// Which instance of the metadata plane is serving requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServingMode {
    /// The primary: reads are fresh, commits are accepted.
    #[default]
    Primary,
    /// A warm replica during a primary outage: reads are served from the
    /// replication snapshot (stale by the configured lag), commits are
    /// refused until the primary is restored.
    Replica,
}

/// How far the warm replica trails the primary when a failover happens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaConfig {
    /// Journal entries per namespace not yet replicated at failover time:
    /// the snapshot freezes `lag_entries` behind the primary's sequence.
    pub lag_entries: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig { lag_entries: 2 }
    }
}

/// Why a metadata commit was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// The replica is serving and is read-only during the handover
    /// window: clients must queue the change and retry after restore.
    ReplicaReadOnly,
    /// No such namespace.
    UnknownNamespace,
}

/// The whole meta-data plane.
#[derive(Clone, Debug, Default)]
pub struct MetadataServer {
    namespaces: BTreeMap<NamespaceId, Namespace>,
    /// Device registry: which namespaces each device is linked to.
    devices: BTreeMap<HostInt, Vec<NamespaceId>>,
    /// Account registry: which devices belong to each user.
    users: BTreeMap<UserId, Vec<HostInt>>,
    next_ns: u64,
    /// Who is serving: the primary, or the warm replica during failover.
    mode: ServingMode,
    /// Per-namespace journal sequence the replica had replicated when the
    /// failover happened; reads during the handover window are truncated
    /// to this snapshot (the explicit stale-read semantics).
    frozen: BTreeMap<NamespaceId, u64>,
}

impl MetadataServer {
    /// Fresh empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh empty server whose shared-folder namespace ids start above
    /// `base`. Namespace ids are serialised into notification metadata, so
    /// when each household runs its own metadata plane (the sub-capture
    /// sharding of `workload::shard`), every household must allocate from
    /// a disjoint id range for the merged capture to look like one server.
    /// Root namespaces are unaffected: they derive from the user id and
    /// carry the high bit, so they can never collide with a folder id.
    pub fn with_ns_base(base: u64) -> Self {
        MetadataServer {
            next_ns: base,
            ..Self::default()
        }
    }

    /// Register a device (`register_host`), linking it to a user. The
    /// device starts linked to the user's root namespace, which is created
    /// on first registration.
    pub fn register_host(&mut self, user: UserId, host: HostInt) -> NamespaceId {
        let root = NamespaceId(user.0 | 0x8000_0000_0000_0000);
        self.namespaces.entry(root).or_default();
        let devs = self.users.entry(user).or_default();
        if !devs.contains(&host) {
            devs.push(host);
        }
        let nss = self.devices.entry(host).or_default();
        if !nss.contains(&root) {
            nss.push(root);
        }
        root
    }

    /// Create a new shared folder owned by `user` and link it to `host`.
    pub fn create_namespace(&mut self, host: HostInt) -> NamespaceId {
        let ns = self.create_namespace_unlinked();
        self.devices.entry(host).or_default().push(ns);
        ns
    }

    /// Create a shared folder without linking any device yet (membership
    /// is established through [`MetadataServer::link_namespace`]).
    pub fn create_namespace_unlinked(&mut self) -> NamespaceId {
        self.next_ns += 1;
        let ns = NamespaceId(self.next_ns);
        self.namespaces.insert(ns, Namespace::default());
        ns
    }

    /// Link an existing namespace to another device (sharing / multi-device
    /// accounts).
    pub fn link_namespace(&mut self, host: HostInt, ns: NamespaceId) -> bool {
        if !self.namespaces.contains_key(&ns) {
            return false;
        }
        let list = self.devices.entry(host).or_default();
        if !list.contains(&ns) {
            list.push(ns);
        }
        true
    }

    /// Namespace list of a device (what notification requests advertise).
    pub fn namespaces_of(&self, host: HostInt) -> &[NamespaceId] {
        self.devices.get(&host).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Devices of a user.
    pub fn devices_of(&self, user: UserId) -> &[HostInt] {
        self.users.get(&user).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mutable namespace access.
    pub fn namespace_mut(&mut self, ns: NamespaceId) -> Option<&mut Namespace> {
        self.namespaces.get_mut(&ns)
    }

    /// Shared namespace access.
    pub fn namespace(&self, ns: NamespaceId) -> Option<&Namespace> {
        self.namespaces.get(&ns)
    }

    /// Fail over to the warm replica: freeze each namespace's visible
    /// journal at `lag_entries` behind the primary's current sequence.
    /// Until [`MetadataServer::restore`], reads are served from this
    /// snapshot and commits are refused ([`CommitError::ReplicaReadOnly`]).
    /// Idempotent:
    /// failing over twice keeps the first snapshot (the replica does not
    /// advance while it serves).
    pub fn fail_over(&mut self, cfg: &ReplicaConfig) {
        if self.mode == ServingMode::Replica {
            return;
        }
        self.mode = ServingMode::Replica;
        self.frozen = self
            .namespaces
            .iter()
            .map(|(&ns, n)| (ns, n.seq().saturating_sub(cfg.lag_entries)))
            .collect();
    }

    /// Hand back to the recovered primary: fresh reads, commits accepted.
    pub fn restore(&mut self) {
        self.mode = ServingMode::Primary;
        self.frozen.clear();
    }

    /// Who is currently serving.
    pub fn mode(&self) -> ServingMode {
        self.mode
    }

    /// Commit a new file version through the serving instance. On the
    /// primary this is [`Namespace::commit`]; the replica refuses writes
    /// during the handover window so the journals cannot fork.
    pub fn try_commit(
        &mut self,
        ns: NamespaceId,
        file: FileId,
        content: Content,
        chunk_ids: Vec<ChunkId>,
    ) -> Result<u64, CommitError> {
        if self.mode == ServingMode::Replica {
            return Err(CommitError::ReplicaReadOnly);
        }
        match self.namespaces.get_mut(&ns) {
            Some(n) => Ok(n.commit(file, content, chunk_ids)),
            None => Err(CommitError::UnknownNamespace),
        }
    }

    /// The journal entries after `cursor` that the *serving instance* can
    /// see, plus whether the answer was stale. On the primary this equals
    /// [`Namespace::updates_since`]; on the replica the answer is
    /// truncated to the frozen replication snapshot — entries committed
    /// within the lag window exist on the (down) primary but are not yet
    /// visible, the explicit stale-read semantics of the handover.
    pub fn visible_updates(&self, ns: NamespaceId, cursor: u64) -> Option<(Vec<&FileEntry>, bool)> {
        let n = self.namespaces.get(&ns)?;
        let fresh = n.updates_since(cursor);
        if self.mode == ServingMode::Primary {
            return Some((fresh, false));
        }
        let horizon = self.frozen.get(&ns).copied().unwrap_or(0);
        let visible: Vec<&FileEntry> = fresh
            .into_iter()
            .filter(|e| e.journal_seq <= horizon)
            .collect();
        let stale = n.seq() > horizon;
        Some((visible, stale))
    }

    /// The journal sequence the serving instance advertises for `ns`: the
    /// live sequence on the primary, the frozen snapshot on the replica.
    pub fn visible_seq(&self, ns: NamespaceId) -> Option<u64> {
        let n = self.namespaces.get(&ns)?;
        Some(match self.mode {
            ServingMode::Primary => n.seq(),
            ServingMode::Replica => self.frozen.get(&ns).copied().unwrap_or(0),
        })
    }

    /// All devices linked to a namespace (for change propagation).
    pub fn members_of(&self, ns: NamespaceId) -> Vec<HostInt> {
        self.devices
            .iter()
            .filter(|(_, nss)| nss.contains(&ns))
            .map(|(&h, _)| h)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentKind;

    fn content(seed: u64, size: u64) -> Content {
        Content::new(seed, size, ContentKind::Text)
    }

    #[test]
    fn register_creates_root_namespace() {
        let mut md = MetadataServer::new();
        let u = UserId(1);
        let ns1 = md.register_host(u, HostInt(10));
        let ns2 = md.register_host(u, HostInt(11));
        assert_eq!(ns1, ns2, "same user, same root namespace");
        assert_eq!(md.devices_of(u), &[HostInt(10), HostInt(11)]);
        assert_eq!(md.namespaces_of(HostInt(10)), &[ns1]);
    }

    #[test]
    fn ns_base_offsets_folder_ids_but_not_roots() {
        let mut a = MetadataServer::with_ns_base(1 << 32);
        let mut b = MetadataServer::with_ns_base(2 << 32);
        assert_eq!(a.create_namespace_unlinked(), NamespaceId((1 << 32) + 1));
        assert_eq!(b.create_namespace_unlinked(), NamespaceId((2 << 32) + 1));
        // Root namespaces derive from the user id, not the counter.
        let root_a = a.register_host(UserId(7), HostInt(1));
        let root_b = b.register_host(UserId(7), HostInt(2));
        assert_eq!(root_a, root_b);
        assert_eq!(root_a, NamespaceId(7 | 0x8000_0000_0000_0000));
    }

    #[test]
    fn journal_cursor_yields_incremental_updates() {
        let mut md = MetadataServer::new();
        let root = md.register_host(UserId(1), HostInt(10));
        let ns = md.namespace_mut(root).unwrap();
        let c = content(1, 1000);
        let seq1 = ns.commit(FileId(1), c, c.chunk_ids());
        let cursor = seq1;
        let c2 = content(2, 2000);
        ns.commit(FileId(2), c2, c2.chunk_ids());
        let updates = md.namespace(root).unwrap().updates_since(cursor);
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].file, FileId(2));
        assert!(md.namespace(root).unwrap().updates_since(0).len() == 2);
    }

    #[test]
    fn delete_produces_tombstone_update() {
        let mut md = MetadataServer::new();
        let root = md.register_host(UserId(1), HostInt(10));
        let ns = md.namespace_mut(root).unwrap();
        let c = content(1, 1000);
        let seq = ns.commit(FileId(1), c, c.chunk_ids());
        assert_eq!(ns.live_files(), 1);
        ns.delete(FileId(1)).unwrap();
        assert_eq!(ns.live_files(), 0);
        let upd = ns.updates_since(seq);
        assert_eq!(upd.len(), 1);
        assert!(upd[0].deleted);
        assert!(ns.delete(FileId(99)).is_none());
    }

    #[test]
    fn shared_namespace_membership() {
        let mut md = MetadataServer::new();
        md.register_host(UserId(1), HostInt(10));
        md.register_host(UserId(2), HostInt(20));
        let shared = md.create_namespace(HostInt(10));
        assert!(md.link_namespace(HostInt(20), shared));
        let mut members = md.members_of(shared);
        members.sort();
        assert_eq!(members, vec![HostInt(10), HostInt(20)]);
        // Device 20 now advertises two namespaces in its notify requests.
        assert_eq!(md.namespaces_of(HostInt(20)).len(), 2);
        assert!(!md.link_namespace(HostInt(20), NamespaceId(9999)));
    }

    #[test]
    fn failover_serves_stale_reads_and_refuses_commits() {
        let mut md = MetadataServer::new();
        let root = md.register_host(UserId(1), HostInt(10));
        for i in 0..5u64 {
            let c = content(i, 1000);
            md.try_commit(root, FileId(i), c, c.chunk_ids()).unwrap();
        }
        assert_eq!(md.mode(), ServingMode::Primary);
        assert_eq!(md.visible_seq(root), Some(5));
        let (fresh, stale) = md.visible_updates(root, 0).unwrap();
        assert_eq!(fresh.len(), 5);
        assert!(!stale);

        // Fail over with a 2-entry replication lag: the last two commits
        // are invisible during the handover window.
        md.fail_over(&ReplicaConfig::default());
        assert_eq!(md.mode(), ServingMode::Replica);
        assert_eq!(md.visible_seq(root), Some(3));
        let (visible, stale) = md.visible_updates(root, 0).unwrap();
        assert_eq!(visible.len(), 3, "lagged entries hidden");
        assert!(stale, "handover reads are explicitly stale");

        // Writes are refused; the journal cannot fork.
        let c = content(9, 500);
        assert_eq!(
            md.try_commit(root, FileId(9), c, c.chunk_ids()),
            Err(CommitError::ReplicaReadOnly)
        );
        assert_eq!(md.namespace(root).unwrap().seq(), 5);

        // Failing over again does not advance the snapshot.
        md.fail_over(&ReplicaConfig { lag_entries: 0 });
        assert_eq!(md.visible_seq(root), Some(3));

        // Restore: fresh reads and commits again.
        md.restore();
        assert_eq!(md.visible_seq(root), Some(5));
        let (fresh, stale) = md.visible_updates(root, 0).unwrap();
        assert_eq!(fresh.len(), 5);
        assert!(!stale);
        assert!(md.try_commit(root, FileId(9), c, c.chunk_ids()).is_ok());
        assert_eq!(
            md.try_commit(NamespaceId(4242), FileId(1), c, c.chunk_ids()),
            Err(CommitError::UnknownNamespace)
        );
    }

    #[test]
    fn commits_are_ordered_in_journal() {
        let mut ns = Namespace::default();
        for i in 0..10u64 {
            let c = content(i, 100);
            ns.commit(FileId(i), c, c.chunk_ids());
        }
        let upd = ns.updates_since(0);
        let seqs: Vec<u64> = upd.iter().map(|e| e.journal_seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ns.seq(), 10);
    }
}

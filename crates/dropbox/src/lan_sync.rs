//! The LAN Sync Protocol (Secs. 2.5 and 5.2).
//!
//! Devices on the same LAN can exchange chunks directly instead of
//! retrieving duplicated content from the cloud. The real protocol has two
//! parts, both reproduced here:
//!
//! * **discovery** — periodic UDP broadcasts announcing the device's
//!   `host_int` and namespace list on the local subnet; peers cache the
//!   announcements and expire them,
//! * **serving** — a device holding a chunk serves it over a local TCP
//!   connection to a peer that shares a namespace with it.
//!
//! None of this traffic crosses the vantage-point probe (it stays inside
//! the household), which is precisely why the paper can only bound the
//! savings ("no more than 25% of the households are profiting"). The
//! simulation accounts savings explicitly through [`LanSync::try_serve`].

use crate::content::ChunkId;
use crate::metadata::{HostInt, NamespaceId};
use simcore::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Discovery announcements are broadcast at this period (the real client
/// uses 30 s).
pub const ANNOUNCE_PERIOD: SimDuration = SimDuration::from_secs(30);
/// A peer is considered gone when its announcement is older than this.
pub const PEER_TTL: SimDuration = SimDuration::from_secs(90);

/// One discovery announcement as seen on the local subnet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Announcement {
    /// Announcing device.
    pub host: HostInt,
    /// Namespaces the device is linked to.
    pub namespaces: Vec<NamespaceId>,
    /// Broadcast time.
    pub at: SimTime,
}

/// State of one device's LAN-sync engine within a household subnet.
#[derive(Clone, Debug, Default)]
struct PeerState {
    namespaces: BTreeSet<NamespaceId>,
    last_seen: Option<SimTime>,
    /// Chunks this peer is known to hold (it announced/synced them).
    chunks: BTreeSet<ChunkId>,
}

/// The LAN-sync coordinator of one household subnet.
///
/// Tracks discovery state and chunk availability for every local device
/// and decides whether a retrieval can be served locally.
#[derive(Clone, Debug, Default)]
pub struct LanSync {
    peers: BTreeMap<HostInt, PeerState>,
    /// Chunks served locally (the saving the paper cannot observe).
    served_chunks: u64,
    /// Bytes served locally.
    served_bytes: u64,
}

impl LanSync {
    /// New empty subnet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Process a discovery broadcast.
    pub fn announce(&mut self, a: Announcement) {
        let p = self.peers.entry(a.host).or_default();
        p.namespaces = a.namespaces.into_iter().collect();
        p.last_seen = Some(a.at);
    }

    /// A device finished obtaining a chunk (from the cloud or locally):
    /// record availability for future peers.
    pub fn chunk_available(&mut self, host: HostInt, chunk: ChunkId) {
        self.peers.entry(host).or_default().chunks.insert(chunk);
    }

    /// A device went off-line: its announcements stop; state is kept so a
    /// later announcement revives the chunk inventory (the client persists
    /// its cache), but it cannot serve while off-line.
    pub fn offline(&mut self, host: HostInt) {
        if let Some(p) = self.peers.get_mut(&host) {
            p.last_seen = None;
        }
    }

    /// Whether `host` is currently discoverable at time `now`.
    fn is_live(&self, host: HostInt, now: SimTime) -> bool {
        self.peers
            .get(&host)
            .and_then(|p| p.last_seen)
            .map(|t| now.saturating_since(t) <= PEER_TTL)
            .unwrap_or(false)
    }

    /// Try to serve `chunks` of namespace `ns` to `requester` from a live
    /// peer sharing that namespace. Returns the serving peer when the
    /// whole batch could be served locally (the client falls back to the
    /// cloud otherwise, as partial local transfers still require a storage
    /// connection for the rest — we model the common all-or-nothing case).
    pub fn try_serve(
        &mut self,
        requester: HostInt,
        ns: NamespaceId,
        chunks: &[(ChunkId, u64)],
        now: SimTime,
    ) -> Option<HostInt> {
        let server = self.peers.iter().find_map(|(&host, p)| {
            if host == requester
                || !p.namespaces.contains(&ns)
                || p.last_seen
                    .map(|t| now.saturating_since(t) > PEER_TTL)
                    .unwrap_or(true)
            {
                return None;
            }
            chunks
                .iter()
                .all(|(id, _)| p.chunks.contains(id))
                .then_some(host)
        })?;
        // Transfer happens on the LAN; the requester now also holds the
        // chunks and can serve future peers.
        for &(id, bytes) in chunks {
            self.served_chunks += 1;
            self.served_bytes += bytes;
            self.peers.entry(requester).or_default().chunks.insert(id);
        }
        let _ = self.is_live(server, now); // liveness re-checked above
        Some(server)
    }

    /// Chunks served locally so far.
    pub fn served_chunks(&self) -> u64 {
        self.served_chunks
    }

    /// Bytes served locally so far.
    pub fn served_bytes(&self) -> u64 {
        self.served_bytes
    }

    /// Number of devices ever seen on this subnet.
    pub fn known_peers(&self) -> usize {
        self.peers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(host: u64, nss: &[u64], at_s: u64) -> Announcement {
        Announcement {
            host: HostInt(host),
            namespaces: nss.iter().map(|&n| NamespaceId(n)).collect(),
            at: SimTime::from_secs(at_s),
        }
    }

    #[test]
    fn serves_from_live_peer_sharing_namespace() {
        let mut lan = LanSync::new();
        lan.announce(ann(1, &[10, 11], 100));
        lan.chunk_available(HostInt(1), ChunkId(7));
        lan.chunk_available(HostInt(1), ChunkId(8));
        let served = lan.try_serve(
            HostInt(2),
            NamespaceId(10),
            &[(ChunkId(7), 1_000), (ChunkId(8), 2_000)],
            SimTime::from_secs(120),
        );
        assert_eq!(served, Some(HostInt(1)));
        assert_eq!(lan.served_chunks(), 2);
        assert_eq!(lan.served_bytes(), 3_000);
    }

    #[test]
    fn requester_becomes_a_server_afterwards() {
        let mut lan = LanSync::new();
        lan.announce(ann(1, &[10], 100));
        lan.chunk_available(HostInt(1), ChunkId(7));
        lan.try_serve(
            HostInt(2),
            NamespaceId(10),
            &[(ChunkId(7), 500)],
            SimTime::from_secs(110),
        )
        .expect("served");
        // Device 1 disappears; device 3 can now fetch from device 2 once
        // device 2 announces.
        lan.offline(HostInt(1));
        lan.announce(ann(2, &[10], 200));
        let served = lan.try_serve(
            HostInt(3),
            NamespaceId(10),
            &[(ChunkId(7), 500)],
            SimTime::from_secs(210),
        );
        assert_eq!(served, Some(HostInt(2)));
    }

    #[test]
    fn no_service_across_namespaces() {
        let mut lan = LanSync::new();
        lan.announce(ann(1, &[10], 100));
        lan.chunk_available(HostInt(1), ChunkId(7));
        assert_eq!(
            lan.try_serve(
                HostInt(2),
                NamespaceId(99),
                &[(ChunkId(7), 1)],
                SimTime::from_secs(110)
            ),
            None,
            "namespace membership is required"
        );
    }

    #[test]
    fn stale_peers_do_not_serve() {
        let mut lan = LanSync::new();
        lan.announce(ann(1, &[10], 100));
        lan.chunk_available(HostInt(1), ChunkId(7));
        // 5 minutes later, no new announcements: peer expired.
        assert_eq!(
            lan.try_serve(
                HostInt(2),
                NamespaceId(10),
                &[(ChunkId(7), 1)],
                SimTime::from_secs(400)
            ),
            None
        );
        // A fresh announcement revives it (chunk cache persisted).
        lan.announce(ann(1, &[10], 500));
        assert!(lan
            .try_serve(
                HostInt(2),
                NamespaceId(10),
                &[(ChunkId(7), 1)],
                SimTime::from_secs(510)
            )
            .is_some());
    }

    #[test]
    fn offline_peer_does_not_serve() {
        let mut lan = LanSync::new();
        lan.announce(ann(1, &[10], 100));
        lan.chunk_available(HostInt(1), ChunkId(7));
        lan.offline(HostInt(1));
        assert_eq!(
            lan.try_serve(
                HostInt(2),
                NamespaceId(10),
                &[(ChunkId(7), 1)],
                SimTime::from_secs(110)
            ),
            None
        );
    }

    #[test]
    fn partial_batches_fall_back_to_cloud() {
        let mut lan = LanSync::new();
        lan.announce(ann(1, &[10], 100));
        lan.chunk_available(HostInt(1), ChunkId(7));
        // Peer holds only one of two chunks: whole batch goes to the cloud.
        assert_eq!(
            lan.try_serve(
                HostInt(2),
                NamespaceId(10),
                &[(ChunkId(7), 1), (ChunkId(8), 1)],
                SimTime::from_secs(110)
            ),
            None
        );
        assert_eq!(lan.served_chunks(), 0);
    }

    #[test]
    fn devices_do_not_serve_themselves() {
        let mut lan = LanSync::new();
        lan.announce(ann(1, &[10], 100));
        lan.chunk_available(HostInt(1), ChunkId(7));
        assert_eq!(
            lan.try_serve(
                HostInt(1),
                NamespaceId(10),
                &[(ChunkId(7), 1)],
                SimTime::from_secs(110)
            ),
            None
        );
    }
}

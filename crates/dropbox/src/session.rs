//! The client's degraded-mode session state machine (DESIGN.md §9).
//!
//! A healthy client keeps one long-poll notification connection open for
//! its whole session. Under control-plane faults it degrades gracefully
//! instead of going silent:
//!
//! * **Connected → Polling** — when the notification plane goes down the
//!   long-poll fragment dies ([`crate::notification::SessionEnd::Aborted`])
//!   and the client falls back to *jittered periodic polling* of the
//!   metadata plane, so changes still propagate (late) while pushes are
//!   unavailable.
//! * **Polling → Reconnecting → Connected** — in parallel with the polls
//!   the client probes the notification plane with capped exponential
//!   backoff and deterministic jitter ([`crate::client::RetryPolicy`]).
//!   The first probe landing after the outage end succeeds, so a
//!   fleet-wide outage end produces a measurable *reconnect storm*: every
//!   affected device reconnects within one backoff cap of the recovery.
//! * **Offline queueing** — while the metadata plane refuses commits,
//!   local changes accumulate in a bounded [`OfflineQueue`]; edits that
//!   supersede an already-queued version of the same chunk coalesce (only
//!   the final version is ever uploaded), and at capacity the oldest
//!   batches merge so the queue length stays bounded.
//!
//! [`plan_session`] is a *pure planner*: given the session bounds, the
//! fault plan, and the device's RNG stream it returns the full phase
//! timeline. It consumes **no randomness** when no notification outage
//! overlaps the session, which keeps fault-free runs byte-identical.

use crate::client::{ChunkWork, RetryPolicy};
use crate::content::ChunkId;
use crate::notification::SessionEnd;
use simcore::faults::FaultPlan;
use simcore::{Rng, SimDuration, SimTime};

/// Tunables of the degraded-mode state machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionPolicy {
    /// Nominal gap between fallback metadata polls while the notification
    /// plane is down.
    pub poll_period: SimDuration,
    /// Relative jitter on the poll gap (`±poll_jitter`), de-synchronising
    /// the fleet's fallback polls.
    pub poll_jitter: f64,
    /// Backoff schedule for notification reconnect probes.
    pub retry: RetryPolicy,
}

impl Default for SessionPolicy {
    fn default() -> Self {
        SessionPolicy {
            poll_period: SimDuration::from_secs(90),
            poll_jitter: 0.35,
            retry: RetryPolicy::default(),
        }
    }
}

/// What the client is doing during one [`Phase`] of a session.
#[derive(Clone, Debug, PartialEq)]
pub enum PhaseKind {
    /// Healthy long-poll notification connection; `end` says how the
    /// fragment closes (`Aborted` when cut by a notification outage).
    Notify {
        /// Close mode of this notification fragment.
        end: SessionEnd,
    },
    /// Notification plane down: jittered periodic metadata polls at the
    /// given instants, while reconnect probes back off in parallel.
    PollFallback {
        /// Instants of the fallback polls, strictly inside the phase.
        polls: Vec<SimTime>,
    },
}

/// One contiguous `[start, end)` slice of a session in a single state.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Phase start (inclusive).
    pub start: SimTime,
    /// Phase end (exclusive).
    pub end: SimTime,
    /// What the client does during the phase.
    pub kind: PhaseKind,
}

/// The planned timeline of one device session under a fault plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionPlan {
    /// Contiguous phases covering `[session start, session end)` exactly.
    pub phases: Vec<Phase>,
    /// Failed notification reconnect probes (during outages).
    pub reconnect_attempts: Vec<SimTime>,
    /// Successful re-establishments of the notification connection — the
    /// reconnect-storm signal when aggregated across the fleet.
    pub reconnects: Vec<SimTime>,
}

impl SessionPlan {
    /// Whether the session never left the healthy connected state.
    pub fn clean(&self) -> bool {
        self.phases.len() <= 1 && self.reconnects.is_empty() && self.reconnect_attempts.is_empty()
    }
}

/// Plan the `[start, end)` session of one device against `faults`.
///
/// Pure and deterministic: the same inputs (including the RNG state)
/// always produce the same plan. Draws randomness **only** when a
/// notification outage overlaps the session; a clean session returns a
/// single `Notify` phase without touching `rng`.
pub fn plan_session(
    start: SimTime,
    end: SimTime,
    faults: &FaultPlan,
    policy: &SessionPolicy,
    rng: &mut Rng,
) -> SessionPlan {
    let mut plan = SessionPlan::default();
    let mut t = start;
    while t < end {
        if faults.notify_available(t) {
            match faults.next_notify_outage_after(t) {
                Some((lo, _)) if lo < end => {
                    // Healthy until the outage cuts the long poll.
                    plan.phases.push(Phase {
                        start: t,
                        end: lo,
                        kind: PhaseKind::Notify {
                            end: SessionEnd::Aborted,
                        },
                    });
                    t = lo;
                }
                _ => {
                    plan.phases.push(Phase {
                        start: t,
                        end,
                        kind: PhaseKind::Notify {
                            end: SessionEnd::ClientShutdown,
                        },
                    });
                    t = end;
                }
            }
        } else {
            // Disconnected: probe with capped exponential backoff until a
            // probe lands outside the outage (or the session ends first).
            let mut attempt = 0u32;
            let mut probe = t;
            let mut reconnected = None;
            loop {
                probe = probe + policy.retry.backoff(attempt, rng);
                attempt += 1;
                if probe >= end {
                    break;
                }
                if faults.notify_available(probe) {
                    reconnected = Some(probe);
                    break;
                }
                plan.reconnect_attempts.push(probe);
            }
            let until = reconnected.unwrap_or(end);
            // Jittered periodic polling keeps metadata flowing meanwhile.
            let mut polls = Vec::new();
            let mut p = t;
            loop {
                let jitter = 1.0 + policy.poll_jitter * (2.0 * rng.f64() - 1.0);
                p = p + policy.poll_period.mul_f64(jitter.max(0.1));
                if p >= until {
                    break;
                }
                polls.push(p);
            }
            plan.phases.push(Phase {
                start: t,
                end: until,
                kind: PhaseKind::PollFallback { polls },
            });
            if let Some(r) = reconnected {
                plan.reconnects.push(r);
            }
            t = until;
        }
    }
    plan
}

/// One batch of local changes waiting out a metadata outage.
#[derive(Clone, Debug, PartialEq)]
pub struct QueuedChange {
    /// When the change was made locally.
    pub queued_at: SimTime,
    /// Caller-chosen identifiers of the commits this batch carries (merged
    /// batches accumulate the tags of everything they absorbed).
    pub tags: Vec<u64>,
    /// Chunks still needing upload once the metadata plane returns.
    pub chunks: Vec<ChunkWork>,
}

/// Bounded queue of local changes made while the metadata plane is down.
///
/// Two mechanisms keep it bounded:
///
/// * **Coalescing of superseded edits** — pushing a change that replaces
///   chunks already queued (the same file edited again offline) removes
///   the stale versions; only the final version is uploaded at flush.
/// * **Capacity merging** — beyond `cap` batches, the two oldest batches
///   merge into one, so the queue holds at most `cap` entries no matter
///   how long the outage lasts (total chunk count still reflects every
///   distinct live change).
#[derive(Clone, Debug)]
pub struct OfflineQueue {
    cap: usize,
    entries: Vec<QueuedChange>,
    superseded_ids: Vec<ChunkId>,
    coalesced_tags: Vec<u64>,
    merges: u64,
}

impl OfflineQueue {
    /// An empty queue holding at most `cap` batches (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        OfflineQueue {
            cap: cap.max(1),
            entries: Vec::new(),
            superseded_ids: Vec::new(),
            coalesced_tags: Vec::new(),
            merges: 0,
        }
    }

    /// Queue the chunks of one local change made at `at`, identified by
    /// `tag` (e.g. a commit index for audit bookkeeping). `superseded`
    /// names chunk versions this change replaces: any of them still
    /// queued are dropped (their upload would be wasted bytes).
    pub fn push(&mut self, at: SimTime, tag: u64, chunks: Vec<ChunkWork>, superseded: &[ChunkId]) {
        if !superseded.is_empty() {
            for entry in &mut self.entries {
                let before = entry.chunks.len();
                entry.chunks.retain(|c| {
                    let keep = !superseded.contains(&c.id);
                    if !keep {
                        self.superseded_ids.push(c.id);
                    }
                    keep
                });
                debug_assert!(before >= entry.chunks.len());
            }
            // Batches emptied by coalescing vanish, but their tags are
            // remembered: those commits are now fully represented by the
            // superseding change and need no flush of their own.
            let coalesced = &mut self.coalesced_tags;
            self.entries.retain(|e| {
                if e.chunks.is_empty() {
                    coalesced.extend(e.tags.iter().copied());
                    false
                } else {
                    true
                }
            });
        }
        self.entries.push(QueuedChange {
            queued_at: at,
            tags: vec![tag],
            chunks,
        });
        while self.entries.len() > self.cap {
            // Merge the two oldest batches; the earlier timestamp wins so
            // flush order (and sync-lag accounting) stays faithful.
            let absorbed = self.entries.remove(1);
            self.entries[0].tags.extend(absorbed.tags);
            self.entries[0].chunks.extend(absorbed.chunks);
            self.merges += 1;
        }
    }

    /// Drain every queued batch in arrival order, emptying the queue.
    pub fn drain(&mut self) -> Vec<QueuedChange> {
        std::mem::take(&mut self.entries)
    }

    /// Queued batches (≤ the capacity bound).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total chunks across all queued batches.
    pub fn queued_chunks(&self) -> usize {
        self.entries.iter().map(|e| e.chunks.len()).sum()
    }

    /// Chunk versions dropped because a later edit superseded them.
    pub fn superseded(&self) -> u64 {
        self.superseded_ids.len() as u64
    }

    /// The dropped chunk ids themselves (for durability excusal: a
    /// superseded chunk is *expected* never to reach the store).
    pub fn superseded_ids(&self) -> &[ChunkId] {
        &self.superseded_ids
    }

    /// Tags of batches that vanished entirely because every chunk they
    /// carried was superseded by a later queued change.
    pub fn coalesced_tags(&self) -> &[u64] {
        &self.coalesced_tags
    }

    /// Forced oldest-batch merges performed to respect the capacity.
    pub fn merges(&self) -> u64 {
        self.merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::faults::OutageKnobs;

    fn chunk(id: u64, bytes: u64) -> ChunkWork {
        ChunkWork {
            id: ChunkId(id),
            wire_bytes: bytes,
            raw_bytes: bytes,
        }
    }

    fn chaos() -> FaultPlan {
        FaultPlan::chaos(5, 42, &OutageKnobs::default())
    }

    #[test]
    fn clean_session_is_one_phase_and_draws_nothing() {
        let faults = FaultPlan::none();
        let mut rng = Rng::new(7);
        let before = rng.clone().next_u64();
        let start = SimTime::from_secs(100);
        let end = SimTime::from_secs(4_000);
        let plan = plan_session(start, end, &faults, &SessionPolicy::default(), &mut rng);
        assert_eq!(rng.next_u64(), before, "clean planning must not draw");
        assert!(plan.clean());
        assert_eq!(plan.phases.len(), 1);
        assert_eq!(plan.phases[0].start, start);
        assert_eq!(plan.phases[0].end, end);
        assert_eq!(
            plan.phases[0].kind,
            PhaseKind::Notify {
                end: SessionEnd::ClientShutdown
            }
        );
    }

    #[test]
    fn outage_mid_session_degrades_and_reconnects() {
        let faults = chaos();
        let (lo, hi) = faults.notify_outages[0];
        // A session straddling the first notification outage.
        let start = SimTime::from_micros(lo.micros().saturating_sub(3_600_000_000));
        let end = hi + SimDuration::from_hours(2);
        let policy = SessionPolicy::default();
        let mut rng = Rng::new(9);
        let plan = plan_session(start, end, &faults, &policy, &mut rng);
        assert!(!plan.clean());
        assert!(plan.phases.len() >= 3, "{:?}", plan.phases);
        // Phases tile the session exactly.
        assert_eq!(plan.phases[0].start, start);
        assert_eq!(plan.phases.last().unwrap().end, end);
        for w in plan.phases.windows(2) {
            assert_eq!(w[0].end, w[1].start, "phases must be contiguous");
        }
        // The first phase is a healthy fragment aborted at the outage.
        assert_eq!(plan.phases[0].end, lo);
        assert_eq!(
            plan.phases[0].kind,
            PhaseKind::Notify {
                end: SessionEnd::Aborted
            }
        );
        // The fallback phase polls strictly inside its bounds.
        let fallback = &plan.phases[1];
        match &fallback.kind {
            PhaseKind::PollFallback { polls } => {
                for &p in polls {
                    assert!(fallback.start < p && p < fallback.end);
                }
                assert!(!polls.is_empty(), "long outage must poll");
            }
            other => panic!("expected fallback, got {other:?}"),
        }
        // Reconnect lands after the outage end, within one backoff cap.
        assert_eq!(plan.reconnects.len(), 1);
        let r = plan.reconnects[0];
        assert!(faults.notify_available(r));
        assert!(r >= hi || faults.notify_available(r));
        assert!(
            r <= hi + policy.retry.max_backoff,
            "reconnect {r:?} too far past outage end {hi:?}"
        );
        // Every failed probe fell inside the outage.
        for &a in &plan.reconnect_attempts {
            assert!(!faults.notify_available(a));
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let faults = chaos();
        let (lo, hi) = faults.notify_outages[0];
        let start = SimTime::from_micros(lo.micros().saturating_sub(600_000_000));
        let end = hi + SimDuration::from_hours(1);
        let a = plan_session(
            start,
            end,
            &faults,
            &SessionPolicy::default(),
            &mut Rng::new(4),
        );
        let b = plan_session(
            start,
            end,
            &faults,
            &SessionPolicy::default(),
            &mut Rng::new(4),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn fleet_reconnects_cluster_after_outage_end() {
        // Many devices with distinct RNG streams, all covering the same
        // outage: their reconnects must all land in (hi, hi + cap], the
        // storm signature.
        let faults = chaos();
        let (lo, hi) = faults.notify_outages[0];
        let start = SimTime::from_micros(lo.micros().saturating_sub(1_000_000));
        let end = hi + SimDuration::from_hours(3);
        let policy = SessionPolicy::default();
        let mut storm = Vec::new();
        for dev in 0..40u64 {
            let mut rng = Rng::new(777).fork(dev);
            let plan = plan_session(start, end, &faults, &policy, &mut rng);
            storm.extend(plan.reconnects.iter().copied());
        }
        assert!(storm.len() >= 35, "most devices reconnect: {}", storm.len());
        for &r in &storm {
            assert!(r > lo && r <= hi + policy.retry.max_backoff);
        }
        // Jitter spreads them: not all in the same instant.
        let distinct: std::collections::BTreeSet<_> = storm.iter().collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn offline_queue_coalesces_superseded_edits() {
        let mut q = OfflineQueue::new(8);
        q.push(
            SimTime::from_secs(1),
            0,
            vec![chunk(1, 100), chunk(2, 100)],
            &[],
        );
        // Editing chunk 1 again supersedes the queued version.
        q.push(SimTime::from_secs(2), 1, vec![chunk(3, 120)], &[ChunkId(1)]);
        assert_eq!(q.superseded_ids(), &[ChunkId(1)]);
        assert_eq!(q.superseded(), 1);
        assert_eq!(q.queued_chunks(), 2, "chunk 1 dropped, 2 and 3 remain");
        let drained = q.drain();
        assert!(q.is_empty());
        let ids: Vec<u64> = drained
            .iter()
            .flat_map(|e| e.chunks.iter().map(|c| c.id.0))
            .collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn offline_queue_merges_at_capacity() {
        let mut q = OfflineQueue::new(3);
        for i in 0..10u64 {
            q.push(SimTime::from_secs(i), i, vec![chunk(i, 50)], &[]);
        }
        assert_eq!(q.len(), 3, "bounded by capacity");
        assert_eq!(q.queued_chunks(), 10, "no live chunk is lost by merging");
        assert_eq!(q.merges(), 7);
        let drained = q.drain();
        // The merged head keeps the earliest timestamp.
        assert_eq!(drained[0].queued_at, SimTime::from_secs(0));
        assert!(drained[0].chunks.len() >= 8);
        assert!(drained[0].tags.len() >= 8, "merged batch keeps every tag");
    }

    #[test]
    fn fully_superseded_batches_disappear() {
        let mut q = OfflineQueue::new(4);
        q.push(SimTime::from_secs(1), 7, vec![chunk(1, 10)], &[]);
        q.push(SimTime::from_secs(2), 8, vec![chunk(2, 10)], &[ChunkId(1)]);
        assert_eq!(q.len(), 1, "first batch emptied and removed");
        assert_eq!(q.queued_chunks(), 1);
        assert_eq!(q.coalesced_tags(), &[7], "the vanished commit is named");
    }
}

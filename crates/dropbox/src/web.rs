//! Web interface, direct-link, and API traffic (Secs. 2.5 and 6).
//!
//! Content in Dropbox is also reachable without the client application:
//!
//! * the **main web interface** (`www` for control, `dl-web` for storage)
//!   — browsers open several parallel SSL connections, most of which only
//!   fetch thumbnails, so the flow-size CDF is dominated by handshake
//!   sizes (Fig. 17); uploads through the web form are rare and small,
//! * **direct links** (`dl.dropbox.com`) — the preferred web mechanism
//!   (92% of web-storage flows in Home 1), served over plain HTTP or
//!   HTTPS, mostly files under 10 MB (Fig. 18),
//! * the **public API** (`api` control, `api-content` storage) used by
//!   mobile and third-party apps.

use crate::client::CERT_CN;
use crate::{FlowSpec, FlowTruth};
use dnssim::ServerRole;
use nettrace::AppMarker;
use simcore::{dist, Rng, SimDuration};
use tcpmodel::tls;
use tcpmodel::{CloseMode, Dialogue, Direction, Message, Write};

/// A browser visit to the main web interface: one `www` control flow plus
/// several parallel `dl-web` storage flows (thumbnails and, rarely, a file
/// download or upload).
pub fn web_session_flows(rng: &mut Rng) -> Vec<FlowSpec> {
    let mut flows = Vec::new();

    // Control flow to www.dropbox.com: page loads, a few kB each way.
    let mut messages = tls::handshake("www.dropbox.com", CERT_CN, SimDuration::from_millis(80));
    let pages = rng.range_u64(1, 4);
    for _ in 0..pages {
        messages.push(Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(rng.range_u64(300, 4_000)),
            writes: vec![tls::record(rng.range_u64(400, 900) as u32)],
        });
        messages.push(Message {
            dir: Direction::Down,
            delay: SimDuration::from_millis(rng.range_u64(50, 150)),
            writes: vec![tls::record(
                dist::lognormal_median(rng, 30_000.0, 0.8) as u32
            )],
        });
    }
    flows.push(FlowSpec {
        server_name: "www.dropbox.com".into(),
        port: ServerRole::Www.port(),
        dialogue: Dialogue::new(messages).with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(500),
        }),
        truth: FlowTruth::WebControl,
        faults: None,
    });

    // Parallel dl-web connections: mostly thumbnails (a few kB), the CDF
    // strongly biased toward the SSL handshake floor (Fig. 17).
    let conns = rng.range_u64(1, 4);
    for _ in 0..conns {
        let mut m = tls::handshake("dl-web.dropbox.com", CERT_CN, SimDuration::from_millis(80));
        let objects = rng.range_u64(0, 3);
        let mut download = 0u64;
        for _ in 0..objects {
            let size = if rng.chance(0.9) {
                // Thumbnail.
                dist::lognormal_median(rng, 6_000.0, 0.9) as u64
            } else {
                // An actual file view/download, < 10 MB in ~95% of cases.
                (dist::lognormal_median(rng, 300_000.0, 1.5) as u64).min(60_000_000)
            };
            download += size;
            m.push(Message {
                dir: Direction::Up,
                delay: SimDuration::from_millis(rng.range_u64(20, 400)),
                writes: vec![tls::record(rng.range_u64(350, 600) as u32)],
            });
            m.push(Message {
                dir: Direction::Down,
                delay: SimDuration::from_millis(rng.range_u64(60, 160)),
                writes: vec![tls::record(size as u32)],
            });
        }
        let _ = download;
        flows.push(FlowSpec {
            server_name: "dl-web.dropbox.com".into(),
            port: ServerRole::WebStorage.port(),
            dialogue: Dialogue::new(m).with_close(CloseMode::ClientFin {
                delay: SimDuration::from_millis(rng.range_u64(200, 2_000)),
            }),
            truth: FlowTruth::WebStorage { upload: false },
            faults: None,
        });
    }

    // Occasionally an upload through the web form (rare and small:
    // >95% of web upload flows stay below 10 kB of payload).
    if rng.chance(0.15) {
        let mut m = tls::handshake("dl-web.dropbox.com", CERT_CN, SimDuration::from_millis(80));
        let size = dist::lognormal_median(rng, 2_500.0, 1.2) as u32;
        m.push(Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(rng.range_u64(500, 5_000)),
            writes: vec![tls::record(size)],
        });
        m.push(Message {
            dir: Direction::Down,
            delay: SimDuration::from_millis(100),
            writes: vec![tls::record(250)],
        });
        flows.push(FlowSpec {
            server_name: "dl-web.dropbox.com".into(),
            port: ServerRole::WebStorage.port(),
            dialogue: Dialogue::new(m).with_close(CloseMode::ClientFin {
                delay: SimDuration::from_millis(300),
            }),
            truth: FlowTruth::WebStorage { upload: true },
            faults: None,
        });
    }

    flows
}

/// A public direct-link download (`dl.dropbox.com`): a single HTTP GET;
/// not always encrypted, so no SSL size floor (Fig. 18). Sizes are mostly
/// below 10 MB — "their usage is not related to the sharing of movies".
pub fn direct_link_flow(rng: &mut Rng) -> FlowSpec {
    let https = rng.chance(0.3);
    let size = (dist::lognormal_median(rng, 120_000.0, 1.7) as u64).clamp(400, 300_000_000);
    let mut messages = Vec::new();
    if https {
        messages.extend(tls::handshake(
            "dl.dropbox.com",
            CERT_CN,
            SimDuration::from_millis(80),
        ));
    }
    messages.push(Message {
        dir: Direction::Up,
        delay: SimDuration::from_millis(rng.range_u64(5, 60)),
        writes: vec![Write::marked(
            rng.range_u64(280, 450) as u32,
            AppMarker::HttpRequest {
                host: "dl.dropbox.com".into(),
                path: format!("/s/{:08x}/file", rng.next_u64() as u32),
            },
        )],
    });
    messages.push(Message {
        dir: Direction::Down,
        delay: SimDuration::from_millis(rng.range_u64(60, 180)),
        writes: vec![Write::marked(
            (size as u32).max(1),
            AppMarker::HttpResponse { status: 200 },
        )],
    });
    FlowSpec {
        server_name: "dl.dropbox.com".into(),
        port: if https { 443 } else { 80 },
        dialogue: Dialogue::new(messages).with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(rng.range_u64(50, 500)),
        }),
        truth: FlowTruth::DirectLink,
        faults: None,
    }
}

/// An API session (mobile/third-party): one `api` control flow and, with
/// some probability, an `api-content` transfer. API volume is small but
/// non-negligible in home networks (up to 4% of volume, Fig. 4).
pub fn api_session_flows(rng: &mut Rng) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    let mut m = tls::handshake("api.dropbox.com", CERT_CN, SimDuration::from_millis(90));
    for _ in 0..rng.range_u64(1, 3) {
        m.push(Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(rng.range_u64(50, 2_000)),
            writes: vec![tls::record(rng.range_u64(300, 700) as u32)],
        });
        m.push(Message {
            dir: Direction::Down,
            delay: SimDuration::from_millis(rng.range_u64(60, 200)),
            writes: vec![tls::record(rng.range_u64(300, 5_000) as u32)],
        });
    }
    flows.push(FlowSpec {
        server_name: "api.dropbox.com".into(),
        port: ServerRole::ApiControl.port(),
        dialogue: Dialogue::new(m).with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(200),
        }),
        truth: FlowTruth::ApiControl,
        faults: None,
    });

    if rng.chance(0.5) {
        let mut m = tls::handshake(
            "api-content.dropbox.com",
            CERT_CN,
            SimDuration::from_millis(90),
        );
        let upload = rng.chance(0.35);
        let size = (dist::lognormal_median(rng, 250_000.0, 1.4) as u64).min(50_000_000) as u32;
        if upload {
            m.push(Message {
                dir: Direction::Up,
                delay: SimDuration::from_millis(rng.range_u64(50, 500)),
                writes: vec![tls::record(size)],
            });
            m.push(Message {
                dir: Direction::Down,
                delay: SimDuration::from_millis(120),
                writes: vec![tls::record(350)],
            });
        } else {
            m.push(Message {
                dir: Direction::Up,
                delay: SimDuration::from_millis(rng.range_u64(50, 500)),
                writes: vec![tls::record(420)],
            });
            m.push(Message {
                dir: Direction::Down,
                delay: SimDuration::from_millis(120),
                writes: vec![tls::record(size)],
            });
        }
        flows.push(FlowSpec {
            server_name: "api-content.dropbox.com".into(),
            port: ServerRole::ApiStorage.port(),
            dialogue: Dialogue::new(m).with_close(CloseMode::ClientFin {
                delay: SimDuration::from_millis(300),
            }),
            truth: FlowTruth::ApiStorage,
            faults: None,
        });
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_session_has_control_and_parallel_storage() {
        let mut rng = Rng::new(1);
        let flows = web_session_flows(&mut rng);
        assert!(flows.iter().any(|f| f.truth == FlowTruth::WebControl));
        let storage = flows
            .iter()
            .filter(|f| matches!(f.truth, FlowTruth::WebStorage { .. }))
            .count();
        assert!(storage >= 1, "browsers open dl-web connections");
    }

    #[test]
    fn web_uploads_are_rare_and_small() {
        let mut rng = Rng::new(2);
        let mut uploads = 0;
        let mut sessions = 0;
        for _ in 0..200 {
            sessions += 1;
            for f in web_session_flows(&mut rng) {
                if let FlowTruth::WebStorage { upload: true } = f.truth {
                    uploads += 1;
                    let up_payload: u64 = f
                        .dialogue
                        .messages
                        .iter()
                        .filter(|m| m.dir == Direction::Up)
                        .map(|m| m.size() as u64)
                        .sum();
                    // Handshake (294) + form post, overwhelmingly small.
                    assert!(up_payload < 200_000, "upload payload {up_payload}");
                }
            }
        }
        let frac = uploads as f64 / sessions as f64;
        assert!(frac > 0.05 && frac < 0.3, "upload fraction {frac}");
    }

    #[test]
    fn direct_links_use_http_mostly_and_stay_small() {
        let mut rng = Rng::new(3);
        let mut http = 0;
        let mut over_10mb = 0;
        let n = 500;
        for _ in 0..n {
            let f = direct_link_flow(&mut rng);
            assert_eq!(f.server_name, "dl.dropbox.com");
            if f.port == 80 {
                http += 1;
            }
            let down: u64 = f
                .dialogue
                .messages
                .iter()
                .filter(|m| m.dir == Direction::Down)
                .map(|m| m.size() as u64)
                .sum();
            if down > 10_000_000 {
                over_10mb += 1;
            }
        }
        assert!(
            http as f64 / n as f64 > 0.5,
            "direct links mostly cleartext"
        );
        assert!(
            (over_10mb as f64 / n as f64) < 0.1,
            "only a small share exceeds 10 MB: {over_10mb}/{n}"
        );
    }

    #[test]
    fn direct_link_request_carries_http_marker() {
        let mut rng = Rng::new(4);
        let f = direct_link_flow(&mut rng);
        let host = f
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Up)
            .find_map(|m| match m.writes[0].marker.as_ref() {
                Some(AppMarker::HttpRequest { host, .. }) => Some(host.clone()),
                _ => None,
            })
            .expect("direct-link flow must carry an HTTP request marker");
        assert_eq!(host, "dl.dropbox.com");
    }

    #[test]
    fn api_sessions_mix_control_and_content() {
        let mut rng = Rng::new(5);
        let mut saw_content = false;
        for _ in 0..50 {
            let flows = api_session_flows(&mut rng);
            assert!(matches!(flows[0].truth, FlowTruth::ApiControl));
            if flows
                .iter()
                .any(|f| matches!(f.truth, FlowTruth::ApiStorage))
            {
                saw_content = true;
            }
        }
        assert!(saw_content);
    }
}

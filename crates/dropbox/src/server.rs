//! Server-side command processing.
//!
//! [`MetaEndpoint`] and [`StorageEndpoint`] implement the behaviour of the
//! Dropbox control and storage planes as explicit request → response
//! handlers over [`Command`]s. The sync engine's flow builders encode the
//! same semantics implicitly (they must pre-compute sizes to build TCP
//! dialogues); these endpoints are the *reference* implementation used by
//! the protocol tests and the Fig. 1 testbed: every ladder the engine
//! emits must be accepted by the endpoints.

use crate::content::ChunkId;
use crate::metadata::{HostInt, MetadataServer, NamespaceId, UserId};
use crate::protocol::{Command, Plane};
use crate::storage::ChunkStore;

/// Errors a server can answer with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// Command sent to the wrong plane (e.g. `store` at a meta server).
    WrongPlane {
        /// Plane the command belongs to.
        expected: Plane,
        /// Plane of the endpoint that received it.
        got: Plane,
    },
    /// Device not registered.
    UnknownHost(HostInt),
    /// Namespace does not exist or the device is not a member.
    NamespaceDenied(NamespaceId),
    /// Retrieve of a chunk the store does not hold.
    MissingChunk(ChunkId),
    /// Batch exceeds the 100-chunk transaction limit (Sec. 2.3.2).
    BatchTooLarge(usize),
    /// The plane cannot serve the request right now: a 5xx during an
    /// outage or degradation window, or a write while the read-only
    /// metadata replica holds the fort. Clients back off and retry (or
    /// queue offline) — the degraded-mode state machine of
    /// [`crate::session`].
    Unavailable,
}

/// The meta-data plane endpoint (`client-lb`/`clientX`).
pub struct MetaEndpoint<'a> {
    md: &'a mut MetadataServer,
    store: &'a ChunkStore,
}

impl<'a> MetaEndpoint<'a> {
    /// Bind the endpoint to its backing state.
    pub fn new(md: &'a mut MetadataServer, store: &'a ChunkStore) -> Self {
        MetaEndpoint { md, store }
    }

    /// Register a device for a user and answer with its root namespace id
    /// (wrapped in an `ok`; the namespace travels in the session state).
    pub fn register_host(&mut self, user: UserId, host: HostInt) -> NamespaceId {
        self.md.register_host(user, host)
    }

    /// Handle a meta-plane command.
    pub fn handle(
        &mut self,
        host: HostInt,
        command: &Command,
        sizes: &[(ChunkId, u64)],
    ) -> Result<Command, ServerError> {
        if command.plane() != Plane::Meta {
            return Err(ServerError::WrongPlane {
                expected: command.plane(),
                got: Plane::Meta,
            });
        }
        if self.md.namespaces_of(host).is_empty() {
            return Err(ServerError::UnknownHost(host));
        }
        // Reads (register/list) are answered in both serving modes — the
        // replica serves them from its stale snapshot — but writes are
        // refused until the primary is restored.
        let read_only = self.md.mode() == crate::metadata::ServingMode::Replica;
        match command {
            Command::RegisterHost | Command::List => Ok(Command::Ok),
            Command::CloseChangeset => {
                if read_only {
                    return Err(ServerError::Unavailable);
                }
                Ok(Command::Ok)
            }
            Command::CommitBatch { hashes } => {
                if read_only {
                    return Err(ServerError::Unavailable);
                }
                if hashes.len() > Command::MAX_CHUNKS_PER_BATCH {
                    return Err(ServerError::BatchTooLarge(hashes.len()));
                }
                // Answer with the subset of hashes the store lacks.
                let with_sizes: Vec<(ChunkId, u64)> = hashes
                    .iter()
                    .map(|id| {
                        let size = sizes
                            .iter()
                            .find(|(sid, _)| sid == id)
                            .map(|&(_, s)| s)
                            .unwrap_or(0);
                        (*id, size)
                    })
                    .collect();
                let need = self.store.need_blocks(&with_sizes);
                Ok(Command::NeedBlocks { hashes: need })
            }
            _ => unreachable!("plane checked above"),
        }
    }
}

/// The storage plane endpoint (`dl-clientX`, Amazon).
pub struct StorageEndpoint<'a> {
    store: &'a ChunkStore,
}

impl<'a> StorageEndpoint<'a> {
    /// Bind the endpoint to the chunk store.
    pub fn new(store: &'a ChunkStore) -> Self {
        StorageEndpoint { store }
    }

    /// Handle a storage-plane command. `sizes` supplies the raw size of
    /// each uploaded chunk.
    pub fn handle(
        &mut self,
        command: &Command,
        sizes: &[(ChunkId, u64)],
    ) -> Result<Command, ServerError> {
        if command.plane() != Plane::Storage {
            return Err(ServerError::WrongPlane {
                expected: command.plane(),
                got: Plane::Storage,
            });
        }
        let size_of = |id: &ChunkId| {
            sizes
                .iter()
                .find(|(sid, _)| sid == id)
                .map(|&(_, s)| s)
                .unwrap_or(0)
        };
        match command {
            Command::Store { id } => {
                self.store.put(*id, size_of(id));
                Ok(Command::Ok)
            }
            Command::StoreBatch { ids } => {
                if ids.len() > Command::MAX_CHUNKS_PER_BATCH {
                    return Err(ServerError::BatchTooLarge(ids.len()));
                }
                for id in ids {
                    self.store.put(*id, size_of(id));
                }
                Ok(Command::Ok)
            }
            Command::Retrieve { id } => {
                if !self.store.has(*id) {
                    return Err(ServerError::MissingChunk(*id));
                }
                Ok(Command::Ok)
            }
            Command::RetrieveBatch { ids } => {
                for id in ids {
                    if !self.store.has(*id) {
                        return Err(ServerError::MissingChunk(*id));
                    }
                }
                Ok(Command::Ok)
            }
            Command::Ok => Ok(Command::Ok),
            _ => unreachable!("plane checked above"),
        }
    }
}

/// Replay a protocol trace (client-side commands) against fresh endpoints,
/// verifying every message is accepted in order — the conformance check
/// used by the Fig. 1 experiment.
pub fn replay_accepts(
    trace: &crate::protocol::ProtocolTrace,
    host: HostInt,
    user: UserId,
    sizes: &[(ChunkId, u64)],
) -> Result<(), ServerError> {
    let mut md = MetadataServer::new();
    let store = ChunkStore::new();
    {
        let mut meta = MetaEndpoint::new(&mut md, &store);
        meta.register_host(user, host);
    }
    for entry in trace.entries() {
        if entry.from != crate::protocol::Sender::Client {
            continue;
        }
        match entry.command.plane() {
            Plane::Meta => {
                let mut meta = MetaEndpoint::new(&mut md, &store);
                meta.handle(host, &entry.command, sizes)?;
            }
            Plane::Storage => {
                let mut storage = StorageEndpoint::new(&store);
                storage.handle(&entry.command, sizes)?;
            }
            Plane::Notify => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ChunkWork, SyncConfig, SyncEngine};
    use crate::protocol::ProtocolTrace;
    use dnssim::DnsDirectory;
    use simcore::{Rng, SimTime};

    fn setup() -> (MetadataServer, ChunkStore) {
        let mut md = MetadataServer::new();
        let store = ChunkStore::new();
        md.register_host(UserId(1), HostInt(10));
        (md, store)
    }

    #[test]
    fn commit_answers_with_missing_chunks_only() {
        let (mut md, store) = setup();
        store.put(ChunkId(1), 100);
        let mut meta = MetaEndpoint::new(&mut md, &store);
        let resp = meta
            .handle(
                HostInt(10),
                &Command::CommitBatch {
                    hashes: vec![ChunkId(1), ChunkId(2)],
                },
                &[(ChunkId(1), 100), (ChunkId(2), 200)],
            )
            .unwrap();
        assert_eq!(
            resp,
            Command::NeedBlocks {
                hashes: vec![ChunkId(2)]
            }
        );
    }

    #[test]
    fn oversized_batch_rejected() {
        let (mut md, store) = setup();
        let mut meta = MetaEndpoint::new(&mut md, &store);
        let hashes: Vec<ChunkId> = (0..101).map(ChunkId).collect();
        assert_eq!(
            meta.handle(HostInt(10), &Command::CommitBatch { hashes }, &[]),
            Err(ServerError::BatchTooLarge(101))
        );
    }

    #[test]
    fn unknown_host_rejected() {
        let (mut md, store) = setup();
        let mut meta = MetaEndpoint::new(&mut md, &store);
        assert_eq!(
            meta.handle(HostInt(99), &Command::List, &[]),
            Err(ServerError::UnknownHost(HostInt(99)))
        );
    }

    #[test]
    fn wrong_plane_rejected_both_ways() {
        let (mut md, store) = setup();
        let mut meta = MetaEndpoint::new(&mut md, &store);
        assert!(matches!(
            meta.handle(HostInt(10), &Command::Store { id: ChunkId(1) }, &[]),
            Err(ServerError::WrongPlane { .. })
        ));
        let mut storage = StorageEndpoint::new(&store);
        assert!(matches!(
            storage.handle(&Command::List, &[]),
            Err(ServerError::WrongPlane { .. })
        ));
    }

    #[test]
    fn retrieve_of_missing_chunk_fails() {
        let (_, store) = setup();
        let mut storage = StorageEndpoint::new(&store);
        assert_eq!(
            storage.handle(&Command::Retrieve { id: ChunkId(9) }, &[]),
            Err(ServerError::MissingChunk(ChunkId(9)))
        );
        store.put(ChunkId(9), 10);
        assert_eq!(
            storage.handle(&Command::Retrieve { id: ChunkId(9) }, &[]),
            Ok(Command::Ok)
        );
    }

    #[test]
    fn failed_over_endpoint_serves_reads_but_refuses_writes() {
        let (mut md, store) = setup();
        md.fail_over(&crate::metadata::ReplicaConfig::default());
        let mut meta = MetaEndpoint::new(&mut md, &store);
        // Stale reads still flow during the handover window.
        assert_eq!(
            meta.handle(HostInt(10), &Command::List, &[]),
            Ok(Command::Ok)
        );
        // Writes answer 5xx until the primary is restored.
        assert_eq!(
            meta.handle(
                HostInt(10),
                &Command::CommitBatch {
                    hashes: vec![ChunkId(1)]
                },
                &[(ChunkId(1), 100)],
            ),
            Err(ServerError::Unavailable)
        );
        assert_eq!(
            meta.handle(HostInt(10), &Command::CloseChangeset, &[]),
            Err(ServerError::Unavailable)
        );
        md.restore();
        let mut meta = MetaEndpoint::new(&mut md, &store);
        assert!(meta
            .handle(
                HostInt(10),
                &Command::CommitBatch {
                    hashes: vec![ChunkId(1)]
                },
                &[(ChunkId(1), 100)],
            )
            .is_ok());
    }

    #[test]
    fn engine_traces_replay_cleanly() {
        // Conformance: the ladders the sync engine produces are accepted by
        // the reference endpoints.
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut engine = SyncEngine::new(&dns, &store, SyncConfig::default(), 10);
        let mut trace = ProtocolTrace::new();
        let chunks: Vec<ChunkWork> = (0..5)
            .map(|i| ChunkWork {
                id: ChunkId(500 + i),
                wire_bytes: 10_000,
                raw_bytes: 12_000,
            })
            .collect();
        let mut rng = Rng::new(1);
        engine.upload_transaction(&chunks, 0, &mut rng, Some(&mut trace), SimTime::EPOCH);
        let sizes: Vec<(ChunkId, u64)> = chunks.iter().map(|c| (c.id, c.raw_bytes)).collect();
        replay_accepts(&trace, HostInt(10), UserId(1), &sizes).expect("trace accepted");
    }

    #[test]
    fn v14_batch_traces_replay_cleanly() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut engine = SyncEngine::new(
            &dns,
            &store,
            SyncConfig {
                version: crate::client::ClientVersion::V1_4_0,
                ..SyncConfig::default()
            },
            10,
        );
        let mut trace = ProtocolTrace::new();
        let chunks: Vec<ChunkWork> = (0..30)
            .map(|i| ChunkWork {
                id: ChunkId(900 + i),
                wire_bytes: 60_000,
                raw_bytes: 60_000,
            })
            .collect();
        let mut rng = Rng::new(2);
        engine.upload_transaction(&chunks, 0, &mut rng, Some(&mut trace), SimTime::EPOCH);
        // The v1.4 ladder contains store_batch commands.
        assert!(trace.ladder().contains(&"store_batch"));
        let sizes: Vec<(ChunkId, u64)> = chunks.iter().map(|c| (c.id, c.raw_bytes)).collect();
        replay_accepts(&trace, HostInt(10), UserId(1), &sizes).expect("trace accepted");
    }
}

//! The notification protocol (Sec. 2.3.1).
//!
//! Each client keeps one TCP connection to a `notifyX.dropbox.com` server
//! open for its whole session. The protocol is plain HTTP long-polling:
//! the client sends a request carrying its `host_int` and its current
//! namespace list **in clear text**; the server answers ~60 s later when
//! nothing changed, or immediately when a change was committed elsewhere.
//! The client then issues the next request at once.
//!
//! Because the payload is cleartext, the probe can read device identifiers
//! and namespace lists — the paper's source for device counts (Table 3),
//! devices per household (Fig. 12), namespaces per device (Fig. 13) and
//! session durations (Fig. 16).

use crate::metadata::{HostInt, NamespaceId};
use crate::{FlowSpec, FlowTruth};
use dnssim::{DnsDirectory, ServerRole};
use nettrace::AppMarker;
use simcore::{Rng, SimDuration};
use tcpmodel::{CloseMode, Dialogue, Direction, Message, Write};

/// Long-poll response delay when no change is pending.
pub const POLL_PERIOD: SimDuration = SimDuration::from_secs(60);

/// How a notification session ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// Normal client shutdown (FIN).
    ClientShutdown,
    /// Killed by a home gateway / NAT idle timeout (abrupt RST) — the
    /// source of the <1 min notification flows in the home datasets
    /// (Sec. 5.5). The client immediately re-establishes a new connection.
    NatReset,
    /// Cut by a network fault mid-poll: the connection dies with an RST
    /// *before* the outstanding long-poll completes, and the client
    /// reconnects after a backoff. Unlike [`SessionEnd::NatReset`], the
    /// reset here lands right after a request write, so reconnect churn
    /// produces the retry-storm pattern of a flaky access link.
    Aborted,
}

/// Build the notification connection for a session (or session fragment)
/// of duration `span`. `changes` is the number of poll cycles that were
/// answered early because a change was signalled.
pub fn notification_flow(
    dns: &DnsDirectory,
    host: HostInt,
    namespaces: &[NamespaceId],
    span: SimDuration,
    changes: u32,
    end: SessionEnd,
    rng: &mut Rng,
) -> FlowSpec {
    let name = dns.notify_name(rng);
    notification_flow_named(name, host, namespaces, span, changes, end, rng)
}

/// [`notification_flow`] against an explicitly named notification server —
/// the provider-generic entry point (flat-named providers do not route
/// through the Dropbox `notifyX` pool).
pub fn notification_flow_named(
    name: String,
    host: HostInt,
    namespaces: &[NamespaceId],
    span: SimDuration,
    changes: u32,
    end: SessionEnd,
    rng: &mut Rng,
) -> FlowSpec {
    let ns_list: Vec<u64> = namespaces.iter().map(|n| n.0).collect();

    // Request size grows with the advertised namespace list.
    let req_size = 310 + 18 * ns_list.len() as u32;
    let resp_size = 160u32;

    let mut messages = Vec::new();
    let total_cycles = (span.secs() / POLL_PERIOD.secs()).max(1);
    // Keep long sessions affordable: the wire pattern is strictly periodic,
    // so sessions longer than 50 cycles are represented by proportionally
    // spaced cycles with identical per-cycle sizes (the monitor sees the
    // same byte totals, durations, and endpoints).
    let modeled_cycles = total_cycles.min(50);
    let cycle_gap = SimDuration::from_micros(span.micros() / modeled_cycles);
    for i in 0..modeled_cycles {
        let marker = AppMarker::NotifyRequest {
            host: name.clone(),
            host_int: host.0,
            namespaces: ns_list.clone(),
        };
        messages.push(Message {
            dir: Direction::Up,
            delay: if i == 0 {
                SimDuration::from_millis(rng.range_u64(5, 50))
            } else {
                SimDuration::from_millis(rng.range_u64(5, 30))
            },
            writes: vec![Write::marked(req_size, marker)],
        });
        let early = (i as u32) < changes;
        let delay = if early {
            // A change elsewhere triggers an immediate response somewhere
            // inside the window.
            SimDuration::from_millis(rng.range_u64(500, 30_000))
        } else {
            cycle_gap - SimDuration::from_millis(rng.range_u64(40, 90)).min(cycle_gap)
        };
        messages.push(Message {
            dir: Direction::Down,
            delay,
            writes: vec![Write::plain(resp_size)],
        });
    }

    if end == SessionEnd::Aborted {
        // The fragment dies with a long-poll outstanding: one final
        // request that never gets its response.
        let marker = AppMarker::NotifyRequest {
            host: name.clone(),
            host_int: host.0,
            namespaces: ns_list.clone(),
        };
        messages.push(Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(rng.range_u64(5, 30)),
            writes: vec![Write::marked(req_size, marker)],
        });
    }

    let close = match end {
        SessionEnd::ClientShutdown => CloseMode::ClientFin {
            delay: SimDuration::from_millis(150),
        },
        SessionEnd::NatReset => CloseMode::ClientRst {
            delay: SimDuration::from_millis(20),
        },
        SessionEnd::Aborted => CloseMode::ClientRst {
            delay: SimDuration::from_millis(5),
        },
    };
    FlowSpec {
        server_name: name,
        port: ServerRole::Notification.port(),
        dialogue: Dialogue::new(messages).with_close(close),
        truth: FlowTruth::Notification,
        faults: None,
    }
}

/// A failed notification reconnect probe during a server-side outage: the
/// client opens a connection, writes one long-poll request, and the dead
/// plane never answers — the probe dies by client RST after a short
/// patience window. Fleet-wide, the probes (and the successful reconnects
/// that follow the outage end) are the reconnect-storm signature the
/// chaos experiments measure.
pub fn reconnect_probe_flow(
    dns: &DnsDirectory,
    host: HostInt,
    namespaces: &[NamespaceId],
    rng: &mut Rng,
) -> FlowSpec {
    let name = dns.notify_name(rng);
    reconnect_probe_flow_named(name, host, namespaces, rng)
}

/// [`reconnect_probe_flow`] against an explicitly named notification
/// server (provider-generic entry point).
pub fn reconnect_probe_flow_named(
    name: String,
    host: HostInt,
    namespaces: &[NamespaceId],
    rng: &mut Rng,
) -> FlowSpec {
    let ns_list: Vec<u64> = namespaces.iter().map(|n| n.0).collect();
    let req_size = 310 + 18 * ns_list.len() as u32;
    let marker = AppMarker::NotifyRequest {
        host: name.clone(),
        host_int: host.0,
        namespaces: ns_list,
    };
    let messages = vec![Message {
        dir: Direction::Up,
        delay: SimDuration::from_millis(rng.range_u64(5, 50)),
        writes: vec![Write::marked(req_size, marker)],
    }];
    FlowSpec {
        server_name: name,
        port: ServerRole::Notification.port(),
        dialogue: Dialogue::new(messages).with_close(CloseMode::ClientRst {
            delay: SimDuration::from_millis(rng.range_u64(800, 3_000)),
        }),
        truth: FlowTruth::Notification,
        faults: None,
    }
}

/// One periodic change-poll connection of a *polling* provider (see
/// [`crate::spec::NotifyStyle::Poll`]): unlike the Dropbox long-poll,
/// each check is its own short request/response connection, so a polling
/// client produces many small notification flows instead of one
/// session-long connection.
pub fn poll_check_flow(
    name: String,
    host: HostInt,
    namespaces: &[NamespaceId],
    rng: &mut Rng,
) -> FlowSpec {
    let ns_list: Vec<u64> = namespaces.iter().map(|n| n.0).collect();
    let req_size = 310 + 18 * ns_list.len() as u32;
    let marker = AppMarker::NotifyRequest {
        host: name.clone(),
        host_int: host.0,
        namespaces: ns_list,
    };
    let messages = vec![
        Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(rng.range_u64(5, 50)),
            writes: vec![Write::marked(req_size, marker)],
        },
        Message {
            dir: Direction::Down,
            delay: SimDuration::from_millis(rng.range_u64(60, 400)),
            writes: vec![Write::plain(160)],
        },
    ];
    FlowSpec {
        server_name: name,
        port: ServerRole::Notification.port(),
        dialogue: Dialogue::new(messages).with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(100),
        }),
        truth: FlowTruth::Notification,
        faults: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dns() -> DnsDirectory {
        DnsDirectory::new()
    }

    #[test]
    fn poll_check_is_one_short_answered_connection() {
        let mut rng = Rng::new(9);
        let f = poll_check_flow(
            "notify.skydrive-like.example".to_owned(),
            HostInt(5),
            &[NamespaceId(2)],
            &mut rng,
        );
        assert_eq!(f.port, 80);
        assert_eq!(f.dialogue.messages.len(), 2, "request + response");
        assert!(matches!(f.dialogue.close, CloseMode::ClientFin { .. }));
        assert_eq!(f.truth, FlowTruth::Notification);
    }

    #[test]
    fn reconnect_probe_is_a_short_unanswered_rst_flow() {
        let mut rng = Rng::new(8);
        let f = reconnect_probe_flow(&dns(), HostInt(3), &[NamespaceId(9)], &mut rng);
        assert!(f.server_name.starts_with("notify"));
        assert_eq!(f.port, 80);
        assert_eq!(f.dialogue.messages.len(), 1, "one request, no response");
        assert_eq!(f.dialogue.messages[0].dir, Direction::Up);
        assert!(matches!(f.dialogue.close, CloseMode::ClientRst { .. }));
    }

    #[test]
    fn flow_targets_notify_server_on_port_80() {
        let mut rng = Rng::new(1);
        let f = notification_flow(
            &dns(),
            HostInt(7),
            &[NamespaceId(1)],
            SimDuration::from_mins(10),
            0,
            SessionEnd::ClientShutdown,
            &mut rng,
        );
        assert!(f.server_name.starts_with("notify"));
        assert_eq!(f.port, 80);
        assert_eq!(f.truth, FlowTruth::Notification);
    }

    #[test]
    fn requests_carry_host_int_and_namespaces() {
        let mut rng = Rng::new(2);
        let nss = [NamespaceId(11), NamespaceId(22), NamespaceId(33)];
        let f = notification_flow(
            &dns(),
            HostInt(99),
            &nss,
            SimDuration::from_mins(5),
            0,
            SessionEnd::ClientShutdown,
            &mut rng,
        );
        let first_up = f
            .dialogue
            .messages
            .iter()
            .find(|m| m.dir == Direction::Up)
            .unwrap();
        match &first_up.writes[0].marker {
            Some(AppMarker::NotifyRequest {
                host,
                host_int,
                namespaces,
            }) => {
                assert!(host.starts_with("notify"));
                assert_eq!(*host_int, 99);
                assert_eq!(namespaces, &vec![11, 22, 33]);
            }
            other => panic!("unexpected marker: {other:?}"),
        }
    }

    #[test]
    fn session_span_sets_cycle_count() {
        let mut rng = Rng::new(3);
        let f = notification_flow(
            &dns(),
            HostInt(1),
            &[NamespaceId(1)],
            SimDuration::from_mins(10),
            0,
            SessionEnd::ClientShutdown,
            &mut rng,
        );
        let ups = f
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Up)
            .count();
        assert_eq!(ups, 10, "one poll per minute");
    }

    #[test]
    fn very_long_sessions_are_subsampled_not_truncated() {
        let mut rng = Rng::new(4);
        let f = notification_flow(
            &dns(),
            HostInt(1),
            &[NamespaceId(1)],
            SimDuration::from_hours(8),
            0,
            SessionEnd::ClientShutdown,
            &mut rng,
        );
        let ups = f
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Up)
            .count();
        assert_eq!(ups, 50, "capped cycle count");
        // Total modelled span still ≈ 8 h: gaps between cycles stretch.
        let span: SimDuration = f
            .dialogue
            .messages
            .iter()
            .map(|m| m.delay)
            .fold(SimDuration::ZERO, |acc, d| acc + d);
        assert!(span.secs() > 7 * 3600, "span {span}");
    }

    #[test]
    fn aborted_fragment_ends_with_unanswered_poll_and_rst() {
        let mut rng = Rng::new(6);
        let f = notification_flow(
            &dns(),
            HostInt(1),
            &[NamespaceId(1)],
            SimDuration::from_mins(3),
            0,
            SessionEnd::Aborted,
            &mut rng,
        );
        assert!(matches!(f.dialogue.close, CloseMode::ClientRst { .. }));
        // One more request than responses: the last poll goes unanswered.
        let ups = f
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Up)
            .count();
        let downs = f
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .count();
        assert_eq!(ups, downs + 1);
        assert_eq!(f.dialogue.messages.last().unwrap().dir, Direction::Up);
    }

    #[test]
    fn nat_reset_closes_with_rst() {
        let mut rng = Rng::new(5);
        let f = notification_flow(
            &dns(),
            HostInt(1),
            &[NamespaceId(1)],
            SimDuration::from_secs(45),
            0,
            SessionEnd::NatReset,
            &mut rng,
        );
        assert!(matches!(f.dialogue.close, CloseMode::ClientRst { .. }));
    }
}

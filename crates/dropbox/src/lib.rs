//! Model of the Dropbox personal cloud storage system (client + servers),
//! as documented by the paper's testbed dissection (Sec. 2 and Appendix A).
//!
//! The crate implements the *system under measurement*:
//!
//! * [`content`] — file content descriptors, 4 MB chunking, SHA-256 chunk
//!   identities, and the wire-size model (compression + delta encoding)
//!   calibrated against the real codecs in the `contenthash` crate,
//! * [`metadata`] — the server-side meta-data database: users, devices
//!   (`host_int`), namespaces (shared folders), file entries, and the
//!   per-namespace journal that drives incremental `list` updates,
//! * [`storage`] — the deduplicating chunk store backing the Amazon plane,
//! * [`protocol`] — the client⇆server command vocabulary
//!   (`register_host`, `list`, `commit_batch`, `store`, `store_batch`, …)
//!   and a trace recorder reproducing Fig. 1's message ladder,
//! * [`client`] — the sync engine: given local file events it produces the
//!   control and storage [`FlowSpec`]s (TCP dialogues plus ground truth)
//!   for both protocol generations (v1.2.52 per-chunk acknowledgments and
//!   v1.4.0 bundling),
//! * [`server`] — the reference server-side command handlers the engine's
//!   ladders must satisfy (protocol conformance),
//! * [`lan_sync`] — the LAN Sync Protocol (discovery + local serving),
//! * [`notification`] — the cleartext notification long-poll,
//! * [`spec`] — provider protocol specifications: the per-provider knob
//!   table (chunk size, bundling, dedup/delta, placement, notification
//!   style, naming) the generic engine is parameterised by; Dropbox is
//!   one spec among competing "SkyDrive-like"/"GDrive-like" models,
//! * [`web`] — web interface, direct-link, and API traffic builders.
//!
//! Every flow this crate emits carries a [`FlowTruth`] annotation so the
//! analysis layer's *inferences* (store/retrieve tagging, chunk counting)
//! can be validated against ground truth — the validation the paper could
//! only do inside its testbed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod content;
pub mod lan_sync;
pub mod metadata;
pub mod notification;
pub mod protocol;
pub mod server;
pub mod session;
pub mod spec;
pub mod storage;
pub mod web;

pub use client::{ClientVersion, SyncEngine};
pub use content::{ChunkId, Content, ContentKind, CHUNK_SIZE};
pub use protocol::{Command, ProtocolTrace};
pub use spec::ProviderSpec;

use simcore::faults::FlowFaults;
use tcpmodel::Dialogue;

/// Ground-truth annotation of a generated flow (never visible to the
/// monitor; used only for validating the analysis methods).
#[derive(Clone, Debug, PartialEq)]
pub enum FlowTruth {
    /// Storage flow carrying chunk uploads.
    Store {
        /// Number of chunks transported.
        chunks: u32,
        /// Application payload bytes of chunk data (compressed).
        data_bytes: u64,
        /// True when the per-chunk acknowledgments are missing (the Home 2
        /// "misbehaving device" of Sec. 4.3.1).
        acked: bool,
    },
    /// Storage flow carrying chunk downloads.
    Retrieve {
        /// Number of chunks transported.
        chunks: u32,
        /// Application payload bytes of chunk data (compressed).
        data_bytes: u64,
    },
    /// Meta-data / control exchange.
    Control,
    /// Notification long-poll connection.
    Notification,
    /// Event-log or back-trace reporting.
    SystemLog,
    /// Main web interface (storage of thumbnails/files over `dl-web`).
    WebStorage {
        /// True for an upload, false for a download.
        upload: bool,
    },
    /// Main web interface control traffic (`www`).
    WebControl,
    /// Public direct-link download (`dl`).
    DirectLink,
    /// API control traffic (`api`).
    ApiControl,
    /// API storage traffic (`api-content`).
    ApiStorage,
}

impl FlowTruth {
    /// Number of chunks carried, when the flow is a storage flow.
    pub fn chunks(&self) -> Option<u32> {
        match self {
            FlowTruth::Store { chunks, .. } | FlowTruth::Retrieve { chunks, .. } => Some(*chunks),
            _ => None,
        }
    }
}

/// A fully-specified TCP connection to be played by `tcpmodel::simulate`.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Server FQDN the client resolved for this connection.
    pub server_name: String,
    /// Server TCP port.
    pub port: u16,
    /// The application dialogue.
    pub dialogue: Dialogue,
    /// Ground truth for validation.
    pub truth: FlowTruth,
    /// Faults intrinsic to this flow (e.g. the mid-transfer reset of a
    /// recovering upload). The driver merges these with any link-level
    /// faults drawn from the run's fault plan.
    pub faults: Option<FlowFaults>,
}

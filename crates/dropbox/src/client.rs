//! The Dropbox client sync engine.
//!
//! Given chunk-level work (uploads after local changes, downloads after
//! remote changes), the engine produces the TCP [`FlowSpec`]s a real client
//! would generate, for both protocol generations:
//!
//! * **v1.2.52** (the version distributed during the paper's capture):
//!   every chunk is a separate `store`/`retrieve` operation acknowledged
//!   sequentially — the client waits one RTT plus the server reaction time
//!   between chunks (Sec. 4.4.2),
//! * **v1.4.0** (the Jun/Jul re-capture): `store_batch`/`retrieve_batch`
//!   bundle small chunks up to the 4 MB bundle budget; single-chunk
//!   commands remain in use for large chunks, and batches are still issued
//!   sequentially (Sec. 4.5.1).
//!
//! Transactions are limited to [`Command::MAX_CHUNKS_PER_BATCH`] chunks —
//! the run-time parameter that shapes Fig. 7/8's 100-chunk / ~400 MB flow
//! caps. Meta-data exchanges (`commit_batch` → `need_blocks`,
//! `close_changeset`) ride on separate short TLS connections to the
//! meta-data servers, reflecting their aggressive connection timeouts
//! (Sec. 2.3.2).

use crate::content::ChunkId;
use crate::protocol::{Command, ProtocolTrace, Sender};
use crate::storage::ChunkStore;
use crate::{FlowSpec, FlowTruth};
use dnssim::{DnsDirectory, ServerRole};
use simcore::{dist, Rng, SimDuration, SimTime};
use tcpmodel::tls;
use tcpmodel::{CloseMode, Dialogue, Direction, Message, Write};

/// Client software generation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientVersion {
    /// Stable version during the Mar–May 2012 capture.
    V1_2_52,
    /// Bundling version of the Jun/Jul 2012 re-capture.
    V1_4_0,
}

/// Per-operation wire overheads measured in the paper's testbed
/// (Appendix A.2/A.3).
pub mod overhead {
    /// Client-side overhead of one store operation.
    pub const STORE_CLIENT: u32 = 634;
    /// Server-side overhead of one storage operation (the `ok`).
    pub const SERVER_PER_OP: u32 = 309;
    /// Minimum client-side overhead of one retrieve request.
    pub const RETRIEVE_CLIENT_MIN: u32 = 362;
    /// Maximum client-side overhead of one retrieve request.
    pub const RETRIEVE_CLIENT_MAX: u32 = 426;
}

/// Bundle budget of v1.4.0 (chunks are ≤ 4 MB; bundles are packed to the
/// same cap).
const BUNDLE_BUDGET: u64 = 4 * 1024 * 1024;
/// Chunks at or above this size are sent with single-chunk commands even
/// in v1.4.0 ("the system decides at run-time whether chunks are grouped").
const BUNDLE_MAX_MEMBER: u64 = 1024 * 1024;

/// Certificate common name of every Dropbox service (Sec. 3.1).
pub const CERT_CN: &str = "*.dropbox.com";

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SyncConfig {
    /// Protocol generation.
    pub version: ClientVersion,
    /// Median server reaction time between storage operations.
    pub server_reaction_ms: f64,
    /// Median client reaction time between storage operations.
    pub client_reaction_ms: f64,
    /// The Home 2 "misbehaving device": submits single 4 MB chunks on
    /// consecutive connections and its flows lack acknowledgment messages
    /// (Secs. 4.3.1, A.3).
    pub no_storage_acks: bool,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            version: ClientVersion::V1_2_52,
            server_reaction_ms: 120.0,
            client_reaction_ms: 60.0,
            no_storage_acks: false,
        }
    }
}

/// A chunk to transfer: identity plus compressed on-wire size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkWork {
    /// Chunk identity.
    pub id: ChunkId,
    /// Compressed (on-wire) size of the chunk data or delta.
    pub wire_bytes: u64,
    /// Raw size (for the dedup store accounting).
    pub raw_bytes: u64,
}

/// The sync engine of one device.
pub struct SyncEngine<'a> {
    dns: &'a DnsDirectory,
    store: &'a ChunkStore,
    config: SyncConfig,
    device_id: u64,
    alias_cursor: usize,
}

impl<'a> SyncEngine<'a> {
    /// Create the engine for a device.
    pub fn new(
        dns: &'a DnsDirectory,
        store: &'a ChunkStore,
        config: SyncConfig,
        device_id: u64,
    ) -> Self {
        SyncEngine {
            dns,
            store,
            config,
            device_id,
            alias_cursor: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SyncConfig {
        &self.config
    }

    fn server_reaction(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_secs_f64(
            dist::lognormal_median(rng, self.config.server_reaction_ms, 0.4) / 1_000.0,
        )
    }

    fn client_reaction(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_secs_f64(
            dist::lognormal_median(rng, self.config.client_reaction_ms, 0.4) / 1_000.0,
        )
    }

    /// Next storage alias in this device's rotation list (Sec. 2.4).
    fn next_storage_alias(&mut self, day: u32) -> String {
        let list = self.dns.storage_aliases_for(self.device_id, day);
        let name = list[self.alias_cursor % list.len()].clone();
        self.alias_cursor += 1;
        name
    }

    /// A short TLS control exchange with the meta-data servers.
    ///
    /// `exchanges` request/response pairs of small messages; the connection
    /// is closed actively by the client shortly after (the aggressive
    /// timeout behaviour producing "several short TLS connections").
    pub fn control_flow(
        &mut self,
        via_lb: bool,
        exchanges: &[(u32, u32)],
        rng: &mut Rng,
    ) -> FlowSpec {
        let name = self.dns.meta_name(via_lb, rng);
        let mut messages = tls::handshake(&name, CERT_CN, self.server_reaction(rng));
        for &(req, resp) in exchanges {
            messages.push(Message {
                dir: Direction::Up,
                delay: self.client_reaction(rng),
                writes: vec![tls::record(req)],
            });
            messages.push(Message {
                dir: Direction::Down,
                delay: self.server_reaction(rng),
                writes: vec![tls::record(resp)],
            });
        }
        let dialogue = Dialogue::new(messages).with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(200),
        });
        FlowSpec {
            server_name: name,
            port: ServerRole::MetaData.port(),
            dialogue,
            truth: FlowTruth::Control,
        }
    }

    /// The session-start control traffic: `register_host` then `list`.
    /// Returns the flows; `list` responses scale with the amount of
    /// pending meta-data (`pending_updates`).
    pub fn session_start_flows(&mut self, pending_updates: usize, rng: &mut Rng) -> Vec<FlowSpec> {
        let list_resp = 600 + (pending_updates as u32).min(2_000) * 120;
        vec![
            self.control_flow(false, &[(420, 380)], rng), // register_host
            self.control_flow(false, &[(350, list_resp)], rng), // list
        ]
    }

    /// Build the flows of one *upload* synchronisation transaction.
    ///
    /// `chunks` are the chunk versions the client wants to commit. The
    /// meta-data side answers `need_blocks` (deduplicated against the
    /// global store); only the missing chunks are uploaded, in transactions
    /// of at most 100 chunks, each on its own storage connection. Returns
    /// the control and storage flows in order. The chunks are inserted
    /// into the store (they are on the wire; arrival is certain in-model).
    pub fn upload_transaction(
        &mut self,
        chunks: &[ChunkWork],
        day: u32,
        rng: &mut Rng,
        mut trace: Option<&mut ProtocolTrace>,
        trace_t0: SimTime,
    ) -> Vec<FlowSpec> {
        let mut flows = Vec::new();
        if chunks.is_empty() {
            return flows;
        }

        // commit_batch on the meta side; response sized by the hash list.
        let all_ids: Vec<(ChunkId, u64)> = chunks.iter().map(|c| (c.id, c.raw_bytes)).collect();
        let commit_req = 400 + 70 * chunks.len() as u32;
        if let Some(t) = trace.as_deref_mut() {
            t.record(
                trace_t0,
                Sender::Client,
                Command::CommitBatch {
                    hashes: all_ids.iter().map(|&(id, _)| id).collect(),
                },
            );
        }
        let needed_ids = self.store.need_blocks(&all_ids);
        if let Some(t) = trace.as_deref_mut() {
            t.record(
                trace_t0,
                Sender::Server,
                Command::NeedBlocks {
                    hashes: needed_ids.clone(),
                },
            );
        }
        let need_resp = 200 + 70 * needed_ids.len() as u32;
        flows.push(self.control_flow(true, &[(commit_req, need_resp)], rng));

        let needed: Vec<ChunkWork> = chunks
            .iter()
            .filter(|c| needed_ids.contains(&c.id))
            .copied()
            .collect();

        for batch in needed.chunks(Command::MAX_CHUNKS_PER_BATCH) {
            flows.push(self.store_flow(batch, day, rng, trace.as_deref_mut(), trace_t0));
            for c in batch {
                self.store.put(c.id, c.raw_bytes);
            }
        }

        // close_changeset back on the meta side.
        if let Some(t) = trace {
            t.record(trace_t0, Sender::Client, Command::CloseChangeset);
            t.record(trace_t0, Sender::Server, Command::Ok);
        }
        flows.push(self.control_flow(true, &[(260, 180)], rng));
        flows
    }

    /// One storage connection uploading a batch (≤ 100 chunks). Public so
    /// that pathological actors (the Home 2 single-chunk uploader) can be
    /// driven without the surrounding meta-data transaction.
    pub fn store_flow(
        &mut self,
        batch: &[ChunkWork],
        day: u32,
        rng: &mut Rng,
        mut trace: Option<&mut ProtocolTrace>,
        trace_t0: SimTime,
    ) -> FlowSpec {
        let name = self.next_storage_alias(day);
        let mut messages = tls::handshake(&name, CERT_CN, self.server_reaction(rng));
        let mut data_bytes = 0u64;

        let groups = self.bundle(batch);
        for group in &groups {
            let group_bytes: u64 = group.iter().map(|c| c.wire_bytes).sum();
            data_bytes += group_bytes;
            if let Some(t) = trace.as_deref_mut() {
                let ids: Vec<ChunkId> = group.iter().map(|c| c.id).collect();
                let cmd = if ids.len() == 1 {
                    Command::Store { id: ids[0] }
                } else {
                    Command::StoreBatch { ids }
                };
                t.record(trace_t0, Sender::Client, cmd);
            }
            messages.push(Message {
                dir: Direction::Up,
                delay: self.client_reaction(rng),
                writes: vec![tls::record(overhead::STORE_CLIENT + group_bytes as u32)],
            });
            if !self.config.no_storage_acks {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(trace_t0, Sender::Server, Command::Ok);
                }
                messages.push(Message {
                    dir: Direction::Down,
                    delay: self.server_reaction(rng),
                    writes: vec![Write::plain(overhead::SERVER_PER_OP)],
                });
            }
        }

        let close = if self.config.no_storage_acks {
            // The misbehaving device opens consecutive connections, killing
            // each as soon as its upload finishes.
            CloseMode::ClientRst {
                delay: SimDuration::from_millis(500),
            }
        } else {
            Dialogue::new(Vec::new()).close // default 60 s server timeout
        };
        FlowSpec {
            server_name: name,
            port: ServerRole::ClientStorage.port(),
            dialogue: Dialogue::new(messages).with_close(close),
            truth: FlowTruth::Store {
                chunks: batch.len() as u32,
                data_bytes,
                acked: !self.config.no_storage_acks,
            },
        }
    }

    /// Build the flows of one *download* synchronisation transaction
    /// (after `list` reported remote changes). Chunks are fetched in
    /// transactions of at most 100, each on its own storage connection.
    pub fn download_transaction(
        &mut self,
        chunks: &[ChunkWork],
        day: u32,
        rng: &mut Rng,
        mut trace: Option<&mut ProtocolTrace>,
        trace_t0: SimTime,
    ) -> Vec<FlowSpec> {
        let mut flows = Vec::new();
        if chunks.is_empty() {
            return flows;
        }
        // The triggering `list` exchange.
        let list_resp = 400 + 90 * chunks.len() as u32;
        if let Some(t) = trace.as_deref_mut() {
            t.record(trace_t0, Sender::Client, Command::List);
        }
        flows.push(self.control_flow(false, &[(340, list_resp)], rng));

        for batch in chunks.chunks(Command::MAX_CHUNKS_PER_BATCH) {
            flows.push(self.retrieve_flow(batch, day, rng, trace.as_deref_mut(), trace_t0));
        }
        flows
    }

    /// One storage connection downloading a batch (≤ 100 chunks).
    fn retrieve_flow(
        &mut self,
        batch: &[ChunkWork],
        day: u32,
        rng: &mut Rng,
        mut trace: Option<&mut ProtocolTrace>,
        trace_t0: SimTime,
    ) -> FlowSpec {
        let name = self.next_storage_alias(day);
        let mut messages = tls::handshake(&name, CERT_CN, self.server_reaction(rng));
        let mut data_bytes = 0u64;

        let groups = self.bundle(batch);
        for group in &groups {
            let group_bytes: u64 = group.iter().map(|c| c.wire_bytes).sum();
            data_bytes += group_bytes;
            if let Some(t) = trace.as_deref_mut() {
                let ids: Vec<ChunkId> = group.iter().map(|c| c.id).collect();
                let cmd = if ids.len() == 1 {
                    Command::Retrieve { id: ids[0] }
                } else {
                    Command::RetrieveBatch { ids }
                };
                t.record(trace_t0, Sender::Client, cmd);
            }
            // The HTTP request is written as two pushed segments
            // (Fig. 19(b): "HTTP_retrieve (2 x PSH)"), totalling the
            // 362–426 bytes of Appendix A.3.
            let total = rng.range_u64(
                overhead::RETRIEVE_CLIENT_MIN as u64,
                overhead::RETRIEVE_CLIENT_MAX as u64,
            ) as u32;
            let first = 200u32;
            messages.push(Message {
                dir: Direction::Up,
                delay: self.client_reaction(rng),
                writes: vec![Write::plain(first), Write::plain(total - first)],
            });
            if let Some(t) = trace.as_deref_mut() {
                t.record(trace_t0, Sender::Server, Command::Ok);
            }
            messages.push(Message {
                dir: Direction::Down,
                delay: self.server_reaction(rng),
                writes: vec![tls::record(overhead::SERVER_PER_OP + group_bytes as u32)],
            });
        }

        FlowSpec {
            server_name: name,
            port: ServerRole::ClientStorage.port(),
            dialogue: Dialogue::new(messages),
            truth: FlowTruth::Retrieve {
                chunks: batch.len() as u32,
                data_bytes,
            },
        }
    }

    /// Group chunks into transfer operations according to the client
    /// version: v1.2.52 sends one command per chunk; v1.4.0 packs chunks
    /// smaller than [`BUNDLE_MAX_MEMBER`] into bundles of up to
    /// [`BUNDLE_BUDGET`] bytes.
    fn bundle<'b>(&self, batch: &'b [ChunkWork]) -> Vec<Vec<&'b ChunkWork>> {
        match self.config.version {
            ClientVersion::V1_2_52 => batch.iter().map(|c| vec![c]).collect(),
            ClientVersion::V1_4_0 => {
                let mut groups: Vec<Vec<&ChunkWork>> = Vec::new();
                let mut current: Vec<&ChunkWork> = Vec::new();
                let mut current_bytes = 0u64;
                for c in batch {
                    if c.wire_bytes >= BUNDLE_MAX_MEMBER {
                        groups.push(vec![c]);
                        continue;
                    }
                    if current_bytes + c.wire_bytes > BUNDLE_BUDGET && !current.is_empty() {
                        groups.push(std::mem::take(&mut current));
                        current_bytes = 0;
                    }
                    current_bytes += c.wire_bytes;
                    current.push(c);
                }
                if !current.is_empty() {
                    groups.push(current);
                }
                groups
            }
        }
    }

    /// An exception back-trace upload (`dl-debugX.dropbox.com`, Sec. 2.3)
    /// — rare crash reports shipped to Amazon-side collectors.
    pub fn backtrace_flow(&mut self, rng: &mut Rng) -> FlowSpec {
        let name = format!("dl-debug{}.dropbox.com", rng.range_u64(1, 4));
        let mut messages = tls::handshake(&name, CERT_CN, self.server_reaction(rng));
        messages.push(Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(100),
            writes: vec![tls::record(rng.range_u64(2_000, 40_000) as u32)],
        });
        messages.push(Message {
            dir: Direction::Down,
            delay: self.server_reaction(rng),
            writes: vec![tls::record(150)],
        });
        FlowSpec {
            server_name: name,
            port: 443,
            dialogue: Dialogue::new(messages).with_close(CloseMode::ClientFin {
                delay: SimDuration::from_millis(100),
            }),
            truth: FlowTruth::SystemLog,
        }
    }

    /// An event-log report flow (`d.dropbox.com`, Sec. 2.3) — sporadic,
    /// small, and excluded from the paper's deeper analysis.
    pub fn event_log_flow(&mut self, rng: &mut Rng) -> FlowSpec {
        let name = "d.dropbox.com".to_owned();
        let mut messages = tls::handshake(&name, CERT_CN, self.server_reaction(rng));
        messages.push(Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(50),
            writes: vec![tls::record(rng.range_u64(300, 2_000) as u32)],
        });
        messages.push(Message {
            dir: Direction::Down,
            delay: self.server_reaction(rng),
            writes: vec![tls::record(120)],
        });
        FlowSpec {
            server_name: name,
            port: 443,
            dialogue: Dialogue::new(messages).with_close(CloseMode::ClientFin {
                delay: SimDuration::from_millis(100),
            }),
            truth: FlowTruth::SystemLog,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ChunkId;

    fn chunkw(id: u64, bytes: u64) -> ChunkWork {
        ChunkWork {
            id: ChunkId(id),
            wire_bytes: bytes,
            raw_bytes: bytes,
        }
    }

    fn engine_with<'a>(
        dns: &'a DnsDirectory,
        store: &'a ChunkStore,
        version: ClientVersion,
    ) -> SyncEngine<'a> {
        SyncEngine::new(
            dns,
            store,
            SyncConfig {
                version,
                ..SyncConfig::default()
            },
            42,
        )
    }

    #[test]
    fn upload_splits_into_100_chunk_batches() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let chunks: Vec<ChunkWork> = (0..250).map(|i| chunkw(i, 10_000)).collect();
        let mut rng = Rng::new(1);
        let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let storage: Vec<&FlowSpec> = flows
            .iter()
            .filter(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .collect();
        assert_eq!(storage.len(), 3, "250 chunks -> 3 batches");
        let counts: Vec<u32> = storage.iter().filter_map(|f| f.truth.chunks()).collect();
        assert_eq!(counts, vec![100, 100, 50]);
        // Control flows bracket the storage flows.
        assert!(matches!(flows.first().unwrap().truth, FlowTruth::Control));
        assert!(matches!(flows.last().unwrap().truth, FlowTruth::Control));
    }

    #[test]
    fn dedup_suppresses_known_chunks() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let chunks: Vec<ChunkWork> = (0..10).map(|i| chunkw(i, 5_000)).collect();
        let mut rng = Rng::new(2);
        let mut eng1 = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let f1 = eng1.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        assert!(f1
            .iter()
            .any(|f| matches!(f.truth, FlowTruth::Store { .. })));
        // Second device uploads the same content: fully deduplicated, no
        // storage flows at all.
        let mut eng2 = SyncEngine::new(&dns, &store, SyncConfig::default(), 43);
        let f2 = eng2.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        assert!(f2.iter().all(|f| matches!(f.truth, FlowTruth::Control)));
    }

    #[test]
    fn v1_sends_one_ok_per_chunk() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let chunks: Vec<ChunkWork> = (0..5).map(|i| chunkw(i, 20_000)).collect();
        let mut rng = Rng::new(3);
        let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let store_flow = flows
            .iter()
            .find(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .unwrap();
        // Down messages: 2 TLS handshake + 5 OKs.
        let down = store_flow
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .count();
        assert_eq!(down, 7);
        // Each OK is exactly the 309-byte per-op overhead.
        let oks: Vec<u32> = store_flow
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .skip(2)
            .map(|m| m.size())
            .collect();
        assert!(oks.iter().all(|&s| s == overhead::SERVER_PER_OP));
    }

    #[test]
    fn v14_bundles_small_chunks() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_4_0);
        // 40 chunks of 100 kB -> bundles of ~40 fit 4 MB -> 1 group.
        let chunks: Vec<ChunkWork> = (0..40).map(|i| chunkw(i, 100_000)).collect();
        let mut rng = Rng::new(4);
        let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let store_flow = flows
            .iter()
            .find(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .unwrap();
        let down = store_flow
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .count();
        // 2 handshake + 1 single bundle OK.
        assert_eq!(down, 3);
    }

    #[test]
    fn v14_keeps_large_chunks_single() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let eng = engine_with(&dns, &store, ClientVersion::V1_4_0);
        let big = [
            chunkw(1, 3_000_000),
            chunkw(2, 3_500_000),
            chunkw(3, 50_000),
        ];
        let refs: Vec<&ChunkWork> = big.iter().collect();
        let groups = eng.bundle(&big);
        assert_eq!(groups.len(), 3, "two large singles + one small group");
        assert_eq!(groups[0].len(), 1);
        assert_eq!(groups[2], vec![refs[2]]);
    }

    #[test]
    fn retrieve_requests_are_two_pushed_writes() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let chunks = [chunkw(1, 10_000), chunkw(2, 12_000)];
        let mut rng = Rng::new(5);
        let flows = eng.download_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let rf = flows
            .iter()
            .find(|f| matches!(f.truth, FlowTruth::Retrieve { .. }))
            .unwrap();
        let up_requests: Vec<&Message> = rf
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Up)
            .skip(2) // TLS handshake writes
            .collect();
        assert_eq!(up_requests.len(), 2);
        for req in up_requests {
            assert_eq!(req.writes.len(), 2, "HTTP_retrieve is 2 x PSH");
            let total = req.size();
            assert!(
                (overhead::RETRIEVE_CLIENT_MIN..=overhead::RETRIEVE_CLIENT_MAX).contains(&total)
            );
        }
    }

    #[test]
    fn storage_aliases_rotate_per_flow() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let mut rng = Rng::new(6);
        let chunks: Vec<ChunkWork> = (0..250).map(|i| chunkw(i, 1_000)).collect();
        let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let names: Vec<&str> = flows
            .iter()
            .filter(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .map(|f| f.server_name.as_str())
            .collect();
        assert_eq!(names.len(), 3);
        assert!(names[0] != names[1] || names[1] != names[2]);
        assert!(names.iter().all(|n| n.starts_with("dl-client")));
    }

    #[test]
    fn misbehaving_device_has_no_acks_and_rst_close() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = SyncEngine::new(
            &dns,
            &store,
            SyncConfig {
                no_storage_acks: true,
                ..SyncConfig::default()
            },
            4096,
        );
        let mut rng = Rng::new(7);
        let chunks = [chunkw(1, 4 * 1024 * 1024)];
        let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let sf = flows
            .iter()
            .find(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .unwrap();
        let down = sf
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .count();
        assert_eq!(down, 2, "handshake only, no OKs");
        assert!(matches!(sf.dialogue.close, CloseMode::ClientRst { .. }));
        match sf.truth {
            FlowTruth::Store { acked, .. } => assert!(!acked),
            _ => unreachable!(),
        }
    }

    #[test]
    fn protocol_trace_matches_figure_1() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let mut rng = Rng::new(8);
        let mut trace = ProtocolTrace::new();
        let chunks = [chunkw(900, 5_000), chunkw(901, 6_000)];
        eng.upload_transaction(&chunks, 0, &mut rng, Some(&mut trace), SimTime::EPOCH);
        let ladder = trace.ladder();
        assert_eq!(
            ladder,
            vec![
                "commit_batch",
                "need_blocks",
                "store",
                "ok",
                "store",
                "ok",
                "close_changeset",
                "ok"
            ]
        );
    }
}

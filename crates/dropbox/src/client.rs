//! The Dropbox client sync engine.
//!
//! Given chunk-level work (uploads after local changes, downloads after
//! remote changes), the engine produces the TCP [`FlowSpec`]s a real client
//! would generate, for both protocol generations:
//!
//! * **v1.2.52** (the version distributed during the paper's capture):
//!   every chunk is a separate `store`/`retrieve` operation acknowledged
//!   sequentially — the client waits one RTT plus the server reaction time
//!   between chunks (Sec. 4.4.2),
//! * **v1.4.0** (the Jun/Jul re-capture): `store_batch`/`retrieve_batch`
//!   bundle small chunks up to the 4 MB bundle budget; single-chunk
//!   commands remain in use for large chunks, and batches are still issued
//!   sequentially (Sec. 4.5.1).
//!
//! Transactions are limited to [`Command::MAX_CHUNKS_PER_BATCH`] chunks —
//! the run-time parameter that shapes Fig. 7/8's 100-chunk / ~400 MB flow
//! caps. Meta-data exchanges (`commit_batch` → `need_blocks`,
//! `close_changeset`) ride on separate short TLS connections to the
//! meta-data servers, reflecting their aggressive connection timeouts
//! (Sec. 2.3.2).

use crate::content::ChunkId;
use crate::protocol::{Command, ProtocolTrace, Sender};
use crate::spec::{self, Naming, ProviderSpec};
use crate::storage::ChunkStore;
use crate::{FlowSpec, FlowTruth};
use dnssim::{DnsDirectory, ServerRole};
use simcore::faults::{FaultPlan, FlowFaults};
use simcore::{dist, Rng, SimDuration, SimTime};
use tcpmodel::tls;
use tcpmodel::{CloseMode, Dialogue, Direction, Message, Write};

/// Client software generation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientVersion {
    /// Stable version during the Mar–May 2012 capture.
    V1_2_52,
    /// Bundling version of the Jun/Jul 2012 re-capture.
    V1_4_0,
}

/// Per-operation wire overheads measured in the paper's testbed
/// (Appendix A.2/A.3).
pub mod overhead {
    /// Client-side overhead of one store operation.
    pub const STORE_CLIENT: u32 = 634;
    /// Server-side overhead of one storage operation (the `ok`).
    pub const SERVER_PER_OP: u32 = 309;
    /// Minimum client-side overhead of one retrieve request.
    pub const RETRIEVE_CLIENT_MIN: u32 = 362;
    /// Maximum client-side overhead of one retrieve request.
    pub const RETRIEVE_CLIENT_MAX: u32 = 426;
}

/// Certificate common name of every Dropbox service (Sec. 3.1).
pub const CERT_CN: &str = "*.dropbox.com";

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SyncConfig {
    /// Protocol generation.
    pub version: ClientVersion,
    /// Median server reaction time between storage operations.
    pub server_reaction_ms: f64,
    /// Median client reaction time between storage operations.
    pub client_reaction_ms: f64,
    /// The Home 2 "misbehaving device": submits single 4 MB chunks on
    /// consecutive connections and its flows lack acknowledgment messages
    /// (Secs. 4.3.1, A.3).
    pub no_storage_acks: bool,
    /// Provider protocol specification the engine is parameterised by
    /// (chunking, bundling, dedup/delta, naming). Defaults to the measured
    /// Dropbox deployment.
    pub spec: &'static ProviderSpec,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            version: ClientVersion::V1_2_52,
            server_reaction_ms: 120.0,
            client_reaction_ms: 60.0,
            no_storage_acks: false,
            spec: &spec::DROPBOX,
        }
    }
}

/// A chunk to transfer: identity plus compressed on-wire size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkWork {
    /// Chunk identity.
    pub id: ChunkId,
    /// Compressed (on-wire) size of the chunk data or delta.
    pub wire_bytes: u64,
    /// Raw size (for the dedup store accounting).
    pub raw_bytes: u64,
}

/// Exponential-backoff retry policy of the sync client.
///
/// Backoff for attempt `n` (0-based) is `base · factor^n`, capped at
/// `max_backoff`, with deterministic jitter drawn from the caller's RNG
/// (uniform in `[0.5, 1.0)` of the nominal delay) so synchronized clients
/// do not retry in lockstep. After `max_attempts` consecutive failures the
/// client stops giving up: the next attempt is forced to succeed, which
/// bounds recovery time and guarantees every transaction eventually
/// completes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Backoff before the second attempt.
    pub base: SimDuration,
    /// Multiplicative growth per failed attempt.
    pub factor: f64,
    /// Upper bound on a single backoff.
    pub max_backoff: SimDuration,
    /// Failures tolerated before a retry is forced to succeed.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_secs(2),
            factor: 2.0,
            max_backoff: SimDuration::from_secs(300),
            max_attempts: 6,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (0-based), with jitter from `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut Rng) -> SimDuration {
        let nominal = self.base.as_secs_f64() * self.factor.powi(attempt.min(30) as i32);
        let capped = nominal.min(self.max_backoff.as_secs_f64());
        SimDuration::from_secs_f64(capped * (0.5 + 0.5 * rng.f64()))
    }
}

/// Flows produced by a fault-aware transaction, each with the offset from
/// the transaction start at which it should be played, plus recovery
/// counters for the run's fault statistics.
#[derive(Debug, Default)]
pub struct RecoveryOutcome {
    /// `(offset, flow)` pairs in play order; offsets accumulate backoffs.
    pub flows: Vec<(SimDuration, FlowSpec)>,
    /// Retry attempts performed (outage waits and transfer retries).
    pub retries: u32,
    /// Storage flows cut mid-transfer by an injected reset.
    pub aborted_flows: u32,
}

/// The sync engine of one device.
pub struct SyncEngine<'a> {
    dns: &'a DnsDirectory,
    store: &'a ChunkStore,
    config: SyncConfig,
    device_id: u64,
    alias_cursor: usize,
}

impl<'a> SyncEngine<'a> {
    /// Create the engine for a device.
    pub fn new(
        dns: &'a DnsDirectory,
        store: &'a ChunkStore,
        config: SyncConfig,
        device_id: u64,
    ) -> Self {
        SyncEngine {
            dns,
            store,
            config,
            device_id,
            alias_cursor: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SyncConfig {
        &self.config
    }

    /// Server answer to `commit_batch`: deduplicating providers report
    /// only the chunks the store is missing; the rest demand everything.
    fn need_blocks(&self, all_ids: &[(ChunkId, u64)]) -> Vec<ChunkId> {
        if self.config.spec.dedup {
            self.store.need_blocks(all_ids)
        } else {
            all_ids.iter().map(|&(id, _)| id).collect()
        }
    }

    fn server_reaction(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_secs_f64(
            dist::lognormal_median(rng, self.config.server_reaction_ms, 0.4) / 1_000.0,
        )
    }

    fn client_reaction(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_secs_f64(
            dist::lognormal_median(rng, self.config.client_reaction_ms, 0.4) / 1_000.0,
        )
    }

    /// Next storage front. Dropbox rotates the per-device alias list of
    /// Sec. 2.4; flat-named providers rotate their `storeN` pool.
    fn next_storage_alias(&mut self, day: u32) -> String {
        let name = match self.config.spec.naming {
            Naming::DropboxDns => {
                let list = self.dns.storage_aliases_for(self.device_id, day);
                list[self.alias_cursor % list.len()].clone()
            }
            Naming::Flat { .. } => self.config.spec.storage_name(self.alias_cursor),
        };
        self.alias_cursor += 1;
        name
    }

    /// A short TLS control exchange with the meta-data servers.
    ///
    /// `exchanges` request/response pairs of small messages; the connection
    /// is closed actively by the client shortly after (the aggressive
    /// timeout behaviour producing "several short TLS connections").
    pub fn control_flow(
        &mut self,
        via_lb: bool,
        exchanges: &[(u32, u32)],
        rng: &mut Rng,
    ) -> FlowSpec {
        let name = match self.config.spec.naming {
            Naming::DropboxDns => self.dns.meta_name(via_lb, rng),
            Naming::Flat { .. } => self.config.spec.control_name(),
        };
        let mut messages =
            tls::handshake(&name, self.config.spec.cert_cn(), self.server_reaction(rng));
        for &(req, resp) in exchanges {
            messages.push(Message {
                dir: Direction::Up,
                delay: self.client_reaction(rng),
                writes: vec![tls::record(req)],
            });
            messages.push(Message {
                dir: Direction::Down,
                delay: self.server_reaction(rng),
                writes: vec![tls::record(resp)],
            });
        }
        let dialogue = Dialogue::new(messages).with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(200),
        });
        FlowSpec {
            server_name: name,
            port: ServerRole::MetaData.port(),
            dialogue,
            truth: FlowTruth::Control,
            faults: None,
        }
    }

    /// The session-start control traffic: `register_host` then `list`.
    /// Returns the flows; `list` responses scale with the amount of
    /// pending meta-data (`pending_updates`).
    pub fn session_start_flows(&mut self, pending_updates: usize, rng: &mut Rng) -> Vec<FlowSpec> {
        let list_resp = 600 + (pending_updates as u32).min(2_000) * 120;
        vec![
            self.control_flow(false, &[(420, 380)], rng), // register_host
            self.control_flow(false, &[(350, list_resp)], rng), // list
        ]
    }

    /// Build the flows of one *upload* synchronisation transaction.
    ///
    /// `chunks` are the chunk versions the client wants to commit. The
    /// meta-data side answers `need_blocks` (deduplicated against the
    /// global store); only the missing chunks are uploaded, in transactions
    /// of at most 100 chunks, each on its own storage connection. Returns
    /// the control and storage flows in order. The chunks are inserted
    /// into the store (they are on the wire; arrival is certain in-model).
    pub fn upload_transaction(
        &mut self,
        chunks: &[ChunkWork],
        day: u32,
        rng: &mut Rng,
        mut trace: Option<&mut ProtocolTrace>,
        trace_t0: SimTime,
    ) -> Vec<FlowSpec> {
        let mut flows = Vec::new();
        if chunks.is_empty() {
            return flows;
        }

        // commit_batch on the meta side; response sized by the hash list.
        let all_ids: Vec<(ChunkId, u64)> = chunks.iter().map(|c| (c.id, c.raw_bytes)).collect();
        let commit_req = 400 + 70 * chunks.len() as u32;
        if let Some(t) = trace.as_deref_mut() {
            t.record(
                trace_t0,
                Sender::Client,
                Command::CommitBatch {
                    hashes: all_ids.iter().map(|&(id, _)| id).collect(),
                },
            );
        }
        let needed_ids = self.need_blocks(&all_ids);
        if let Some(t) = trace.as_deref_mut() {
            t.record(
                trace_t0,
                Sender::Server,
                Command::NeedBlocks {
                    hashes: needed_ids.clone(),
                },
            );
        }
        let need_resp = 200 + 70 * needed_ids.len() as u32;
        flows.push(self.control_flow(true, &[(commit_req, need_resp)], rng));

        let needed: Vec<ChunkWork> = chunks
            .iter()
            .filter(|c| needed_ids.contains(&c.id))
            .copied()
            .collect();

        for batch in needed.chunks(Command::MAX_CHUNKS_PER_BATCH) {
            flows.push(self.store_flow(batch, day, rng, trace.as_deref_mut(), trace_t0));
            for c in batch {
                self.store.put(c.id, c.raw_bytes);
            }
        }

        // close_changeset back on the meta side.
        if let Some(t) = trace {
            t.record(trace_t0, Sender::Client, Command::CloseChangeset);
            t.record(trace_t0, Sender::Server, Command::Ok);
        }
        flows.push(self.control_flow(true, &[(260, 180)], rng));
        flows
    }

    /// One storage connection uploading a batch (≤ 100 chunks). Public so
    /// that pathological actors (the Home 2 single-chunk uploader) can be
    /// driven without the surrounding meta-data transaction.
    pub fn store_flow(
        &mut self,
        batch: &[ChunkWork],
        day: u32,
        rng: &mut Rng,
        mut trace: Option<&mut ProtocolTrace>,
        trace_t0: SimTime,
    ) -> FlowSpec {
        let name = self.next_storage_alias(day);
        let mut messages =
            tls::handshake(&name, self.config.spec.cert_cn(), self.server_reaction(rng));
        let mut data_bytes = 0u64;

        let groups = self.bundle(batch);
        for group in &groups {
            let group_bytes: u64 = group.iter().map(|c| c.wire_bytes).sum();
            data_bytes += group_bytes;
            if let Some(t) = trace.as_deref_mut() {
                let ids: Vec<ChunkId> = group.iter().map(|c| c.id).collect();
                let cmd = if ids.len() == 1 {
                    Command::Store { id: ids[0] }
                } else {
                    Command::StoreBatch { ids }
                };
                t.record(trace_t0, Sender::Client, cmd);
            }
            messages.push(Message {
                dir: Direction::Up,
                delay: self.client_reaction(rng),
                writes: vec![tls::record(overhead::STORE_CLIENT + group_bytes as u32)],
            });
            if !self.config.no_storage_acks {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(trace_t0, Sender::Server, Command::Ok);
                }
                messages.push(Message {
                    dir: Direction::Down,
                    delay: self.server_reaction(rng),
                    writes: vec![Write::plain(overhead::SERVER_PER_OP)],
                });
            }
        }

        let close = if self.config.no_storage_acks {
            // The misbehaving device opens consecutive connections, killing
            // each as soon as its upload finishes.
            CloseMode::ClientRst {
                delay: SimDuration::from_millis(500),
            }
        } else {
            Dialogue::new(Vec::new()).close // default 60 s server timeout
        };
        FlowSpec {
            server_name: name,
            port: ServerRole::ClientStorage.port(),
            dialogue: Dialogue::new(messages).with_close(close),
            truth: FlowTruth::Store {
                chunks: batch.len() as u32,
                data_bytes,
                acked: !self.config.no_storage_acks,
            },
            faults: None,
        }
    }

    /// Fault-aware counterpart of [`SyncEngine::upload_transaction`]: the
    /// client backs off while the servers are inside an outage window,
    /// storage connections may be cut mid-transfer by the plan's reset
    /// probability, and after every cut the client *resumes*: chunks whose
    /// store operation was fully acknowledged before the reset are
    /// committed and only the uncommitted remainder is re-offered on a
    /// fresh connection. Flow offsets accumulate the backoff delays.
    pub fn upload_transaction_faulty(
        &mut self,
        chunks: &[ChunkWork],
        day: u32,
        at: SimTime,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        rng: &mut Rng,
    ) -> RecoveryOutcome {
        let mut out = RecoveryOutcome::default();
        if chunks.is_empty() {
            return out;
        }
        let mut offset = SimDuration::ZERO;
        let commit_req = 400 + 70 * chunks.len() as u32;

        // Outage windows: each refused commit is a short error exchange
        // (the 5xx answer), then the client backs off and retries.
        let mut attempt = 0u32;
        while attempt < policy.max_attempts && !plan.server_available(at + offset) {
            out.flows
                .push((offset, self.control_flow(true, &[(commit_req, 120)], rng)));
            out.retries += 1;
            offset += policy.backoff(attempt, rng);
            attempt += 1;
        }

        // commit_batch → need_blocks, deduplicated against the store.
        let all_ids: Vec<(ChunkId, u64)> = chunks.iter().map(|c| (c.id, c.raw_bytes)).collect();
        let needed_ids = self.need_blocks(&all_ids);
        let need_resp = 200 + 70 * needed_ids.len() as u32;
        out.flows.push((
            offset,
            self.control_flow(true, &[(commit_req, need_resp)], rng),
        ));

        let mut remaining: Vec<ChunkWork> = chunks
            .iter()
            .filter(|c| needed_ids.contains(&c.id))
            .copied()
            .collect();

        let mut attempt = 0u32;
        while !remaining.is_empty() {
            let batch_len = remaining.len().min(Command::MAX_CHUNKS_PER_BATCH);
            let batch: Vec<ChunkWork> = remaining[..batch_len].to_vec();
            let abort =
                attempt < policy.max_attempts && plan.reset_p > 0.0 && rng.chance(plan.reset_p);
            if abort {
                let (spec, committed) = self.store_flow_aborted(&batch, day, rng);
                for c in &committed {
                    self.store.put(c.id, c.raw_bytes);
                }
                remaining.retain(|c| !committed.iter().any(|k| k.id == c.id));
                out.flows.push((offset, spec));
                out.aborted_flows += 1;
                out.retries += 1;
                offset += policy.backoff(attempt, rng);
                attempt += 1;
                // Resume: re-offer only the uncommitted chunks. The server
                // answer sizes like a need_blocks over the remainder.
                let reoffer_resp = 200 + 70 * remaining.len() as u32;
                out.flows
                    .push((offset, self.control_flow(true, &[(260, reoffer_resp)], rng)));
            } else {
                let spec = self.store_flow(&batch, day, rng, None, SimTime::EPOCH);
                for c in &batch {
                    self.store.put(c.id, c.raw_bytes);
                }
                remaining.drain(..batch_len);
                out.flows.push((offset, spec));
            }
        }

        // close_changeset back on the meta side.
        out.flows
            .push((offset, self.control_flow(true, &[(260, 180)], rng)));
        out
    }

    /// A store connection that an injected fault cuts mid-transfer.
    ///
    /// The reset lands inside a uniformly-chosen transfer group: every
    /// group before it is fully written *and acknowledged* (those chunks
    /// are committed — returned for the caller to `put`), the chosen
    /// group's upload is truncated partway through its write, and nothing
    /// after it reaches the wire.
    fn store_flow_aborted(
        &mut self,
        batch: &[ChunkWork],
        day: u32,
        rng: &mut Rng,
    ) -> (FlowSpec, Vec<ChunkWork>) {
        let mut spec = self.store_flow(batch, day, rng, None, SimTime::EPOCH);

        // Reconstruct the grouping to find per-group write sizes. The
        // dialogue is: 4 handshake messages, then per group one Up write
        // (+ one Down OK unless acks are disabled).
        let groups = self.bundle(batch);
        let cut_group = rng.below(groups.len() as u64) as usize;
        let committed: Vec<ChunkWork> = groups[..cut_group]
            .iter()
            .flat_map(|g| g.iter().map(|&&c| c))
            .collect();

        let msgs_per_group = if self.config.no_storage_acks { 1 } else { 2 };
        let preamble: u64 = spec
            .dialogue
            .messages
            .iter()
            .take(4 + cut_group * msgs_per_group)
            .map(|m| m.size() as u64)
            .sum();
        let cut_write = spec.dialogue.messages[4 + cut_group * msgs_per_group].size() as u64;
        let frac = 0.15 + 0.7 * rng.f64();
        let threshold = (preamble + (cut_write as f64 * frac) as u64).max(1);

        spec.faults = Some(FlowFaults {
            reset_after_bytes: Some(threshold),
            ..FlowFaults::default()
        });
        // The fault injects the RST; no orderly close ever happens.
        spec.dialogue.close = CloseMode::LeftOpen;
        let data_bytes: u64 = committed.iter().map(|c| c.wire_bytes).sum();
        spec.truth = FlowTruth::Store {
            chunks: committed.len() as u32,
            data_bytes,
            acked: !self.config.no_storage_acks,
        };
        (spec, committed)
    }

    /// Fault-aware counterpart of [`SyncEngine::download_transaction`]:
    /// retrieve connections may be cut mid-transfer, in which case the
    /// whole batch is re-fetched after a backoff (retrieves are
    /// idempotent — nothing is committed by a truncated download).
    pub fn download_transaction_faulty(
        &mut self,
        chunks: &[ChunkWork],
        day: u32,
        at: SimTime,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        rng: &mut Rng,
    ) -> RecoveryOutcome {
        let mut out = RecoveryOutcome::default();
        if chunks.is_empty() {
            return out;
        }
        let mut offset = SimDuration::ZERO;
        let list_resp = 400 + 90 * chunks.len() as u32;

        let mut attempt = 0u32;
        while attempt < policy.max_attempts && !plan.server_available(at + offset) {
            out.flows
                .push((offset, self.control_flow(false, &[(340, 120)], rng)));
            out.retries += 1;
            offset += policy.backoff(attempt, rng);
            attempt += 1;
        }
        out.flows
            .push((offset, self.control_flow(false, &[(340, list_resp)], rng)));

        for batch in chunks.chunks(Command::MAX_CHUNKS_PER_BATCH) {
            let mut attempt = 0u32;
            while attempt < policy.max_attempts && plan.reset_p > 0.0 && rng.chance(plan.reset_p) {
                let mut spec = self.retrieve_flow(batch, day, rng, None, SimTime::EPOCH);
                let total: u64 = spec.dialogue.messages.iter().map(|m| m.size() as u64).sum();
                let frac = 0.2 + 0.6 * rng.f64();
                spec.faults = Some(FlowFaults {
                    reset_after_bytes: Some(((total as f64 * frac) as u64).max(1)),
                    ..FlowFaults::default()
                });
                spec.dialogue.close = CloseMode::LeftOpen;
                out.flows.push((offset, spec));
                out.aborted_flows += 1;
                out.retries += 1;
                offset += policy.backoff(attempt, rng);
                attempt += 1;
            }
            out.flows.push((
                offset,
                self.retrieve_flow(batch, day, rng, None, SimTime::EPOCH),
            ));
        }
        out
    }

    /// Build the flows of one *download* synchronisation transaction
    /// (after `list` reported remote changes). Chunks are fetched in
    /// transactions of at most 100, each on its own storage connection.
    pub fn download_transaction(
        &mut self,
        chunks: &[ChunkWork],
        day: u32,
        rng: &mut Rng,
        mut trace: Option<&mut ProtocolTrace>,
        trace_t0: SimTime,
    ) -> Vec<FlowSpec> {
        let mut flows = Vec::new();
        if chunks.is_empty() {
            return flows;
        }
        // The triggering `list` exchange.
        let list_resp = 400 + 90 * chunks.len() as u32;
        if let Some(t) = trace.as_deref_mut() {
            t.record(trace_t0, Sender::Client, Command::List);
        }
        flows.push(self.control_flow(false, &[(340, list_resp)], rng));

        for batch in chunks.chunks(Command::MAX_CHUNKS_PER_BATCH) {
            flows.push(self.retrieve_flow(batch, day, rng, trace.as_deref_mut(), trace_t0));
        }
        flows
    }

    /// One storage connection downloading a batch (≤ 100 chunks).
    fn retrieve_flow(
        &mut self,
        batch: &[ChunkWork],
        day: u32,
        rng: &mut Rng,
        mut trace: Option<&mut ProtocolTrace>,
        trace_t0: SimTime,
    ) -> FlowSpec {
        let name = self.next_storage_alias(day);
        let mut messages =
            tls::handshake(&name, self.config.spec.cert_cn(), self.server_reaction(rng));
        let mut data_bytes = 0u64;

        let groups = self.bundle(batch);
        for group in &groups {
            let group_bytes: u64 = group.iter().map(|c| c.wire_bytes).sum();
            data_bytes += group_bytes;
            if let Some(t) = trace.as_deref_mut() {
                let ids: Vec<ChunkId> = group.iter().map(|c| c.id).collect();
                let cmd = if ids.len() == 1 {
                    Command::Retrieve { id: ids[0] }
                } else {
                    Command::RetrieveBatch { ids }
                };
                t.record(trace_t0, Sender::Client, cmd);
            }
            // The HTTP request is written as two pushed segments
            // (Fig. 19(b): "HTTP_retrieve (2 x PSH)"), totalling the
            // 362–426 bytes of Appendix A.3.
            let total = rng.range_u64(
                overhead::RETRIEVE_CLIENT_MIN as u64,
                overhead::RETRIEVE_CLIENT_MAX as u64,
            ) as u32;
            let first = 200u32;
            messages.push(Message {
                dir: Direction::Up,
                delay: self.client_reaction(rng),
                writes: vec![Write::plain(first), Write::plain(total - first)],
            });
            if let Some(t) = trace.as_deref_mut() {
                t.record(trace_t0, Sender::Server, Command::Ok);
            }
            messages.push(Message {
                dir: Direction::Down,
                delay: self.server_reaction(rng),
                writes: vec![tls::record(overhead::SERVER_PER_OP + group_bytes as u32)],
            });
        }

        FlowSpec {
            server_name: name,
            port: ServerRole::ClientStorage.port(),
            dialogue: Dialogue::new(messages),
            truth: FlowTruth::Retrieve {
                chunks: batch.len() as u32,
                data_bytes,
            },
            faults: None,
        }
    }

    /// Group chunks into transfer operations according to the provider
    /// spec and client version: without bundling every chunk is its own
    /// command; with bundling, chunks smaller than the spec's
    /// `max_member` are packed into bundles of up to `budget` bytes
    /// (Dropbox enables this from v1.4.0, Sec. 4.5.1).
    fn bundle<'b>(&self, batch: &'b [ChunkWork]) -> Vec<Vec<&'b ChunkWork>> {
        match self.config.spec.bundle_params(self.config.version) {
            None => batch.iter().map(|c| vec![c]).collect(),
            Some(b) => {
                let mut groups: Vec<Vec<&ChunkWork>> = Vec::new();
                let mut current: Vec<&ChunkWork> = Vec::new();
                let mut current_bytes = 0u64;
                for c in batch {
                    if c.wire_bytes >= b.max_member {
                        groups.push(vec![c]);
                        continue;
                    }
                    if current_bytes + c.wire_bytes > b.budget && !current.is_empty() {
                        groups.push(std::mem::take(&mut current));
                        current_bytes = 0;
                    }
                    current_bytes += c.wire_bytes;
                    current.push(c);
                }
                if !current.is_empty() {
                    groups.push(current);
                }
                groups
            }
        }
    }

    /// An exception back-trace upload (`dl-debugX.dropbox.com`, Sec. 2.3)
    /// — rare crash reports shipped to Amazon-side collectors.
    pub fn backtrace_flow(&mut self, rng: &mut Rng) -> FlowSpec {
        let name = format!("dl-debug{}.dropbox.com", rng.range_u64(1, 4));
        let mut messages =
            tls::handshake(&name, self.config.spec.cert_cn(), self.server_reaction(rng));
        messages.push(Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(100),
            writes: vec![tls::record(rng.range_u64(2_000, 40_000) as u32)],
        });
        messages.push(Message {
            dir: Direction::Down,
            delay: self.server_reaction(rng),
            writes: vec![tls::record(150)],
        });
        FlowSpec {
            server_name: name,
            port: 443,
            dialogue: Dialogue::new(messages).with_close(CloseMode::ClientFin {
                delay: SimDuration::from_millis(100),
            }),
            truth: FlowTruth::SystemLog,
            faults: None,
        }
    }

    /// An event-log report flow (`d.dropbox.com`, Sec. 2.3) — sporadic,
    /// small, and excluded from the paper's deeper analysis.
    pub fn event_log_flow(&mut self, rng: &mut Rng) -> FlowSpec {
        let name = "d.dropbox.com".to_owned();
        let mut messages =
            tls::handshake(&name, self.config.spec.cert_cn(), self.server_reaction(rng));
        messages.push(Message {
            dir: Direction::Up,
            delay: SimDuration::from_millis(50),
            writes: vec![tls::record(rng.range_u64(300, 2_000) as u32)],
        });
        messages.push(Message {
            dir: Direction::Down,
            delay: self.server_reaction(rng),
            writes: vec![tls::record(120)],
        });
        FlowSpec {
            server_name: name,
            port: 443,
            dialogue: Dialogue::new(messages).with_close(CloseMode::ClientFin {
                delay: SimDuration::from_millis(100),
            }),
            truth: FlowTruth::SystemLog,
            faults: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ChunkId;

    fn chunkw(id: u64, bytes: u64) -> ChunkWork {
        ChunkWork {
            id: ChunkId(id),
            wire_bytes: bytes,
            raw_bytes: bytes,
        }
    }

    fn engine_with<'a>(
        dns: &'a DnsDirectory,
        store: &'a ChunkStore,
        version: ClientVersion,
    ) -> SyncEngine<'a> {
        SyncEngine::new(
            dns,
            store,
            SyncConfig {
                version,
                ..SyncConfig::default()
            },
            42,
        )
    }

    #[test]
    fn upload_splits_into_100_chunk_batches() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let chunks: Vec<ChunkWork> = (0..250).map(|i| chunkw(i, 10_000)).collect();
        let mut rng = Rng::new(1);
        let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let storage: Vec<&FlowSpec> = flows
            .iter()
            .filter(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .collect();
        assert_eq!(storage.len(), 3, "250 chunks -> 3 batches");
        let counts: Vec<u32> = storage.iter().filter_map(|f| f.truth.chunks()).collect();
        assert_eq!(counts, vec![100, 100, 50]);
        // Control flows bracket the storage flows.
        assert!(matches!(flows.first().unwrap().truth, FlowTruth::Control));
        assert!(matches!(flows.last().unwrap().truth, FlowTruth::Control));
    }

    #[test]
    fn dedup_suppresses_known_chunks() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let chunks: Vec<ChunkWork> = (0..10).map(|i| chunkw(i, 5_000)).collect();
        let mut rng = Rng::new(2);
        let mut eng1 = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let f1 = eng1.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        assert!(f1
            .iter()
            .any(|f| matches!(f.truth, FlowTruth::Store { .. })));
        // Second device uploads the same content: fully deduplicated, no
        // storage flows at all.
        let mut eng2 = SyncEngine::new(&dns, &store, SyncConfig::default(), 43);
        let f2 = eng2.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        assert!(f2.iter().all(|f| matches!(f.truth, FlowTruth::Control)));
    }

    #[test]
    fn no_dedup_spec_reuploads_duplicated_content() {
        // Same duplicated-content scenario as above, but through a spec
        // without dedup: the second device must put every chunk back on
        // the wire, strictly more upload bytes than the deduplicating
        // provider's zero.
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let chunks: Vec<ChunkWork> = (0..10).map(|i| chunkw(i, 5_000)).collect();
        let mut rng = Rng::new(2);
        let config = SyncConfig {
            spec: &spec::SKYDRIVE_LIKE,
            ..SyncConfig::default()
        };
        let mut eng1 = SyncEngine::new(&dns, &store, config.clone(), 42);
        eng1.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let mut eng2 = SyncEngine::new(&dns, &store, config, 43);
        let f2 = eng2.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let storage_up: u64 = f2
            .iter()
            .filter(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .map(|f| f.dialogue.bytes_up())
            .sum();
        assert!(
            storage_up > 10 * 5_000,
            "no-dedup second device re-uploads everything ({storage_up} B up)"
        );
    }

    #[test]
    fn v1_sends_one_ok_per_chunk() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let chunks: Vec<ChunkWork> = (0..5).map(|i| chunkw(i, 20_000)).collect();
        let mut rng = Rng::new(3);
        let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let store_flow = flows
            .iter()
            .find(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .unwrap();
        // Down messages: 2 TLS handshake + 5 OKs.
        let down = store_flow
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .count();
        assert_eq!(down, 7);
        // Each OK is exactly the 309-byte per-op overhead.
        let oks: Vec<u32> = store_flow
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .skip(2)
            .map(|m| m.size())
            .collect();
        assert!(oks.iter().all(|&s| s == overhead::SERVER_PER_OP));
    }

    #[test]
    fn v14_bundles_small_chunks() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_4_0);
        // 40 chunks of 100 kB -> bundles of ~40 fit 4 MB -> 1 group.
        let chunks: Vec<ChunkWork> = (0..40).map(|i| chunkw(i, 100_000)).collect();
        let mut rng = Rng::new(4);
        let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let store_flow = flows
            .iter()
            .find(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .unwrap();
        let down = store_flow
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .count();
        // 2 handshake + 1 single bundle OK.
        assert_eq!(down, 3);
    }

    #[test]
    fn v14_keeps_large_chunks_single() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let eng = engine_with(&dns, &store, ClientVersion::V1_4_0);
        let big = [
            chunkw(1, 3_000_000),
            chunkw(2, 3_500_000),
            chunkw(3, 50_000),
        ];
        let refs: Vec<&ChunkWork> = big.iter().collect();
        let groups = eng.bundle(&big);
        assert_eq!(groups.len(), 3, "two large singles + one small group");
        assert_eq!(groups[0].len(), 1);
        assert_eq!(groups[2], vec![refs[2]]);
    }

    #[test]
    fn retrieve_requests_are_two_pushed_writes() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let chunks = [chunkw(1, 10_000), chunkw(2, 12_000)];
        let mut rng = Rng::new(5);
        let flows = eng.download_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let rf = flows
            .iter()
            .find(|f| matches!(f.truth, FlowTruth::Retrieve { .. }))
            .unwrap();
        let up_requests: Vec<&Message> = rf
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Up)
            .skip(2) // TLS handshake writes
            .collect();
        assert_eq!(up_requests.len(), 2);
        for req in up_requests {
            assert_eq!(req.writes.len(), 2, "HTTP_retrieve is 2 x PSH");
            let total = req.size();
            assert!(
                (overhead::RETRIEVE_CLIENT_MIN..=overhead::RETRIEVE_CLIENT_MAX).contains(&total)
            );
        }
    }

    #[test]
    fn storage_aliases_rotate_per_flow() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let mut rng = Rng::new(6);
        let chunks: Vec<ChunkWork> = (0..250).map(|i| chunkw(i, 1_000)).collect();
        let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let names: Vec<&str> = flows
            .iter()
            .filter(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .map(|f| f.server_name.as_str())
            .collect();
        assert_eq!(names.len(), 3);
        assert!(names[0] != names[1] || names[1] != names[2]);
        assert!(names.iter().all(|n| n.starts_with("dl-client")));
    }

    #[test]
    fn misbehaving_device_has_no_acks_and_rst_close() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = SyncEngine::new(
            &dns,
            &store,
            SyncConfig {
                no_storage_acks: true,
                ..SyncConfig::default()
            },
            4096,
        );
        let mut rng = Rng::new(7);
        let chunks = [chunkw(1, 4 * 1024 * 1024)];
        let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
        let sf = flows
            .iter()
            .find(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .unwrap();
        let down = sf
            .dialogue
            .messages
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .count();
        assert_eq!(down, 2, "handshake only, no OKs");
        assert!(matches!(sf.dialogue.close, CloseMode::ClientRst { .. }));
        match sf.truth {
            FlowTruth::Store { acked, .. } => assert!(!acked),
            _ => unreachable!(),
        }
    }

    #[test]
    fn backoff_golden_values() {
        // Pinned sequence: exponential growth under deterministic jitter.
        // Any change to the RNG stream, the policy defaults, or the jitter
        // formula shows up here as a reproducibility break.
        let p = RetryPolicy::default();
        let mut rng = Rng::new(42);
        let micros: Vec<u64> = (0..8).map(|a| p.backoff(a, &mut rng).micros()).collect();
        assert_eq!(
            micros,
            vec![
                1_083_863,
                2_757_961,
                6_720_174,
                15_397_544,
                31_868_863,
                56_631_663,
                110_032_549,
                236_801_081,
            ]
        );
    }

    #[test]
    fn backoff_is_capped_and_jittered() {
        let p = RetryPolicy::default();
        let mut rng = Rng::new(9);
        for attempt in 0..40 {
            let b = p.backoff(attempt, &mut rng).as_secs_f64();
            let nominal = (2.0f64 * 2.0f64.powi(attempt.min(30) as i32)).min(300.0);
            assert!(
                b >= nominal * 0.5 - 1e-9 && b < nominal + 1e-9,
                "attempt {attempt}: {b}"
            );
        }
        // Deep attempts sit at the cap.
        let deep = p.backoff(20, &mut rng).as_secs_f64();
        assert!((150.0..300.0).contains(&deep), "capped backoff {deep}");
    }

    #[test]
    fn faulty_upload_resumes_only_uncommitted_chunks() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let chunks: Vec<ChunkWork> = (0..30).map(|i| chunkw(i, 50_000)).collect();
        let plan = FaultPlan {
            reset_p: 0.7, // force several aborts
            ..FaultPlan::none()
        };
        let policy = RetryPolicy::default();
        let mut rng = Rng::new(11);
        let out = eng.upload_transaction_faulty(
            &chunks,
            0,
            SimTime::from_secs(100),
            &plan,
            &policy,
            &mut rng,
        );
        assert!(out.aborted_flows > 0, "reset_p 0.7 must cut something");
        assert_eq!(out.retries, out.aborted_flows, "no outage in this plan");
        // Every chunk committed exactly once despite the cuts.
        let stats = store.stats();
        assert_eq!(stats.chunks, 30);
        assert_eq!(stats.bytes, 30 * 50_000);
        // Aborted store flows carry an intrinsic reset fault; clean ones
        // do not.
        for (_, f) in &out.flows {
            if let FlowTruth::Store { .. } = f.truth {
                if let Some(fault) = f.faults {
                    assert!(fault.reset_after_bytes.is_some());
                }
            } else {
                assert!(f.faults.is_none());
            }
        }
        // Offsets are non-decreasing (backoffs accumulate).
        let offsets: Vec<_> = out.flows.iter().map(|(o, _)| *o).collect();
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            offsets.last().unwrap() > &SimDuration::ZERO,
            "retries must push later flows out in time"
        );
    }

    #[test]
    fn faulty_upload_with_no_faults_commits_everything_without_retries() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let chunks: Vec<ChunkWork> = (0..10).map(|i| chunkw(i, 8_000)).collect();
        let mut rng = Rng::new(12);
        let out = eng.upload_transaction_faulty(
            &chunks,
            0,
            SimTime::from_secs(100),
            &FaultPlan::none(),
            &RetryPolicy::default(),
            &mut rng,
        );
        assert_eq!(out.retries, 0);
        assert_eq!(out.aborted_flows, 0);
        assert!(out.flows.iter().all(|(o, _)| *o == SimDuration::ZERO));
        assert_eq!(store.stats().chunks, 10);
    }

    #[test]
    fn outage_window_defers_commit_with_error_exchanges() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let chunks = [chunkw(1, 5_000)];
        let start = SimTime::from_secs(1_000);
        let plan = FaultPlan {
            // Outage covering the transaction start; the client must back
            // off past its end.
            outages: vec![(SimTime::from_secs(900), SimTime::from_secs(1_010))],
            ..FaultPlan::none()
        };
        let mut rng = Rng::new(13);
        let out = eng.upload_transaction_faulty(
            &chunks,
            0,
            start,
            &plan,
            &RetryPolicy::default(),
            &mut rng,
        );
        assert!(out.retries > 0, "commit must be refused at least once");
        assert_eq!(out.aborted_flows, 0);
        // The successful part of the transaction plays after the outage
        // (or after max_attempts force-succeeds — not with this window).
        let last_offset = out.flows.last().unwrap().0;
        assert!(plan.server_available(start + last_offset));
        assert_eq!(store.stats().chunks, 1);
    }

    #[test]
    fn faulty_download_refetches_whole_batch() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let chunks: Vec<ChunkWork> = (0..5).map(|i| chunkw(i, 30_000)).collect();
        let plan = FaultPlan {
            reset_p: 0.8,
            ..FaultPlan::none()
        };
        let mut rng = Rng::new(14);
        let out = eng.download_transaction_faulty(
            &chunks,
            0,
            SimTime::from_secs(50),
            &plan,
            &RetryPolicy::default(),
            &mut rng,
        );
        assert!(out.aborted_flows > 0);
        // The final retrieve of each batch is clean and carries the full
        // chunk count (downloads are idempotent, nothing is partial).
        let (_, last_retrieve) = out
            .flows
            .iter()
            .rev()
            .find(|(_, f)| matches!(f.truth, FlowTruth::Retrieve { .. }))
            .unwrap();
        assert!(last_retrieve.faults.is_none());
        assert_eq!(last_retrieve.truth.chunks(), Some(5));
    }

    #[test]
    fn protocol_trace_matches_figure_1() {
        let dns = DnsDirectory::new();
        let store = ChunkStore::new();
        let mut eng = engine_with(&dns, &store, ClientVersion::V1_2_52);
        let mut rng = Rng::new(8);
        let mut trace = ProtocolTrace::new();
        let chunks = [chunkw(900, 5_000), chunkw(901, 6_000)];
        eng.upload_transaction(&chunks, 0, &mut rng, Some(&mut trace), SimTime::EPOCH);
        let ladder = trace.ladder();
        assert_eq!(
            ladder,
            vec![
                "commit_batch",
                "need_blocks",
                "store",
                "ok",
                "store",
                "ok",
                "close_changeset",
                "ok"
            ]
        );
    }
}

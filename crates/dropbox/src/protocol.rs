//! The client ⇆ server command vocabulary and the protocol trace.
//!
//! Fig. 1 of the paper shows the message ladder of a commit: after
//! `register_host` and `list`, a `commit_batch` on the meta-data servers
//! answers with `need_blocks`; the client `store`s the missing chunks on
//! the Amazon plane (each acknowledged with `ok` in v1.2.52), then commits
//! the changeset back on the meta-data side. [`ProtocolTrace`] records that
//! ladder so experiments can print and assert it.

use crate::content::ChunkId;
use simcore::SimTime;
use std::fmt;

/// Where a command is executed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Plane {
    /// Meta-data servers (`client-lb`/`clientX`, Dropbox DC).
    Meta,
    /// Storage servers (`dl-clientX`, Amazon).
    Storage,
    /// Notification servers (`notifyX`).
    Notify,
}

/// Protocol commands (the subset the paper documents).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Command {
    /// Device registration at session start.
    RegisterHost,
    /// Incremental meta-data listing.
    List,
    /// Submit meta-data of new/changed files.
    CommitBatch {
        /// Chunk ids of the committed versions.
        hashes: Vec<ChunkId>,
    },
    /// Server reply: chunks the store does not yet hold.
    NeedBlocks {
        /// Missing chunk ids.
        hashes: Vec<ChunkId>,
    },
    /// Upload one chunk (v1.2.52).
    Store {
        /// The chunk being uploaded.
        id: ChunkId,
    },
    /// Upload several bundled chunks (v1.4.0).
    StoreBatch {
        /// The bundled chunks.
        ids: Vec<ChunkId>,
    },
    /// Download one chunk (v1.2.52).
    Retrieve {
        /// The requested chunk.
        id: ChunkId,
    },
    /// Download several bundled chunks (v1.4.0).
    RetrieveBatch {
        /// The bundled chunks.
        ids: Vec<ChunkId>,
    },
    /// Per-operation acknowledgment.
    Ok,
    /// Conclude a changeset on the meta-data side.
    CloseChangeset,
    /// Notification long-poll request.
    NotifyPoll,
    /// Notification response (delayed up to 60 s).
    NotifyResponse {
        /// Whether a change elsewhere was signalled.
        changed: bool,
    },
}

impl Command {
    /// Maximum number of chunks a single transaction may carry
    /// (Sec. 2.3.2: "at most 100 per transaction").
    pub const MAX_CHUNKS_PER_BATCH: usize = 100;

    /// The plane a command belongs to.
    pub fn plane(&self) -> Plane {
        match self {
            Command::RegisterHost
            | Command::List
            | Command::CommitBatch { .. }
            | Command::NeedBlocks { .. }
            | Command::CloseChangeset => Plane::Meta,
            Command::Store { .. }
            | Command::StoreBatch { .. }
            | Command::Retrieve { .. }
            | Command::RetrieveBatch { .. }
            | Command::Ok => Plane::Storage,
            Command::NotifyPoll | Command::NotifyResponse { .. } => Plane::Notify,
        }
    }

    /// Short wire name, as in Fig. 1.
    pub fn name(&self) -> &'static str {
        match self {
            Command::RegisterHost => "register_host",
            Command::List => "list",
            Command::CommitBatch { .. } => "commit_batch",
            Command::NeedBlocks { .. } => "need_blocks",
            Command::Store { .. } => "store",
            Command::StoreBatch { .. } => "store_batch",
            Command::Retrieve { .. } => "retrieve",
            Command::RetrieveBatch { .. } => "retrieve_batch",
            Command::Ok => "ok",
            Command::CloseChangeset => "close_changeset",
            Command::NotifyPoll => "notify_poll",
            Command::NotifyResponse { .. } => "notify_response",
        }
    }
}

/// Direction of a traced message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sender {
    /// Sent by the client.
    Client,
    /// Sent by a server.
    Server,
}

/// One traced protocol message.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// When the message was issued.
    pub at: SimTime,
    /// Who sent it.
    pub from: Sender,
    /// The command.
    pub command: Command,
}

/// An ordered protocol trace (the testbed view of Fig. 1 / Fig. 19).
#[derive(Clone, Debug, Default)]
pub struct ProtocolTrace {
    entries: Vec<TraceEntry>,
}

impl ProtocolTrace {
    /// New empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a message.
    pub fn record(&mut self, at: SimTime, from: Sender, command: Command) {
        self.entries.push(TraceEntry { at, from, command });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// The command-name ladder (for assertions and printing).
    pub fn ladder(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.command.name()).collect()
    }

    /// Entries on one plane only.
    pub fn on_plane(&self, plane: Plane) -> Vec<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| e.command.plane() == plane)
            .collect()
    }
}

impl fmt::Display for ProtocolTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            let arrow = match e.from {
                Sender::Client => "->",
                Sender::Server => "<-",
            };
            let plane = match e.command.plane() {
                Plane::Meta => "meta    ",
                Plane::Storage => "storage ",
                Plane::Notify => "notify  ",
            };
            writeln!(
                f,
                "{:>16}  {plane} {arrow} {}",
                format!("{}", e.at),
                e.command.name()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planes_match_figure_1() {
        assert_eq!(Command::RegisterHost.plane(), Plane::Meta);
        assert_eq!(Command::CommitBatch { hashes: vec![] }.plane(), Plane::Meta);
        assert_eq!(Command::Store { id: ChunkId(1) }.plane(), Plane::Storage);
        assert_eq!(Command::Ok.plane(), Plane::Storage);
        assert_eq!(Command::NotifyPoll.plane(), Plane::Notify);
    }

    #[test]
    fn batch_limit_is_100() {
        assert_eq!(Command::MAX_CHUNKS_PER_BATCH, 100);
    }

    #[test]
    fn trace_preserves_order_and_filters() {
        let mut t = ProtocolTrace::new();
        t.record(SimTime::from_secs(1), Sender::Client, Command::RegisterHost);
        t.record(SimTime::from_secs(2), Sender::Client, Command::List);
        t.record(
            SimTime::from_secs(3),
            Sender::Client,
            Command::Store { id: ChunkId(1) },
        );
        t.record(SimTime::from_secs(4), Sender::Server, Command::Ok);
        assert_eq!(t.ladder(), vec!["register_host", "list", "store", "ok"]);
        assert_eq!(t.on_plane(Plane::Storage).len(), 2);
        let rendered = format!("{t}");
        assert!(rendered.contains("register_host"));
        assert!(rendered.contains("storage"));
    }
}

//! The deduplicating chunk store (the Amazon storage plane).
//!
//! Dropbox deduplicates chunk uploads by SHA-256 id: after a
//! `commit_batch`, the meta-data server answers `need_blocks` with the
//! subset of ids the store does not yet hold (Fig. 1); only those are
//! uploaded. The store is shared by all users of the simulated deployment
//! (the global dedup the side-channel literature the paper cites [8, 9]
//! analyses). An `RwLock` guards the map so that vantage-point
//! simulations can run in parallel threads against one deployment.

use crate::content::ChunkId;
use std::collections::BTreeMap;
use std::sync::RwLock;

/// Statistics of the store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct chunks held.
    pub chunks: u64,
    /// Total raw bytes of held chunks.
    pub bytes: u64,
    /// Uploads avoided thanks to deduplication.
    pub dedup_hits: u64,
    /// Bytes whose upload was avoided.
    pub dedup_bytes: u64,
}

/// The deduplicating chunk store.
#[derive(Debug, Default)]
pub struct ChunkStore {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    chunks: BTreeMap<ChunkId, u64>, // id -> raw size
    stats: StoreStats,
}

impl ChunkStore {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Which of `ids` still need to be uploaded (the `need_blocks` reply).
    /// Dedup hits are accounted immediately, as the server's answer is the
    /// moment the upload is avoided.
    pub fn need_blocks(&self, ids: &[(ChunkId, u64)]) -> Vec<ChunkId> {
        // simlint: allow(panic-path) — lock poisoning means another thread already panicked; propagating would mask the original failure
        let mut inner = self.inner.write().expect("chunk store lock poisoned");
        let mut need = Vec::new();
        for &(id, size) in ids {
            if inner.chunks.contains_key(&id) {
                inner.stats.dedup_hits += 1;
                inner.stats.dedup_bytes += size;
            } else {
                need.push(id);
            }
        }
        need
    }

    /// Store a chunk (after a `store`/`store_batch` command). Returns true
    /// when the chunk was new.
    pub fn put(&self, id: ChunkId, size: u64) -> bool {
        // simlint: allow(panic-path) — lock poisoning means another thread already panicked; propagating would mask the original failure
        let mut inner = self.inner.write().expect("chunk store lock poisoned");
        if inner.chunks.insert(id, size).is_none() {
            inner.stats.chunks += 1;
            inner.stats.bytes += size;
            true
        } else {
            false
        }
    }

    /// Whether the store holds a chunk (retrieve path).
    pub fn has(&self, id: ChunkId) -> bool {
        self.read().chunks.contains_key(&id)
    }

    /// Raw size of a held chunk.
    pub fn size_of(&self, id: ChunkId) -> Option<u64> {
        self.read().chunks.get(&id).copied()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        self.read().stats
    }

    /// Snapshot of every chunk id currently held — the durability ledger
    /// the chaos-soak convergence oracle checks committed chunks against.
    pub fn ids(&self) -> Vec<ChunkId> {
        self.read().chunks.keys().copied().collect()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        // simlint: allow(panic-path) — lock poisoning means another thread already panicked; propagating would mask the original failure
        self.inner.read().expect("chunk store lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn need_blocks_filters_known_chunks() {
        let store = ChunkStore::new();
        store.put(ChunkId(1), 100);
        let need = store.need_blocks(&[(ChunkId(1), 100), (ChunkId(2), 200)]);
        assert_eq!(need, vec![ChunkId(2)]);
        let s = store.stats();
        assert_eq!(s.dedup_hits, 1);
        assert_eq!(s.dedup_bytes, 100);
    }

    #[test]
    fn put_is_idempotent() {
        let store = ChunkStore::new();
        assert!(store.put(ChunkId(7), 50));
        assert!(!store.put(ChunkId(7), 50));
        let s = store.stats();
        assert_eq!(s.chunks, 1);
        assert_eq!(s.bytes, 50);
    }

    #[test]
    fn cross_user_dedup() {
        // Two "users" uploading identical content: the second upload is
        // fully deduplicated.
        let store = ChunkStore::new();
        let ids: Vec<(ChunkId, u64)> = (0..10).map(|i| (ChunkId(i), 1000)).collect();
        let first = store.need_blocks(&ids);
        assert_eq!(first.len(), 10);
        for &(id, s) in &ids {
            store.put(id, s);
        }
        let second = store.need_blocks(&ids);
        assert!(second.is_empty());
        assert_eq!(store.stats().dedup_bytes, 10_000);
    }

    #[test]
    fn retrieval_queries() {
        let store = ChunkStore::new();
        store.put(ChunkId(3), 42);
        assert!(store.has(ChunkId(3)));
        assert_eq!(store.size_of(ChunkId(3)), Some(42));
        assert!(!store.has(ChunkId(4)));
        assert_eq!(store.size_of(ChunkId(4)), None);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let store = Arc::new(ChunkStore::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    s.put(ChunkId(t * 1000 + i), 10);
                    s.need_blocks(&[(ChunkId(i), 10)]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.stats().chunks, 4000);
    }
}

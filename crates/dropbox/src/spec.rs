//! Provider protocol specifications (ROADMAP item 3).
//!
//! The sync engine in [`crate::client`] is protocol-*invariant*: the
//! transaction ladder (commit → need_blocks → store/retrieve →
//! close_changeset), the session state machine, failover and the chunked
//! content transfer work the same for every personal cloud storage
//! service of the paper's era. What differs between providers is captured
//! here as data — a [`ProviderSpec`]:
//!
//! * **chunk size** — Dropbox splits at 4 MB (Sec. 2.1); competitors used
//!   fixed smaller or larger units,
//! * **bundling** — whether small chunks share one storage operation
//!   (Dropbox gained this in v1.4.0, Sec. 4.5.1),
//! * **dedup / delta capability** — Dropbox uploads only unknown chunks
//!   and rsync-style deltas of edited ones; the 2012-era competitors
//!   re-uploaded whole files,
//! * **datacenter placement** — extra RTT of the provider's control and
//!   storage planes relative to the measured Dropbox baseline of Fig. 6
//!   (Sec. 4.2: control in the Dropbox DC, storage on Amazon),
//! * **notification style** — long-poll (Dropbox, Sec. 2.3.1) versus
//!   periodic polling,
//! * **naming** — the DNS surface the probe sees.
//!
//! [`DROPBOX`] reproduces today's byte-identical captures and is the
//! default everywhere; [`SKYDRIVE_LIKE`] and [`GDRIVE_LIKE`] are the
//! competing models driven through the same household sweep by
//! `repro --provider-matrix`.

use crate::client::ClientVersion;
use nettrace::Ipv4;
use simcore::SimDuration;

/// Bundling parameters: how small chunks are packed into one storage
/// operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BundleParams {
    /// A bundle is packed up to this many payload bytes.
    pub budget: u64,
    /// Chunks at or above this size always travel as single commands.
    pub max_member: u64,
}

/// Whether (and when) a provider bundles small chunks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bundling {
    /// One command per chunk, always (per-chunk sequential acks).
    Never,
    /// Bundling active for every client generation.
    Always(BundleParams),
    /// Bundling only for v1.4.0-generation clients (the Dropbox rollout
    /// the paper's re-capture measures).
    V14Only(BundleParams),
}

/// How clients learn about remote changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NotifyStyle {
    /// One HTTP long-poll connection held open per session (Dropbox).
    LongPoll,
    /// Periodic short poll connections, one every `period_secs`.
    Poll {
        /// Seconds between change polls.
        period_secs: u64,
    },
}

/// Extra round-trip latency of the provider's datacenters relative to the
/// vantage point's measured Dropbox baseline (`storage_rtt` /
/// `control_rtt` of Fig. 6). Zero for Dropbox by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Added to the control-plane RTT.
    pub control_extra_ms: u64,
    /// Added to the storage-plane RTT.
    pub storage_extra_ms: u64,
}

impl Placement {
    /// Control-plane RTT surcharge.
    pub fn control_extra(&self) -> SimDuration {
        SimDuration::from_millis(self.control_extra_ms)
    }

    /// Storage-plane RTT surcharge.
    pub fn storage_extra(&self) -> SimDuration {
        SimDuration::from_millis(self.storage_extra_ms)
    }
}

/// The DNS surface of a provider.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Naming {
    /// The full Dropbox deployment of Table 1 (`client-lb`, `clientX`,
    /// `notifyX`, `dl-clientX`, … under `dropbox.com`), served by
    /// [`dnssim::DnsDirectory::new`].
    DropboxDns,
    /// A flat generic deployment: `sync.<domain>` (control),
    /// `notify.<domain>`, `telemetry.<domain>`, and a rotation pool of
    /// `storeN.<domain>` storage fronts.
    Flat {
        /// Provider domain, e.g. `skydrive-like.example`.
        domain: &'static str,
        /// Number of `storeN` storage fronts.
        storage_pool: u32,
        /// Wildcard certificate common name presented by every server.
        cert: &'static str,
        /// First two octets of the provider's address block.
        ip_base: (u8, u8),
    },
}

/// Everything that distinguishes one provider's sync protocol from
/// another's. The engine consumes specs by shared reference; the three
/// shipped models are the statics [`DROPBOX`], [`SKYDRIVE_LIKE`] and
/// [`GDRIVE_LIKE`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProviderSpec {
    /// Display name ("Dropbox", "SkyDrive-like", …).
    pub name: &'static str,
    /// Stable machine-readable key for artifacts and CLI flags.
    pub slug: &'static str,
    /// Content split size: files larger than this are chunked.
    pub chunk_bytes: u64,
    /// Whether the server deduplicates chunks it already holds
    /// (`need_blocks` answers with a subset).
    pub dedup: bool,
    /// Whether edits travel as rsync-style deltas instead of whole
    /// re-compressed chunks.
    pub delta: bool,
    /// Bundling behaviour.
    pub bundling: Bundling,
    /// Client-side commit coalescing window (seconds) — active only while
    /// bundling is (changes detected close together ride one connection).
    pub coalesce_secs: u64,
    /// Datacenter placement relative to the Dropbox baseline.
    pub placement: Placement,
    /// Notification delivery style.
    pub notify: NotifyStyle,
    /// DNS surface.
    pub naming: Naming,
}

/// Dropbox bundle budget of v1.4.0 (chunks are ≤ 4 MB; bundles are packed
/// to the same cap, Sec. 4.5.1).
pub const DROPBOX_BUNDLE: BundleParams = BundleParams {
    budget: 4 * 1024 * 1024,
    max_member: 1024 * 1024,
};

/// The measured Dropbox deployment: 4 MB chunks, dedup + delta, bundling
/// from v1.4.0 on, long-poll notifications, Table 1 DNS. The default spec
/// — every capture run with it is byte-identical to the pre-refactor
/// engine.
pub static DROPBOX: ProviderSpec = ProviderSpec {
    name: "Dropbox",
    slug: "dropbox",
    chunk_bytes: crate::content::CHUNK_SIZE,
    dedup: true,
    delta: true,
    bundling: Bundling::V14Only(DROPBOX_BUNDLE),
    coalesce_secs: 60,
    placement: Placement {
        control_extra_ms: 0,
        storage_extra_ms: 0,
    },
    notify: NotifyStyle::LongPoll,
    naming: Naming::DropboxDns,
};

/// A no-dedup / no-delta fixed-chunk model in the style of 2012-era
/// SkyDrive: 1 MB units, whole-file re-uploads on every edit, periodic
/// change polls, and a single distant datacenter serving both planes.
pub static SKYDRIVE_LIKE: ProviderSpec = ProviderSpec {
    name: "SkyDrive-like",
    slug: "skydrive_like",
    chunk_bytes: 1024 * 1024,
    dedup: false,
    delta: false,
    bundling: Bundling::Always(BundleParams {
        budget: 4 * 1024 * 1024,
        max_member: 1024 * 1024,
    }),
    coalesce_secs: 60,
    placement: Placement {
        control_extra_ms: 18,
        storage_extra_ms: 26,
    },
    notify: NotifyStyle::Poll { period_secs: 300 },
    naming: Naming::Flat {
        domain: "skydrive-like.example",
        storage_pool: 8,
        cert: "*.skydrive-like.example",
        ip_base: (157, 55),
    },
};

/// A no-bundling per-file-commit model in the style of 2012-era Google
/// Drive: large fixed chunks, one commit (and one storage connection) per
/// detected change, no dedup/delta, control and storage co-located on the
/// provider's backbone.
pub static GDRIVE_LIKE: ProviderSpec = ProviderSpec {
    name: "GDrive-like",
    slug: "gdrive_like",
    chunk_bytes: 8 * 1024 * 1024,
    dedup: false,
    delta: false,
    bundling: Bundling::Never,
    coalesce_secs: 0,
    placement: Placement {
        control_extra_ms: 8,
        storage_extra_ms: 10,
    },
    notify: NotifyStyle::LongPoll,
    naming: Naming::Flat {
        domain: "gdrive-like.example",
        storage_pool: 12,
        cert: "*.gdrive-like.example",
        ip_base: (74, 126),
    },
};

/// All shipped provider specs, Dropbox first.
pub static ALL: [&ProviderSpec; 3] = [&DROPBOX, &SKYDRIVE_LIKE, &GDRIVE_LIKE];

/// Look a spec up by its CLI/artifact slug.
pub fn by_slug(slug: &str) -> Option<&'static ProviderSpec> {
    ALL.iter().copied().find(|s| s.slug == slug)
}

impl ProviderSpec {
    /// Bundling parameters in effect for a client generation; `None`
    /// means one command per chunk.
    pub fn bundle_params(&self, version: ClientVersion) -> Option<BundleParams> {
        match self.bundling {
            Bundling::Never => None,
            Bundling::Always(b) => Some(b),
            Bundling::V14Only(b) => (version == ClientVersion::V1_4_0).then_some(b),
        }
    }

    /// The commit-coalescing window for a client generation: bundling
    /// clients merge commits detected within the window into one
    /// transaction; per-chunk clients (and per-file-commit providers)
    /// never coalesce.
    pub fn commit_coalesce(&self, version: ClientVersion) -> SimDuration {
        if self.bundle_params(version).is_some() {
            SimDuration::from_secs(self.coalesce_secs)
        } else {
            SimDuration::ZERO
        }
    }

    /// Certificate common name presented by the provider's servers.
    pub fn cert_cn(&self) -> &'static str {
        match self.naming {
            Naming::DropboxDns => crate::client::CERT_CN,
            Naming::Flat { cert, .. } => cert,
        }
    }

    /// Control-plane FQDN (flat naming only; the Dropbox spec routes
    /// through [`dnssim::DnsDirectory::meta_name`]).
    pub fn control_name(&self) -> String {
        match self.naming {
            Naming::DropboxDns => "client-lb.dropbox.com".to_owned(),
            Naming::Flat { domain, .. } => format!("sync.{domain}"),
        }
    }

    /// Notification FQDN (flat naming only).
    pub fn notify_name(&self) -> String {
        match self.naming {
            Naming::DropboxDns => "notify1.dropbox.com".to_owned(),
            Naming::Flat { domain, .. } => format!("notify.{domain}"),
        }
    }

    /// Telemetry/crash-report FQDN (flat naming only).
    pub fn telemetry_name(&self) -> String {
        match self.naming {
            Naming::DropboxDns => "d.dropbox.com".to_owned(),
            Naming::Flat { domain, .. } => format!("telemetry.{domain}"),
        }
    }

    /// Storage front for rotation `cursor` (flat naming only; the Dropbox
    /// spec rotates the per-device `dl-clientX` alias lists of Sec. 2.4).
    pub fn storage_name(&self, cursor: usize) -> String {
        match self.naming {
            Naming::DropboxDns => format!("dl-client{}.dropbox.com", cursor + 1),
            Naming::Flat {
                domain,
                storage_pool,
                ..
            } => format!(
                "store{}.{domain}",
                1 + (cursor as u32 % storage_pool.max(1))
            ),
        }
    }

    /// Whether `name` addresses the provider's storage plane (drives the
    /// control-vs-storage RTT split of Fig. 6 in the driver).
    pub fn is_storage_name(&self, name: &str) -> bool {
        match self.naming {
            Naming::DropboxDns => matches!(
                dnssim::DnsDirectory::role_of_name(name),
                Some(r) if r.is_amazon()
            ),
            Naming::Flat { domain, .. } => {
                name.starts_with("store")
                    && name.ends_with(domain)
                    && (name.starts_with("store.")
                        || name
                            .as_bytes()
                            .get(5)
                            .copied()
                            .map(|b| b.is_ascii_digit())
                            .unwrap_or(false))
            }
        }
    }

    /// DNS registrations this spec needs beyond the Dropbox deployment.
    /// Empty for [`Naming::DropboxDns`], so default runs never touch the
    /// directory; flat providers get deterministic addresses in their own
    /// block (control/notify/telemetry on `.0.x`, storage fronts on
    /// `.1.x`).
    pub fn dns_entries(&self) -> Vec<(String, Ipv4)> {
        match self.naming {
            Naming::DropboxDns => Vec::new(),
            Naming::Flat {
                domain,
                storage_pool,
                ip_base: (a, b),
                ..
            } => {
                let mut out = vec![
                    (format!("sync.{domain}"), Ipv4::new(a, b, 0, 1)),
                    (format!("notify.{domain}"), Ipv4::new(a, b, 0, 2)),
                    (format!("telemetry.{domain}"), Ipv4::new(a, b, 0, 3)),
                ];
                for i in 0..storage_pool {
                    out.push((
                        format!("store{}.{domain}", i + 1),
                        Ipv4::new(a, b, 1 + (i / 250) as u8, 1 + (i % 250) as u8),
                    ));
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropbox_spec_matches_legacy_engine_knobs() {
        assert_eq!(DROPBOX.chunk_bytes, crate::content::CHUNK_SIZE);
        assert!(DROPBOX.dedup && DROPBOX.delta);
        assert_eq!(DROPBOX.bundle_params(ClientVersion::V1_2_52), None);
        assert_eq!(
            DROPBOX.bundle_params(ClientVersion::V1_4_0),
            Some(DROPBOX_BUNDLE)
        );
        assert_eq!(
            DROPBOX.commit_coalesce(ClientVersion::V1_2_52),
            SimDuration::ZERO
        );
        assert_eq!(
            DROPBOX.commit_coalesce(ClientVersion::V1_4_0),
            SimDuration::from_secs(60)
        );
        assert_eq!(DROPBOX.placement.control_extra(), SimDuration::ZERO);
        assert_eq!(DROPBOX.placement.storage_extra(), SimDuration::ZERO);
        assert!(DROPBOX.dns_entries().is_empty());
        assert_eq!(DROPBOX.cert_cn(), "*.dropbox.com");
    }

    #[test]
    fn competing_specs_differ_where_the_paper_says() {
        // SkyDrive-like: no dedup/delta, fixed small chunks, polls.
        assert!(!SKYDRIVE_LIKE.dedup && !SKYDRIVE_LIKE.delta);
        assert!(SKYDRIVE_LIKE.chunk_bytes < DROPBOX.chunk_bytes);
        assert!(matches!(SKYDRIVE_LIKE.notify, NotifyStyle::Poll { .. }));
        // GDrive-like: never bundles, never coalesces (per-file commits).
        assert_eq!(GDRIVE_LIKE.bundle_params(ClientVersion::V1_4_0), None);
        assert_eq!(
            GDRIVE_LIKE.commit_coalesce(ClientVersion::V1_4_0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn flat_naming_produces_resolvable_consistent_names() {
        for spec in [&SKYDRIVE_LIKE, &GDRIVE_LIKE] {
            let entries = spec.dns_entries();
            let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
            assert!(names.contains(&spec.control_name().as_str()));
            assert!(names.contains(&spec.notify_name().as_str()));
            assert!(names.contains(&spec.telemetry_name().as_str()));
            for cursor in 0..20 {
                let s = spec.storage_name(cursor);
                assert!(names.contains(&s.as_str()), "{s} not registered");
                assert!(spec.is_storage_name(&s), "{s} not storage");
            }
            assert!(!spec.is_storage_name(&spec.control_name()));
            assert!(!spec.is_storage_name(&spec.notify_name()));
            // No generic name collides with the Dropbox zone.
            assert!(names.iter().all(|n| !n.ends_with(".dropbox.com")));
            // Addresses are unique within the spec.
            let mut ips: Vec<_> = entries.iter().map(|(_, ip)| *ip).collect();
            ips.sort_unstable();
            ips.dedup();
            assert_eq!(ips.len(), entries.len());
        }
    }

    #[test]
    fn slug_lookup_covers_all_specs() {
        for spec in ALL {
            assert_eq!(by_slug(spec.slug), Some(spec));
        }
        assert_eq!(by_slug("nope"), None);
    }

    #[test]
    fn storage_rotation_cycles_the_pool() {
        let pool = match SKYDRIVE_LIKE.naming {
            Naming::Flat { storage_pool, .. } => storage_pool as usize,
            _ => unreachable!(),
        };
        let names: std::collections::BTreeSet<String> = (0..3 * pool)
            .map(|c| SKYDRIVE_LIKE.storage_name(c))
            .collect();
        assert_eq!(names.len(), pool, "rotation must cycle the whole pool");
    }
}

//! A tiny deterministic property-testing harness (in-tree `proptest`
//! replacement).
//!
//! The external `proptest` crate is unavailable in the offline build
//! environment, and its OS-entropy-driven exploration is at odds with this
//! workspace's everything-derives-from-one-seed policy anyway. This module
//! provides the subset the test-suites need:
//!
//! * [`Strategy`] — a value generator driven by [`Rng`];
//!   implemented for integer/float ranges, tuples of strategies, and via
//!   the [`vec_of`]/[`from_fn`]/`any_*` combinators,
//! * the [`proptest!`](crate::proptest!) macro — declares `#[test]`
//!   functions that sample inputs and run the property over many cases,
//! * [`prop_assert!`](crate::prop_assert!),
//!   [`prop_assert_eq!`](crate::prop_assert_eq!),
//!   [`prop_assert_ne!`](crate::prop_assert_ne!),
//!   [`prop_assume!`](crate::prop_assume!) — assertion/rejection forms.
//!
//! Each test derives its own root RNG from the fully-qualified test name
//! (via [`fnv1a`](crate::rng::fnv1a)), and case *i* runs on fork *i* of that
//! root: every case is reproducible in isolation, adding tests never
//! perturbs existing ones, and there is no shrinking machinery — a failure
//! report names the case index and prints the generated inputs.
//!
//! ```
//! simcore::proptest! {
//!     #![cases(64)]
//!     // `#[test]` goes here in a test file; omitted so the doctest can
//!     // call the generated function directly.
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         simcore::prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

use crate::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Outcome of one generated case, produced by the body closure the
/// [`proptest!`](crate::proptest!) macro builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseResult {
    /// The property held (or at least did not fail).
    Pass,
    /// The inputs were rejected by [`prop_assume!`](crate::prop_assume!).
    Reject,
}

/// A deterministic value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value from `rng`.
    fn sample(&self, rng: &mut Rng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                (self.start as u64
                    + rng.below((self.end - self.start) as u64)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                rng.range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);

/// Strategy built from a closure over the RNG (see [`from_fn`]).
pub struct FromFn<T, F> {
    f: F,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Debug, F: Fn(&mut Rng) -> T> Strategy for FromFn<T, F> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        (self.f)(rng)
    }
}

/// Build a strategy from any sampling closure.
pub fn from_fn<T: Debug, F: Fn(&mut Rng) -> T>(f: F) -> FromFn<T, F> {
    FromFn {
        f,
        _marker: PhantomData,
    }
}

/// Full-range `u8`.
pub fn any_u8() -> impl Strategy<Value = u8> {
    from_fn(|rng| rng.next_u64() as u8)
}

/// Full-range `u16`.
pub fn any_u16() -> impl Strategy<Value = u16> {
    from_fn(|rng| rng.next_u64() as u16)
}

/// Full-range `u32`.
pub fn any_u32() -> impl Strategy<Value = u32> {
    from_fn(|rng| rng.next_u64() as u32)
}

/// Full-range `u64`.
pub fn any_u64() -> impl Strategy<Value = u64> {
    from_fn(|rng| rng.next_u64())
}

/// Fair coin.
pub fn any_bool() -> impl Strategy<Value = bool> {
    from_fn(|rng| rng.next_u64() & 1 == 1)
}

/// Vectors of `elem` with a length drawn uniformly from `len`.
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

/// Strategy returned by [`vec_of`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = if self.len.start < self.len.end {
            self.len.start + rng.below_usize(self.len.end - self.len.start)
        } else {
            self.len.start
        };
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Declare deterministic property tests.
///
/// Syntax mirrors the external `proptest!` macro for the subset this
/// workspace uses: an optional `#![cases(N)]` header (default 256) followed
/// by `#[test] fn name(binding in strategy, ...) { body }` items. See the
/// [module docs](mod@crate::proptest) for the seeding scheme.
#[macro_export]
macro_rules! proptest {
    (#![cases($n:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($n; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(256u32; $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cases:expr;) => {};
    ($cases:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases: u32 = $cases;
            let __root = $crate::Rng::new($crate::rng::fnv1a(
                concat!(module_path!(), "::", stringify!($name)).as_bytes(),
            ));
            let mut __rejected: u32 = 0;
            for __case in 0..__cases {
                let mut __rng = __root.fork(__case as u64);
                $(let $arg = $crate::proptest::Strategy::sample(&($strategy), &mut __rng);)+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str("\n    ");
                        __s.push_str(stringify!($arg));
                        __s.push_str(" = ");
                        __s.push_str(&::std::format!("{:?}", &$arg));
                    )+
                    __s
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        (move || -> $crate::proptest::CaseResult {
                            $body
                            $crate::proptest::CaseResult::Pass
                        })()
                    }),
                );
                match __outcome {
                    Ok($crate::proptest::CaseResult::Pass) => {}
                    Ok($crate::proptest::CaseResult::Reject) => __rejected += 1,
                    Err(__payload) => {
                        ::std::eprintln!(
                            "property `{}` failed at case {}/{} with inputs:{}",
                            stringify!($name),
                            __case,
                            __cases,
                            __inputs,
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
            assert!(
                __rejected < __cases,
                "property `{}`: every case was rejected by prop_assume!",
                stringify!($name),
            );
        }
        $crate::__proptest_impl!($cases; $($rest)*);
    };
}

/// Property-test assertion; panics (failing the current case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Reject the current case (skip it without failing) when `cond` is false.
/// Only valid inside a [`proptest!`](crate::proptest!) body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::proptest::CaseResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..2.5).sample(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let i = (3u8..=5).sample(&mut rng);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn vec_of_respects_length_range() {
        let mut rng = Rng::new(2);
        let strat = vec_of(any_u8(), 2..7);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = Rng::new(3);
        let (a, b, c) = (0u64..10, any_bool(), 1.0f64..2.0).sample(&mut rng);
        assert!(a < 10);
        let _: bool = b;
        assert!((1.0..2.0).contains(&c));
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = (vec_of(any_u64(), 0..50), 0.0f64..1.0);
        let a = strat.sample(&mut Rng::new(9));
        let b = strat.sample(&mut Rng::new(9));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    // The macro itself, exercised end to end (including rejection).
    crate::proptest! {
        #![cases(32)]
        #[test]
        fn macro_runs_and_assumes(a in 0u64..100, b in 0u64..100) {
            crate::prop_assume!(a != b);
            crate::prop_assert_ne!(a, b);
            crate::prop_assert!(a < 100 && b < 100);
        }
    }
}

//! Deterministic random number generation.
//!
//! All stochastic behaviour in the workspace flows from a single `u64` seed
//! through [`Rng`], a xoshiro256** generator seeded via SplitMix64. The
//! generator supports cheap *forking* ([`Rng::fork`]): deriving an
//! independent child stream from a label, so that adding randomness to one
//! component does not perturb another ("stream splitting"). This is what
//! keeps the 42-day simulation reproducible while still letting the
//! per-household, per-flow and per-packet processes draw independently.

/// xoshiro256** pseudo-random generator with SplitMix64 seeding.
///
/// ```
/// use simcore::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// let mut child = a.fork_named("component"); // independent stream
/// assert!(child.f64() < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child generator from a label.
    ///
    /// Forks with distinct labels (or from generators in distinct states)
    /// produce statistically independent streams; forking does not advance
    /// this generator, so the set of forks taken is part of the reproducible
    /// seed structure rather than a hidden consumer of randomness.
    pub fn fork(&self, label: u64) -> Rng {
        // Mix the current state with the label through SplitMix64.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive a child generator from a string label (e.g. a component name).
    pub fn fork_named(&self, name: &str) -> Rng {
        self.fork(fnv1a(name.as_bytes()))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — safe as input to `ln()`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, n)`. Panics when `n == 0`.
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below_usize(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k > n");
        // Partial Fisher–Yates over an index vector; fine for the sizes we use.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below_usize(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// FNV-1a hash, used to derive fork labels from strings.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = Rng::new(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let mut c1_again = root.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
        // Forking is a pure function of (state, label).
        let mut c1b = root.fork(1);
        c1_again.next_u64();
        assert_eq!(c1_again.next_u64(), {
            c1b.next_u64();
            c1b.next_u64()
        });
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bin expects 10_000; allow 5% deviation.
            assert!((9_500..10_500).contains(&c), "bin count {c}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = Rng::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            match r.range_u64(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::new(13);
        let s = r.sample_indices(100, 20);
        assert_eq!(s.len(), 20);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 20);
        assert!(t.iter().all(|&i| i < 100));
    }

    #[test]
    fn fnv1a_known_value() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}

//! Deterministic fault injection: the seeded plan describing how a run's
//! network and servers misbehave.
//!
//! Real vantage-point traces are full of imperfect transfers — last-mile
//! loss, latency spikes, connections cut mid-flow by gateways, and storage
//! front-ends that briefly refuse service. A [`FaultPlan`] captures those
//! knobs as a *pure value* derived from a single seed via [`crate::dist`]
//! samplers, so a faulty simulation stays a deterministic function of
//! `(config, seed, plan)`: the same plan produces bit-identical faults on
//! every run, and [`FaultPlan::none`] disables every code path that would
//! consume randomness, leaving fault-free runs byte-for-byte unchanged.
//!
//! The plan is consumed at three levels:
//!
//! * per-flow link faults ([`FaultPlan::link_faults`]) — extra segment
//!   loss and latency spikes that `tcpmodel` applies on top of the path's
//!   base loss, plus mid-flow resets that truncate the transfer,
//! * server availability windows ([`FaultPlan::server_available`]) — the
//!   5xx/outage periods the sync client must back off from and retry,
//! * control-plane events ([`FaultPlan::notify_available`],
//!   [`FaultPlan::meta_available`], [`FaultPlan::degraded_at`]) — the
//!   notification-server outages, metadata unavailability windows, and
//!   partial-degradation (elevated 5xx) periods that drive the client's
//!   degraded-mode state machine: poll fallback, offline queueing, and
//!   the reconnect storm at outage end.
//!
//! Control-plane windows are drawn from their own *non-advancing* named
//! forks of the plan seed (`faultplan-notify`, `faultplan-meta`,
//! `faultplan-degraded`), so adding them leaves the storage-outage draw
//! sequence of [`FaultPlan::lossy`] untouched and household sharding
//! byte-identical.

use crate::dist;
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// Faults affecting one TCP connection, derived from a [`FaultPlan`].
///
/// `None`-valued members leave the corresponding behaviour untouched; a
/// fully default `FlowFaults` is equivalent to no fault profile at all.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlowFaults {
    /// Segment loss added to the path's base loss rate, both directions.
    pub extra_loss: f64,
    /// Latency spike added to the round-trip time for the whole flow
    /// (modelling a congested or re-routed period).
    pub latency_spike: Option<SimDuration>,
    /// Cut the connection (client RST) once this many application payload
    /// bytes, summed over both directions, have been put on the wire.
    pub reset_after_bytes: Option<u64>,
}

impl FlowFaults {
    /// Combine two optional fault profiles: losses add, the larger spike
    /// wins, and the earlier reset point wins.
    pub fn merged(a: Option<FlowFaults>, b: Option<FlowFaults>) -> Option<FlowFaults> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(FlowFaults {
                extra_loss: a.extra_loss + b.extra_loss,
                latency_spike: match (a.latency_spike, b.latency_spike) {
                    (None, s) | (s, None) => s,
                    (Some(x), Some(y)) => Some(x.max(y)),
                },
                reset_after_bytes: match (a.reset_after_bytes, b.reset_after_bytes) {
                    (None, r) | (r, None) => r,
                    (Some(x), Some(y)) => Some(x.min(y)),
                },
            }),
        }
    }
}

/// Tunable outage statistics: how often outages start and how long they
/// last. The defaults reproduce the historical hard-coded values of
/// [`FaultPlan::lossy`] (mean 2 days between starts, median 3 minutes,
/// capped at an hour), so `lossy(seed, h)` remains byte-identical to all
/// earlier releases. `repro --outage-gap-days` / `--outage-secs` plumb
/// these from the CLI.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutageKnobs {
    /// Mean days between outage starts (exponential gaps).
    pub gap_days: f64,
    /// Median outage duration in seconds (log-normal, σ = 0.7).
    pub median_secs: f64,
    /// Hard cap on a single outage's duration in seconds.
    pub max_secs: f64,
}

impl Default for OutageKnobs {
    fn default() -> Self {
        OutageKnobs {
            gap_days: 2.0,
            median_secs: 180.0,
            max_secs: 3_600.0,
        }
    }
}

/// Draw `[start, end)` outage windows over `horizon_days` from `rng`:
/// exponential gaps between starts, log-normal durations, both shaped by
/// `knobs`. Windows are returned in start order and may overlap only if
/// a duration outruns the next gap (consumers treat the union).
fn draw_windows(rng: &mut Rng, horizon_days: u32, knobs: &OutageKnobs) -> Vec<(SimTime, SimTime)> {
    let mut windows = Vec::new();
    let horizon = f64::from(horizon_days);
    let rate = 1.0 / knobs.gap_days.max(1e-6);
    let mut t_days = 0.0;
    loop {
        t_days += dist::exponential(rng, rate);
        if t_days >= horizon {
            break;
        }
        let start = SimTime::from_micros((t_days * 86_400.0 * 1e6) as u64);
        let secs = dist::lognormal_median(rng, knobs.median_secs.max(1.0), 0.7).min(knobs.max_secs);
        windows.push((start, start + SimDuration::from_secs_f64(secs)));
    }
    windows
}

/// Whether `at` falls inside any `[start, end)` window of `windows`.
fn in_windows(windows: &[(SimTime, SimTime)], at: SimTime) -> bool {
    windows.iter().any(|&(lo, hi)| lo <= at && at < hi)
}

/// End of the window covering `at`, if any. When overlapping windows
/// chain together the latest covering end wins, so callers stepping to
/// the returned time always land outside the covering window set.
fn window_end(windows: &[(SimTime, SimTime)], at: SimTime) -> Option<SimTime> {
    windows
        .iter()
        .filter(|&&(lo, hi)| lo <= at && at < hi)
        .map(|&(_, hi)| hi)
        .max()
}

/// A seeded description of everything that goes wrong during a run.
///
/// All knobs are probabilities or magnitudes; the *decisions* (which flow
/// is degraded, when an outage starts) are drawn from forks of the plan
/// seed or from the caller's deterministic RNG streams, never from OS
/// entropy.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that a flow rides a degraded link window.
    pub link_degraded_p: f64,
    /// Extra segment loss applied to degraded flows (both directions).
    pub link_extra_loss: f64,
    /// Probability that a flow experiences a latency spike.
    pub latency_spike_p: f64,
    /// Median latency-spike magnitude in milliseconds (log-normal,
    /// σ = 0.5).
    pub latency_spike_ms: f64,
    /// Probability that a storage transfer is reset mid-flow.
    pub reset_p: f64,
    /// Probability that a device's notification connection churns through
    /// aborted fragments during a session.
    pub notify_churn_p: f64,
    /// Server unavailability windows (storage/meta front-ends answer 5xx
    /// or refuse connections), as `[start, end)` intervals in time order.
    pub outages: Vec<(SimTime, SimTime)>,
    /// Notification-server outage windows: long-poll connections drop and
    /// reconnects are refused, so clients fall back to periodic polling
    /// until the window closes (then reconnect with capped backoff).
    pub notify_outages: Vec<(SimTime, SimTime)>,
    /// Extra delay, in milliseconds, on notification pushes during
    /// [`FaultPlan::degraded_at`] windows (degraded notification plane:
    /// pushes arrive late instead of not at all).
    pub notify_delay_ms: f64,
    /// Metadata-server unavailability windows: commits are refused, so
    /// clients queue local changes offline (bounded queue, superseded
    /// edits coalesced) and flush after the window closes.
    pub meta_outages: Vec<(SimTime, SimTime)>,
    /// Partial-degradation windows: the control plane answers, but with
    /// elevated 5xx rates ([`FaultPlan::degraded_5xx_p`]) and delayed
    /// pushes ([`FaultPlan::notify_delay_ms`]).
    pub degraded: Vec<(SimTime, SimTime)>,
    /// Probability that a control-plane exchange inside a degraded window
    /// draws a 5xx and must be retried once.
    pub degraded_5xx_p: f64,
}

impl FaultPlan {
    /// The empty plan: no faults, no randomness consumed anywhere. With
    /// this plan every consumer takes its pre-fault code path, keeping the
    /// pipeline byte-for-byte identical to a build without fault support.
    pub fn none() -> Self {
        FaultPlan {
            link_degraded_p: 0.0,
            link_extra_loss: 0.0,
            latency_spike_p: 0.0,
            latency_spike_ms: 0.0,
            reset_p: 0.0,
            notify_churn_p: 0.0,
            outages: Vec::new(),
            notify_outages: Vec::new(),
            notify_delay_ms: 0.0,
            meta_outages: Vec::new(),
            degraded: Vec::new(),
            degraded_5xx_p: 0.0,
        }
    }

    /// A realistically lossy plan for a capture of `horizon_days` days:
    /// ~30 % of flows see 3 % extra loss, ~15 % a latency spike (median
    /// 80 ms), ~12 % of storage transfers are cut mid-flow, a quarter of
    /// sessions churn their notification connection, and server outages
    /// (median ≈ 3 min, roughly one every two days) are drawn from
    /// [`dist`] samplers seeded by `seed`.
    pub fn lossy(seed: u64, horizon_days: u32) -> Self {
        FaultPlan::lossy_tuned(seed, horizon_days, &OutageKnobs::default())
    }

    /// [`FaultPlan::lossy`] with the storage-outage statistics under the
    /// caller's control. With `OutageKnobs::default()` this is draw-for-
    /// draw identical to the historical `lossy`, so existing seeds keep
    /// producing the same plans.
    pub fn lossy_tuned(seed: u64, horizon_days: u32, knobs: &OutageKnobs) -> Self {
        let mut rng = Rng::new(seed).fork_named("faultplan");
        let outages = draw_windows(&mut rng, horizon_days, knobs);
        FaultPlan {
            link_degraded_p: 0.30,
            link_extra_loss: 0.03,
            latency_spike_p: 0.15,
            latency_spike_ms: 80.0,
            reset_p: 0.12,
            notify_churn_p: 0.25,
            outages,
            ..FaultPlan::none()
        }
    }

    /// A full chaos plan: everything [`FaultPlan::lossy_tuned`] injects,
    /// plus control-plane events — notification-server outages (somewhat
    /// more frequent than storage outages), metadata unavailability
    /// windows (rarer, longer), and partial-degradation windows with
    /// elevated 5xx rates and delayed pushes. Each control-plane window
    /// set is drawn from its own non-advancing fork of `seed`, so the
    /// storage-outage sequence matches `lossy_tuned(seed, ..)` exactly.
    pub fn chaos(seed: u64, horizon_days: u32, knobs: &OutageKnobs) -> Self {
        let mut plan = FaultPlan::lossy_tuned(seed, horizon_days, knobs);
        let mut notify_rng = Rng::new(seed).fork_named("faultplan-notify");
        plan.notify_outages = draw_windows(
            &mut notify_rng,
            horizon_days,
            &OutageKnobs {
                gap_days: knobs.gap_days * 0.5,
                median_secs: knobs.median_secs * 1.5,
                max_secs: knobs.max_secs,
            },
        );
        let mut meta_rng = Rng::new(seed).fork_named("faultplan-meta");
        plan.meta_outages = draw_windows(
            &mut meta_rng,
            horizon_days,
            &OutageKnobs {
                gap_days: knobs.gap_days * 1.5,
                median_secs: knobs.median_secs * 2.0,
                max_secs: knobs.max_secs,
            },
        );
        let mut degraded_rng = Rng::new(seed).fork_named("faultplan-degraded");
        plan.degraded = draw_windows(
            &mut degraded_rng,
            horizon_days,
            &OutageKnobs {
                gap_days: knobs.gap_days * 0.75,
                median_secs: knobs.median_secs * 4.0,
                max_secs: knobs.max_secs * 2.0,
            },
        );
        plan.notify_delay_ms = 1_500.0;
        plan.degraded_5xx_p = 0.25;
        plan
    }

    /// Whether the plan injects anything at all. Consumers gate every
    /// fault branch (and every extra RNG draw) on this.
    pub fn is_active(&self) -> bool {
        self.link_degraded_p > 0.0
            || self.link_extra_loss > 0.0
            || self.latency_spike_p > 0.0
            || self.reset_p > 0.0
            || self.notify_churn_p > 0.0
            || !self.outages.is_empty()
            || self.has_control_plane()
    }

    /// Whether any control-plane events (notification outages, metadata
    /// outages, degraded windows) are planned. Consumers gate the
    /// degraded-mode state machine — and every RNG draw it makes — on
    /// this, so plans without control-plane faults keep the pre-existing
    /// draw sequence.
    pub fn has_control_plane(&self) -> bool {
        !self.notify_outages.is_empty()
            || !self.meta_outages.is_empty()
            || !self.degraded.is_empty()
    }

    /// Whether the servers accept transactions at `at` (outside every
    /// outage window).
    pub fn server_available(&self, at: SimTime) -> bool {
        !in_windows(&self.outages, at)
    }

    /// Whether the notification plane accepts long-poll connections at
    /// `at`. When false, connected clients lose their push channel and
    /// fall back to periodic polling.
    pub fn notify_available(&self, at: SimTime) -> bool {
        !in_windows(&self.notify_outages, at)
    }

    /// End of the notification outage covering `at`, if one does.
    pub fn notify_outage_end(&self, at: SimTime) -> Option<SimTime> {
        window_end(&self.notify_outages, at)
    }

    /// First notification outage starting strictly after `at` (by window
    /// start), if any.
    pub fn next_notify_outage_after(&self, at: SimTime) -> Option<(SimTime, SimTime)> {
        self.notify_outages
            .iter()
            .filter(|&&(lo, _)| lo > at)
            .min_by_key(|&&(lo, _)| lo)
            .copied()
    }

    /// Whether the metadata plane commits transactions at `at`. When
    /// false, clients queue local changes offline and flush after the
    /// window closes.
    pub fn meta_available(&self, at: SimTime) -> bool {
        !in_windows(&self.meta_outages, at)
    }

    /// End of the metadata outage covering `at`, if one does.
    pub fn meta_outage_end(&self, at: SimTime) -> Option<SimTime> {
        window_end(&self.meta_outages, at)
    }

    /// Whether the control plane is in a partial-degradation window at
    /// `at` (elevated 5xx rates, delayed pushes).
    pub fn degraded_at(&self, at: SimTime) -> bool {
        in_windows(&self.degraded, at)
    }

    /// The instant after which the plan schedules no further events: the
    /// latest end across every outage/degradation window ([`SimTime::EPOCH`]
    /// when none are planned). The convergence oracle only judges a run
    /// after this point, once retry queues have had a chance to drain.
    pub fn quiescent_after(&self) -> SimTime {
        self.outages
            .iter()
            .chain(&self.notify_outages)
            .chain(&self.meta_outages)
            .chain(&self.degraded)
            .map(|&(_, hi)| hi)
            .max()
            .unwrap_or(SimTime::EPOCH)
    }

    /// Draw the link-level faults of one flow from `rng` (a stream
    /// dedicated to fault decisions). Returns `None` both when the plan is
    /// inactive — in which case **no randomness is consumed** — and when
    /// the dice leave this particular flow clean.
    pub fn link_faults(&self, rng: &mut Rng) -> Option<FlowFaults> {
        if !self.is_active() {
            return None;
        }
        let extra_loss = if self.link_degraded_p > 0.0 && rng.chance(self.link_degraded_p) {
            self.link_extra_loss
        } else {
            0.0
        };
        let latency_spike = if self.latency_spike_p > 0.0 && rng.chance(self.latency_spike_p) {
            let ms = dist::lognormal_median(rng, self.latency_spike_ms.max(1.0), 0.5);
            Some(SimDuration::from_secs_f64(ms / 1_000.0))
        } else {
            None
        };
        if extra_loss == 0.0 && latency_spike.is_none() {
            None
        } else {
            Some(FlowFaults {
                extra_loss,
                latency_spike,
                reset_after_bytes: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_consumes_no_randomness() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(plan.server_available(SimTime::from_secs(1)));
        let mut rng = Rng::new(7);
        let before = rng.clone().next_u64();
        assert_eq!(plan.link_faults(&mut rng), None);
        assert_eq!(rng.next_u64(), before, "inactive plan must not draw");
    }

    #[test]
    fn lossy_is_deterministic_per_seed() {
        let a = FaultPlan::lossy(42, 42);
        let b = FaultPlan::lossy(42, 42);
        assert_eq!(a, b);
        let c = FaultPlan::lossy(43, 42);
        assert_ne!(a.outages, c.outages);
        assert!(a.is_active());
    }

    #[test]
    fn outages_cover_server_availability() {
        let plan = FaultPlan::lossy(1, 42);
        assert!(!plan.outages.is_empty());
        let (lo, hi) = plan.outages[0];
        assert!(lo < hi);
        let mid = lo + SimDuration::from_micros(hi.saturating_since(lo).micros() / 2);
        assert!(!plan.server_available(mid));
        assert!(plan.server_available(hi));
    }

    #[test]
    fn outage_windows_are_bounded_by_horizon() {
        let plan = FaultPlan::lossy(5, 10);
        for &(lo, _) in &plan.outages {
            assert!(lo.micros() < 10 * 86_400 * 1_000_000);
        }
    }

    #[test]
    fn link_faults_sometimes_fire_for_lossy_plan() {
        let plan = FaultPlan::lossy(3, 42);
        let mut rng = Rng::new(9);
        let mut degraded = 0;
        let mut spiked = 0;
        for _ in 0..500 {
            if let Some(f) = plan.link_faults(&mut rng) {
                if f.extra_loss > 0.0 {
                    degraded += 1;
                }
                if f.latency_spike.is_some() {
                    spiked += 1;
                }
                assert_eq!(f.reset_after_bytes, None);
            }
        }
        assert!(degraded > 50, "degraded {degraded}");
        assert!(spiked > 20, "spiked {spiked}");
    }

    #[test]
    fn merged_combines_conservatively() {
        let a = FlowFaults {
            extra_loss: 0.01,
            latency_spike: Some(SimDuration::from_millis(50)),
            reset_after_bytes: Some(10_000),
        };
        let b = FlowFaults {
            extra_loss: 0.02,
            latency_spike: Some(SimDuration::from_millis(20)),
            reset_after_bytes: Some(5_000),
        };
        let m = FlowFaults::merged(Some(a), Some(b)).unwrap();
        assert!((m.extra_loss - 0.03).abs() < 1e-12);
        assert_eq!(m.latency_spike, Some(SimDuration::from_millis(50)));
        assert_eq!(m.reset_after_bytes, Some(5_000));
        assert_eq!(FlowFaults::merged(None, Some(a)), Some(a));
        assert_eq!(FlowFaults::merged(None, None), None);
    }

    #[test]
    fn lossy_tuned_with_defaults_matches_lossy() {
        assert_eq!(
            FaultPlan::lossy(42, 42),
            FaultPlan::lossy_tuned(42, 42, &OutageKnobs::default())
        );
    }

    #[test]
    fn lossy_tuned_knobs_change_outage_statistics() {
        let sparse = FaultPlan::lossy_tuned(
            7,
            42,
            &OutageKnobs {
                gap_days: 8.0,
                ..OutageKnobs::default()
            },
        );
        let dense = FaultPlan::lossy_tuned(
            7,
            42,
            &OutageKnobs {
                gap_days: 0.25,
                ..OutageKnobs::default()
            },
        );
        assert!(
            dense.outages.len() > sparse.outages.len(),
            "dense {} vs sparse {}",
            dense.outages.len(),
            sparse.outages.len()
        );
    }

    #[test]
    fn chaos_preserves_the_storage_outage_stream() {
        let knobs = OutageKnobs::default();
        let lossy = FaultPlan::lossy_tuned(11, 42, &knobs);
        let chaos = FaultPlan::chaos(11, 42, &knobs);
        assert_eq!(
            lossy.outages, chaos.outages,
            "control-plane draws must come from separate forks"
        );
        assert!(chaos.has_control_plane());
        assert!(!chaos.notify_outages.is_empty());
        assert!(!chaos.meta_outages.is_empty());
        assert!(!chaos.degraded.is_empty());
        assert!(chaos.degraded_5xx_p > 0.0);
        // Deterministic per seed.
        assert_eq!(chaos, FaultPlan::chaos(11, 42, &knobs));
        assert_ne!(
            chaos.notify_outages,
            FaultPlan::chaos(12, 42, &knobs).notify_outages
        );
    }

    #[test]
    fn control_plane_availability_queries_track_windows() {
        let plan = FaultPlan::chaos(3, 42, &OutageKnobs::default());
        let (lo, hi) = plan.notify_outages[0];
        let mid = lo + SimDuration::from_micros(hi.saturating_since(lo).micros() / 2);
        assert!(!plan.notify_available(mid));
        assert!(plan.notify_outage_end(mid).is_some());
        assert!(plan.notify_outage_end(mid).unwrap() >= hi);
        assert!(plan.notify_available(plan.notify_outage_end(mid).unwrap()));
        let (mlo, mhi) = plan.meta_outages[0];
        let mmid = mlo + SimDuration::from_micros(mhi.saturating_since(mlo).micros() / 2);
        assert!(!plan.meta_available(mmid));
        assert!(plan.meta_available(plan.meta_outage_end(mmid).unwrap()));
        let (dlo, dhi) = plan.degraded[0];
        let dmid = dlo + SimDuration::from_micros(dhi.saturating_since(dlo).micros() / 2);
        assert!(plan.degraded_at(dmid));
        // next_notify_outage_after steps strictly forward.
        let next = plan.next_notify_outage_after(lo).expect("more outages");
        assert!(next.0 > lo);
    }

    #[test]
    fn quiescence_bounds_every_window() {
        let none = FaultPlan::none();
        assert_eq!(none.quiescent_after(), SimTime::EPOCH);
        assert!(!none.has_control_plane());
        let plan = FaultPlan::chaos(5, 21, &OutageKnobs::default());
        let q = plan.quiescent_after();
        for &(_, hi) in plan
            .outages
            .iter()
            .chain(&plan.notify_outages)
            .chain(&plan.meta_outages)
            .chain(&plan.degraded)
        {
            assert!(hi <= q);
        }
        assert!(plan.notify_available(q));
        assert!(plan.meta_available(q));
        assert!(plan.server_available(q));
        assert!(!plan.degraded_at(q));
    }
}

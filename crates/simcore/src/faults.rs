//! Deterministic fault injection: the seeded plan describing how a run's
//! network and servers misbehave.
//!
//! Real vantage-point traces are full of imperfect transfers — last-mile
//! loss, latency spikes, connections cut mid-flow by gateways, and storage
//! front-ends that briefly refuse service. A [`FaultPlan`] captures those
//! knobs as a *pure value* derived from a single seed via [`crate::dist`]
//! samplers, so a faulty simulation stays a deterministic function of
//! `(config, seed, plan)`: the same plan produces bit-identical faults on
//! every run, and [`FaultPlan::none`] disables every code path that would
//! consume randomness, leaving fault-free runs byte-for-byte unchanged.
//!
//! The plan is consumed at two levels:
//!
//! * per-flow link faults ([`FaultPlan::link_faults`]) — extra segment
//!   loss and latency spikes that `tcpmodel` applies on top of the path's
//!   base loss, plus mid-flow resets that truncate the transfer,
//! * server availability windows ([`FaultPlan::server_available`]) — the
//!   5xx/outage periods the sync client must back off from and retry.

use crate::dist;
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// Faults affecting one TCP connection, derived from a [`FaultPlan`].
///
/// `None`-valued members leave the corresponding behaviour untouched; a
/// fully default `FlowFaults` is equivalent to no fault profile at all.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlowFaults {
    /// Segment loss added to the path's base loss rate, both directions.
    pub extra_loss: f64,
    /// Latency spike added to the round-trip time for the whole flow
    /// (modelling a congested or re-routed period).
    pub latency_spike: Option<SimDuration>,
    /// Cut the connection (client RST) once this many application payload
    /// bytes, summed over both directions, have been put on the wire.
    pub reset_after_bytes: Option<u64>,
}

impl FlowFaults {
    /// Combine two optional fault profiles: losses add, the larger spike
    /// wins, and the earlier reset point wins.
    pub fn merged(a: Option<FlowFaults>, b: Option<FlowFaults>) -> Option<FlowFaults> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(FlowFaults {
                extra_loss: a.extra_loss + b.extra_loss,
                latency_spike: match (a.latency_spike, b.latency_spike) {
                    (None, s) | (s, None) => s,
                    (Some(x), Some(y)) => Some(x.max(y)),
                },
                reset_after_bytes: match (a.reset_after_bytes, b.reset_after_bytes) {
                    (None, r) | (r, None) => r,
                    (Some(x), Some(y)) => Some(x.min(y)),
                },
            }),
        }
    }
}

/// A seeded description of everything that goes wrong during a run.
///
/// All knobs are probabilities or magnitudes; the *decisions* (which flow
/// is degraded, when an outage starts) are drawn from forks of the plan
/// seed or from the caller's deterministic RNG streams, never from OS
/// entropy.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that a flow rides a degraded link window.
    pub link_degraded_p: f64,
    /// Extra segment loss applied to degraded flows (both directions).
    pub link_extra_loss: f64,
    /// Probability that a flow experiences a latency spike.
    pub latency_spike_p: f64,
    /// Median latency-spike magnitude in milliseconds (log-normal,
    /// σ = 0.5).
    pub latency_spike_ms: f64,
    /// Probability that a storage transfer is reset mid-flow.
    pub reset_p: f64,
    /// Probability that a device's notification connection churns through
    /// aborted fragments during a session.
    pub notify_churn_p: f64,
    /// Server unavailability windows (storage/meta front-ends answer 5xx
    /// or refuse connections), as `[start, end)` intervals in time order.
    pub outages: Vec<(SimTime, SimTime)>,
}

impl FaultPlan {
    /// The empty plan: no faults, no randomness consumed anywhere. With
    /// this plan every consumer takes its pre-fault code path, keeping the
    /// pipeline byte-for-byte identical to a build without fault support.
    pub fn none() -> Self {
        FaultPlan {
            link_degraded_p: 0.0,
            link_extra_loss: 0.0,
            latency_spike_p: 0.0,
            latency_spike_ms: 0.0,
            reset_p: 0.0,
            notify_churn_p: 0.0,
            outages: Vec::new(),
        }
    }

    /// A realistically lossy plan for a capture of `horizon_days` days:
    /// ~30 % of flows see 3 % extra loss, ~15 % a latency spike (median
    /// 80 ms), ~12 % of storage transfers are cut mid-flow, a quarter of
    /// sessions churn their notification connection, and server outages
    /// (median ≈ 3 min, roughly one every two days) are drawn from
    /// [`dist`] samplers seeded by `seed`.
    pub fn lossy(seed: u64, horizon_days: u32) -> Self {
        let mut rng = Rng::new(seed).fork_named("faultplan");
        let mut outages = Vec::new();
        let horizon = f64::from(horizon_days);
        let mut t_days = 0.0;
        loop {
            // Exponential gaps, mean 2 days between outage starts.
            t_days += dist::exponential(&mut rng, 0.5);
            if t_days >= horizon {
                break;
            }
            let start = SimTime::from_micros((t_days * 86_400.0 * 1e6) as u64);
            let secs = dist::lognormal_median(&mut rng, 180.0, 0.7).min(3_600.0);
            outages.push((start, start + SimDuration::from_secs_f64(secs)));
        }
        FaultPlan {
            link_degraded_p: 0.30,
            link_extra_loss: 0.03,
            latency_spike_p: 0.15,
            latency_spike_ms: 80.0,
            reset_p: 0.12,
            notify_churn_p: 0.25,
            outages,
        }
    }

    /// Whether the plan injects anything at all. Consumers gate every
    /// fault branch (and every extra RNG draw) on this.
    pub fn is_active(&self) -> bool {
        self.link_degraded_p > 0.0
            || self.link_extra_loss > 0.0
            || self.latency_spike_p > 0.0
            || self.reset_p > 0.0
            || self.notify_churn_p > 0.0
            || !self.outages.is_empty()
    }

    /// Whether the servers accept transactions at `at` (outside every
    /// outage window).
    pub fn server_available(&self, at: SimTime) -> bool {
        !self.outages.iter().any(|&(lo, hi)| lo <= at && at < hi)
    }

    /// Draw the link-level faults of one flow from `rng` (a stream
    /// dedicated to fault decisions). Returns `None` both when the plan is
    /// inactive — in which case **no randomness is consumed** — and when
    /// the dice leave this particular flow clean.
    pub fn link_faults(&self, rng: &mut Rng) -> Option<FlowFaults> {
        if !self.is_active() {
            return None;
        }
        let extra_loss = if self.link_degraded_p > 0.0 && rng.chance(self.link_degraded_p) {
            self.link_extra_loss
        } else {
            0.0
        };
        let latency_spike = if self.latency_spike_p > 0.0 && rng.chance(self.latency_spike_p) {
            let ms = dist::lognormal_median(rng, self.latency_spike_ms.max(1.0), 0.5);
            Some(SimDuration::from_secs_f64(ms / 1_000.0))
        } else {
            None
        };
        if extra_loss == 0.0 && latency_spike.is_none() {
            None
        } else {
            Some(FlowFaults {
                extra_loss,
                latency_spike,
                reset_after_bytes: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_consumes_no_randomness() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(plan.server_available(SimTime::from_secs(1)));
        let mut rng = Rng::new(7);
        let before = rng.clone().next_u64();
        assert_eq!(plan.link_faults(&mut rng), None);
        assert_eq!(rng.next_u64(), before, "inactive plan must not draw");
    }

    #[test]
    fn lossy_is_deterministic_per_seed() {
        let a = FaultPlan::lossy(42, 42);
        let b = FaultPlan::lossy(42, 42);
        assert_eq!(a, b);
        let c = FaultPlan::lossy(43, 42);
        assert_ne!(a.outages, c.outages);
        assert!(a.is_active());
    }

    #[test]
    fn outages_cover_server_availability() {
        let plan = FaultPlan::lossy(1, 42);
        assert!(!plan.outages.is_empty());
        let (lo, hi) = plan.outages[0];
        assert!(lo < hi);
        let mid = lo + SimDuration::from_micros(hi.saturating_since(lo).micros() / 2);
        assert!(!plan.server_available(mid));
        assert!(plan.server_available(hi));
    }

    #[test]
    fn outage_windows_are_bounded_by_horizon() {
        let plan = FaultPlan::lossy(5, 10);
        for &(lo, _) in &plan.outages {
            assert!(lo.micros() < 10 * 86_400 * 1_000_000);
        }
    }

    #[test]
    fn link_faults_sometimes_fire_for_lossy_plan() {
        let plan = FaultPlan::lossy(3, 42);
        let mut rng = Rng::new(9);
        let mut degraded = 0;
        let mut spiked = 0;
        for _ in 0..500 {
            if let Some(f) = plan.link_faults(&mut rng) {
                if f.extra_loss > 0.0 {
                    degraded += 1;
                }
                if f.latency_spike.is_some() {
                    spiked += 1;
                }
                assert_eq!(f.reset_after_bytes, None);
            }
        }
        assert!(degraded > 50, "degraded {degraded}");
        assert!(spiked > 20, "spiked {spiked}");
    }

    #[test]
    fn merged_combines_conservatively() {
        let a = FlowFaults {
            extra_loss: 0.01,
            latency_spike: Some(SimDuration::from_millis(50)),
            reset_after_bytes: Some(10_000),
        };
        let b = FlowFaults {
            extra_loss: 0.02,
            latency_spike: Some(SimDuration::from_millis(20)),
            reset_after_bytes: Some(5_000),
        };
        let m = FlowFaults::merged(Some(a), Some(b)).unwrap();
        assert!((m.extra_loss - 0.03).abs() < 1e-12);
        assert_eq!(m.latency_spike, Some(SimDuration::from_millis(50)));
        assert_eq!(m.reset_after_bytes, Some(5_000));
        assert_eq!(FlowFaults::merged(None, Some(a)), Some(a));
        assert_eq!(FlowFaults::merged(None, None), None);
    }
}

//! Distribution samplers.
//!
//! The workload and network models need heavy-tailed and skewed
//! distributions (file sizes, session lengths, think times, popularity).
//! Rather than pulling in `rand_distr`, the handful of samplers used by the
//! paper reproduction are implemented here on top of [`crate::Rng`]; each is
//! a few lines and unit-tested against its analytic moments.

use crate::rng::Rng;

/// Exponential distribution with the given rate `lambda` (mean `1/lambda`).
pub fn exponential(rng: &mut Rng, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "exponential: lambda must be positive");
    -rng.f64_open().ln() / lambda
}

/// Standard normal sample via the Box–Muller transform.
pub fn std_normal(rng: &mut Rng) -> f64 {
    let u1 = rng.f64_open();
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal distribution with mean `mu` and standard deviation `sigma`.
pub fn normal(rng: &mut Rng, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "normal: sigma must be non-negative");
    mu + sigma * std_normal(rng)
}

/// Log-normal distribution parameterised by the underlying normal's
/// `mu` and `sigma` (i.e. `exp(N(mu, sigma^2))`).
pub fn lognormal(rng: &mut Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Log-normal parameterised by its own *median* and the underlying sigma.
/// The median of `exp(N(mu, s^2))` is `exp(mu)`, so this is just a more
/// readable constructor for workload models.
pub fn lognormal_median(rng: &mut Rng, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "lognormal_median: median must be positive");
    lognormal(rng, median.ln(), sigma)
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
pub fn pareto(rng: &mut Rng, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0 && alpha > 0.0, "pareto: invalid parameters");
    x_min / rng.f64_open().powf(1.0 / alpha)
}

/// Bounded Pareto on `[lo, hi]` with shape `alpha` (inverse-CDF sampling).
pub fn bounded_pareto(rng: &mut Rng, lo: f64, hi: f64, alpha: f64) -> f64 {
    assert!(
        lo > 0.0 && hi > lo && alpha > 0.0,
        "bounded_pareto: invalid parameters"
    );
    let u = rng.f64();
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // Inverse CDF of the truncated Pareto.
    (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
}

/// Geometric distribution: number of Bernoulli(p) failures before the first
/// success, in `{0, 1, 2, …}`.
pub fn geometric(rng: &mut Rng, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric: p out of range");
    if p >= 1.0 {
        return 0;
    }
    (rng.f64_open().ln() / (1.0 - p).ln()).floor() as u64
}

/// Poisson distribution with mean `lambda` (Knuth's method; adequate for
/// the small means used in the workload models).
pub fn poisson(rng: &mut Rng, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson: negative lambda");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation for large means.
        return normal(rng, lambda, lambda.sqrt()).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.f64();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Zipf-like rank sampler over `[0, n)` with exponent `s`, implemented by
/// precomputing the CDF. Suitable for moderate `n` (we use it for file and
/// folder popularity).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf: n must be positive");
        assert!(s > 0.0, "Zipf: s must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Weighted categorical sampler over arbitrary items.
#[derive(Clone, Debug)]
pub struct Categorical<T: Clone> {
    items: Vec<T>,
    cdf: Vec<f64>,
}

impl<T: Clone> Categorical<T> {
    /// Build from `(item, weight)` pairs. Weights must be non-negative with
    /// a positive sum.
    pub fn new(pairs: &[(T, f64)]) -> Self {
        assert!(!pairs.is_empty(), "Categorical: empty");
        let mut items = Vec::with_capacity(pairs.len());
        let mut cdf = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (item, w) in pairs {
            assert!(*w >= 0.0, "Categorical: negative weight");
            acc += *w;
            items.push(item.clone());
            cdf.push(acc);
        }
        assert!(acc > 0.0, "Categorical: zero total weight");
        for v in &mut cdf {
            *v /= acc;
        }
        Categorical { items, cdf }
    }

    /// Sample an item.
    pub fn sample(&self, rng: &mut Rng) -> &T {
        let u = rng.f64();
        let idx = match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.items.len() - 1),
        };
        &self.items[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(mut f: impl FnMut(&mut Rng) -> f64, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| f(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean() {
        let m = mean_of(|r| exponential(r, 0.5), 200_000, 1);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(2);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_matches() {
        let mut rng = Rng::new(3);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n)
            .map(|_| lognormal_median(&mut rng, 100.0, 1.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median / 100.0 - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn pareto_respects_x_min() {
        let mut rng = Rng::new(4);
        for _ in 0..10_000 {
            assert!(pareto(&mut rng, 5.0, 1.5) >= 5.0);
        }
    }

    #[test]
    fn bounded_pareto_in_range() {
        let mut rng = Rng::new(5);
        for _ in 0..10_000 {
            let x = bounded_pareto(&mut rng, 1.0, 1000.0, 1.2);
            assert!((1.0..=1000.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let mut rng = Rng::new(6);
        let n = 100_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| bounded_pareto(&mut rng, 1.0, 10_000.0, 1.1))
            .collect();
        let below10 = xs.iter().filter(|&&x| x < 10.0).count() as f64 / n as f64;
        // For alpha=1.1 the mass below 10x the minimum is large but not total.
        assert!(below10 > 0.8 && below10 < 0.95, "below10 {below10}");
    }

    #[test]
    fn geometric_mean() {
        let m = mean_of(|r| geometric(r, 0.25) as f64, 100_000, 7);
        // mean of failures-before-success = (1-p)/p = 3
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let m = mean_of(|r| poisson(r, 4.0) as f64, 100_000, 8);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        let m = mean_of(|r| poisson(r, 80.0) as f64, 50_000, 9);
        assert!((m - 80.0).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::new(10);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn categorical_proportions() {
        let c = Categorical::new(&[("a", 1.0), ("b", 3.0)]);
        let mut rng = Rng::new(11);
        let mut b = 0;
        for _ in 0..100_000 {
            if *c.sample(&mut rng) == "b" {
                b += 1;
            }
        }
        let frac = b as f64 / 100_000.0;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
    }
}

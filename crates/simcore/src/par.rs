//! Deterministic fork-join execution.
//!
//! This module is the **only** place in the simulation crates where OS
//! threads are legal (simlint's `par-exec` rule enforces this). It exists
//! to make `repro all --jobs N` fast without touching the determinism
//! contract: a parallel run must be **byte-identical** to the serial run,
//! for every artifact, at every `N`.
//!
//! The contract rests on three rules, each visible in this API:
//!
//! 1. **Shards are pure.** A shard is an independent unit of simulation
//!    (for the reproduction: one contiguous *household range* of one
//!    vantage-point capture — see [`household_stream`] for why the cut
//!    below the capture level is sound). The closure handed to
//!    [`fork_join`] must be a pure
//!    function of its shard descriptor — no shared mutable state, no
//!    wall-clock reads, no cross-shard communication. Under that
//!    assumption the schedule (which worker runs which shard, and when)
//!    cannot influence any output bit.
//! 2. **Seed streams are derived, never shared.** Each shard draws its
//!    randomness from its own [`shard_stream`]: a SplitMix64-seeded
//!    xoshiro256** stream derived from `(master_seed, shard_id)`. Two
//!    shards never consume from one generator, so the number of draws one
//!    shard makes cannot perturb another — the same property
//!    [`Rng::fork`](crate::rng::Rng::fork) gives components *within* a
//!    shard.
//! 3. **Merge order is shard order.** [`fork_join`] returns outputs
//!    indexed by shard position regardless of completion order; callers
//!    concatenate in that order. Workers claim shards greedily from the
//!    front of the slice, so callers that sort shards by descending
//!    expected cost get LPT ("longest processing time first") scheduling
//!    and a makespan within 4/3 of optimal — without affecting output.
//!
//! `--jobs 1` is not a degenerate thread pool: the executor runs the
//! shards inline on the calling thread, so the serial path exercises zero
//! synchronisation primitives and remains valid under the strictest
//! reading of the no-threads rule.

use crate::rng::{fnv1a, Rng};
use std::thread;

/// Stable identity of one shard of a sharded simulation.
///
/// The id doubles as the label from which the shard's independent seed
/// stream is derived (see [`shard_stream`]), so it must be a pure function
/// of *what the shard simulates* (vantage point, day window, client
/// version), never of scheduling (worker index, shard count, `--jobs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u64);

impl ShardId {
    /// Derive a shard id from a stable textual label (FNV-1a, the same
    /// hash [`Rng::fork_named`](crate::rng::Rng::fork_named) uses — so a
    /// shard labelled with a vantage-point name reproduces the stream
    /// that `Rng::new(seed).fork_named(name)` has always produced).
    pub fn from_label(label: &str) -> ShardId {
        ShardId(fnv1a(label.as_bytes()))
    }
}

/// The independent seed stream of one shard: a xoshiro256** generator
/// whose state is derived from `(master_seed, shard_id)` through
/// SplitMix64 (via [`Rng::new`] + [`Rng::fork`]).
///
/// Distinct shard ids yield statistically independent streams; the same
/// `(master_seed, shard_id)` pair yields the same stream on every run,
/// every machine, and every `--jobs` value.
pub fn shard_stream(master_seed: u64, id: ShardId) -> Rng {
    Rng::new(master_seed).fork(id.0)
}

/// The independent seed stream of one *household* within a capture shard:
/// `shard_stream(seed, capture)` narrowed first to the capture's household
/// plane (`fork_named("households")`) and then to one household index.
///
/// This is the derivation that makes **sub-capture sharding** sound: a
/// household's stream is a pure function of `(capture seed, capture id,
/// household index)` — stable shard identity only. It does not depend on
/// which household-range shard the household lands in, how many ranges the
/// capture was cut into, which worker runs it, or `--jobs`, so any
/// contiguous-range partition of the population replays identical
/// randomness per household and a range merge in household order is
/// byte-identical to the serial sweep (simlint's `shard-seed` rule guards
/// the "stable identity only" half of this contract).
pub fn household_stream(capture_seed: u64, capture: ShardId, household: u64) -> Rng {
    shard_stream(capture_seed, capture)
        .fork_named("households")
        .fork(household)
}

/// Number of worker threads the host can usefully run (for `--jobs 0` =
/// "auto"). Falls back to 1 when the parallelism query fails. The value
/// never influences simulation output — only wall-clock time.
pub fn available_jobs() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `run(i, &shards[i])` for every shard on up to `jobs` workers and
/// return the outputs **in shard order** (the deterministic merge).
///
/// * `jobs <= 1` (or a single shard) runs everything inline, in order, on
///   the calling thread — no threads, no atomics.
/// * Otherwise `min(jobs, shards.len())` scoped workers claim shard
///   indices greedily from the front; each output lands in the slot of
///   its shard index, so the returned `Vec` is independent of scheduling.
/// * A panicking shard propagates its payload to the caller after all
///   workers have been joined (no output is silently dropped).
pub fn fork_join<I, T, F>(jobs: usize, shards: &[I], run: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    if shards.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, shards.len());
    if jobs == 1 {
        return shards.iter().enumerate().map(|(i, s)| run(i, s)).collect();
    }

    // Work queue: a single monotone cursor. It schedules — it never
    // feeds data between shards, so it is outside the determinism
    // boundary by rule 1 above.
    // simlint: allow(par-exec) — scheduling cursor only; claims shard indices, never carries shard data
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..shards.len()).map(|_| None).collect();
    let mut panic_payload = None;

    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            handles.push(scope.spawn(|| {
                let mut produced: Vec<(usize, T)> = Vec::new();
                loop {
                    // simlint: allow(par-exec) — scheduling cursor only; claims shard indices, never carries shard data
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= shards.len() {
                        break;
                    }
                    produced.push((i, run(i, &shards[i])));
                }
                produced
            }));
        }
        for h in handles {
            match h.join() {
                Ok(batch) => {
                    for (i, out) in batch {
                        slots[i] = Some(out);
                    }
                }
                // Keep joining the remaining workers (scope would block
                // on them anyway), then re-raise the first panic.
                Err(payload) => panic_payload = Some(payload),
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(out) => out,
            None => unreachable!("shard {i} claimed by no worker"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_order_is_shard_order_for_every_job_count() {
        let shards: Vec<u64> = (0..23).collect();
        let serial = fork_join(1, &shards, |i, &s| (i as u64) * 1000 + s * s);
        for jobs in [0, 1, 2, 3, 4, 8, 64] {
            let par = fork_join(jobs, &shards, |i, &s| (i as u64) * 1000 + s * s);
            assert_eq!(par, serial, "jobs={jobs} must merge in shard order");
        }
    }

    #[test]
    fn uneven_shards_still_merge_deterministically() {
        // Make early shards slow so late shards finish first.
        let shards: Vec<u32> = vec![400_000, 200_000, 10, 10, 10, 10, 10, 10];
        let work = |_: usize, &n: &u32| -> u64 { (0..n).map(|x| x as u64 % 7).sum() };
        let serial = fork_join(1, &shards, work);
        let par = fork_join(4, &shards, work);
        assert_eq!(par, serial);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let shards: Vec<u8> = Vec::new();
        let out: Vec<u8> = fork_join(4, &shards, |_, &s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn shard_stream_matches_the_named_fork_derivation() {
        // A shard labelled with a vantage-point name must reproduce the
        // stream the workload driver has always derived for that vantage.
        let mut a = shard_stream(2012, ShardId::from_label("Campus 1"));
        let mut b = Rng::new(2012).fork_named("Campus 1");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn household_streams_are_independent_and_range_free() {
        // Pure function of (capture seed, capture id, household index)…
        let id = ShardId::from_label("Home 1");
        let mut a = household_stream(2012, id, 17);
        let mut a2 = household_stream(2012, id, 17);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(va[0], a2.next_u64());
        // …distinct per household…
        let mut b = household_stream(2012, id, 18);
        assert_ne!(va[0], b.next_u64());
        // …and exactly the driver's manual derivation (root stream →
        // "households" plane → per-household fork).
        let mut manual = shard_stream(2012, id).fork_named("households").fork(17);
        for &v in &va {
            assert_eq!(v, manual.next_u64());
        }
    }

    #[test]
    fn shard_streams_are_independent() {
        let mut a = shard_stream(7, ShardId(1));
        let mut b = shard_stream(7, ShardId(2));
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // …and a pure function of (master_seed, shard_id).
        let mut a2 = shard_stream(7, ShardId(1));
        assert_eq!(va[0], a2.next_u64());
    }

    #[test]
    fn worker_panic_propagates() {
        let shards: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            fork_join(3, &shards, |_, &s| {
                if s == 5 {
                    panic!("shard 5 exploded");
                }
                s
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("shard 5"), "payload was: {msg}");
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }
}

//! Discrete-event simulation core shared by every crate in the workspace.
//!
//! This crate provides the three things a reproducible network simulation
//! needs and nothing more:
//!
//! * [`time`] — a microsecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]) with calendar helpers anchored at the paper's capture
//!   start (2012-03-24 00:00 local time),
//! * [`rng`] — a deterministic, forkable random number generator
//!   ([`rng::Rng`]) so that every experiment is a pure function of a single
//!   `u64` seed,
//! * [`events`] — a monotonic event queue ([`events::EventQueue`]) with
//!   stable FIFO ordering among simultaneous events,
//! * [`faults`] — seeded fault plans ([`faults::FaultPlan`]): per-link loss,
//!   latency spikes, mid-flow resets, and server outage windows, all drawn
//!   deterministically so faulty runs stay reproducible,
//! * [`dist`] — distribution samplers (exponential, log-normal, Pareto,
//!   Zipf, categorical, …) built on [`rng::Rng`] rather than external crates,
//! * [`stats`] — small statistics helpers (quantiles, CDFs, means) used by
//!   the analysis layer and by tests,
//! * [`json`] — a minimal std-only JSON value/emitter/parser with exact
//!   `f64` round-tripping (the workspace's replacement for `serde_json`),
//! * [`proptest`](mod@proptest) — a deterministic property-testing harness driven by
//!   [`rng::Rng`] fork streams (the replacement for the `proptest` crate),
//! * [`par`] — the deterministic fork-join executor: pure shards with
//!   per-shard SplitMix64 seed streams, merged in shard order, so
//!   parallel runs are byte-identical to serial runs at any `--jobs`.
//!
//! No OS entropy or wall-clock time is used anywhere in this crate, and
//! threads exist only inside [`par`] under its byte-identity contract
//! (simlint's `par-exec` rule pins this): simulations are bit-for-bit
//! reproducible across runs, machines, and worker counts. The whole
//! workspace builds offline: this crate (like every other crate in the
//! tree) depends on nothing outside the standard library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod events;
pub mod faults;
pub mod json;
pub mod par;
pub mod proptest;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use par::ShardId;
pub use rng::Rng;
pub use time::{SimDuration, SimTime};

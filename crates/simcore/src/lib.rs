//! Discrete-event simulation core shared by every crate in the workspace.
//!
//! This crate provides the three things a reproducible network simulation
//! needs and nothing more:
//!
//! * [`time`] — a microsecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]) with calendar helpers anchored at the paper's capture
//!   start (2012-03-24 00:00 local time),
//! * [`rng`] — a deterministic, forkable random number generator
//!   ([`rng::Rng`]) so that every experiment is a pure function of a single
//!   `u64` seed,
//! * [`events`] — a monotonic event queue ([`events::EventQueue`]) with
//!   stable FIFO ordering among simultaneous events,
//! * [`faults`] — seeded fault plans ([`faults::FaultPlan`]): per-link loss,
//!   latency spikes, mid-flow resets, and server outage windows, all drawn
//!   deterministically so faulty runs stay reproducible,
//! * [`dist`] — distribution samplers (exponential, log-normal, Pareto,
//!   Zipf, categorical, …) built on [`rng::Rng`] rather than external crates,
//! * [`stats`] — small statistics helpers (quantiles, CDFs, means) used by
//!   the analysis layer and by tests,
//! * [`json`] — a minimal std-only JSON value/emitter/parser with exact
//!   `f64` round-tripping (the workspace's replacement for `serde_json`),
//! * [`proptest`] — a deterministic property-testing harness driven by
//!   [`rng::Rng`] fork streams (the replacement for the `proptest` crate).
//!
//! No OS entropy, wall-clock time, or threads are used anywhere in this
//! crate: simulations are bit-for-bit reproducible across runs and machines.
//! The whole workspace builds offline: this crate (like every other crate in
//! the tree) depends on nothing outside the standard library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod events;
pub mod faults;
pub mod json;
pub mod proptest;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use rng::Rng;
pub use time::{SimDuration, SimTime};

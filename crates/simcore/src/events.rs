//! The event queue driving the discrete-event simulation.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`] with a stable
//! FIFO tiebreak: events scheduled for the same instant pop in scheduling
//! order. This removes a whole class of nondeterminism bugs in which two
//! simultaneous events race depending on heap internals.
//!
//! The tiebreak is load-bearing for fault injection: retries, reconnects
//! and backoff expiries routinely collapse onto identical timestamps
//! (an "event storm" after an outage window closes), and reproducible
//! faulty runs require those events to drain in exactly the order they
//! were scheduled — including events scheduled *between* pops at the same
//! instant, which queue behind their same-time predecessors.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: min-heap by `(time, seq)`.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on top of BinaryHeap's max-heap.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// The queue also tracks the current simulated time: popping an event
/// advances the clock to that event's timestamp, and scheduling into the
/// past is a logic error that panics in debug and clamps in release.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at the capture epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::EPOCH,
        }
    }

    /// Current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling before `now()` indicates a model bug; it panics in debug
    /// builds and is clamped to `now()` in release builds so a long
    /// simulation degrades rather than aborts.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next event, advancing the simulated clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Pop the next event only if it is scheduled at or before `limit`.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= limit {
            self.pop()
        } else {
            None
        }
    }

    /// Drain and discard all pending events (the clock is left unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fault_storm_interleaved_scheduling_stays_fifo() {
        // Pops interleaved with same-instant scheduling (a retry storm at
        // the end of an outage window): later arrivals queue behind every
        // same-time event scheduled before them, even across pops.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(60);
        q.schedule(t, 0);
        q.schedule(t, 1);
        assert_eq!(q.pop(), Some((t, 0)));
        q.schedule(t, 2); // scheduled after 1, same instant
        q.schedule(t, 3);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
        q.schedule(t, 4);
        assert_eq!(q.pop(), Some((t, 3)));
        assert_eq!(q.pop(), Some((t, 4)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        assert_eq!(q.now(), SimTime::EPOCH);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(10), 2);
        assert_eq!(q.pop_until(SimTime::from_secs(5)).map(|(_, e)| e), Some(1));
        assert_eq!(q.pop_until(SimTime::from_secs(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "first");
        let (t, _) = q.pop().unwrap();
        // Schedule relative to the popped time.
        q.schedule(t + SimDuration::from_secs(1), "second");
        q.schedule(t + SimDuration::from_millis(500), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "second");
    }
}

//! Simulated time.
//!
//! The simulated clock counts microseconds from the *capture epoch*,
//! 2012-03-24 00:00:00 local time — the first day of the paper's trace
//! collection. The epoch fell on a **Saturday**, which the calendar helpers
//! rely on when classifying working days for the diurnal analyses
//! (Figs. 14–15 of the paper).

use crate::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Microseconds in one day.
pub const MICROS_PER_DAY: u64 = 86_400 * MICROS_PER_SEC;

/// Weekday of the capture epoch (2012-03-24). Used by [`SimTime::weekday`].
const EPOCH_WEEKDAY: Weekday = Weekday::Sat;

/// An instant in simulated time, in microseconds since the capture epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// Day of week, for seasonality modelling.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum Weekday {
    Mon,
    Tue,
    Wed,
    Thu,
    Fri,
    Sat,
    Sun,
}

impl Weekday {
    /// All weekdays, Monday-first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
        Weekday::Sat,
        Weekday::Sun,
    ];

    /// Monday-based index (Mon = 0 … Sun = 6).
    pub fn index(self) -> usize {
        match self {
            Weekday::Mon => 0,
            Weekday::Tue => 1,
            Weekday::Wed => 2,
            Weekday::Thu => 3,
            Weekday::Fri => 4,
            Weekday::Sat => 5,
            Weekday::Sun => 6,
        }
    }

    /// True for Saturday and Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Sat | Weekday::Sun)
    }
}

impl SimTime {
    /// The capture epoch itself (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from raw microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from a day index and an offset within that day.
    pub const fn from_day_offset(day: u32, offset: SimDuration) -> Self {
        SimTime(day as u64 * MICROS_PER_DAY + offset.0)
    }

    /// Raw microseconds since the epoch.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Day index since the capture start (day 0 = 2012-03-24).
    pub const fn day(self) -> u32 {
        (self.0 / MICROS_PER_DAY) as u32
    }

    /// Hour of day, 0–23.
    pub const fn hour(self) -> u32 {
        ((self.0 % MICROS_PER_DAY) / (3_600 * MICROS_PER_SEC)) as u32
    }

    /// Offset within the current day.
    pub const fn time_of_day(self) -> SimDuration {
        SimDuration(self.0 % MICROS_PER_DAY)
    }

    /// Day of week of this instant.
    pub fn weekday(self) -> Weekday {
        let idx = (EPOCH_WEEKDAY.index() + self.day() as usize) % 7;
        Weekday::ALL[idx]
    }

    /// True when the instant falls on a Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        self.weekday().is_weekend()
    }

    /// Saturating subtraction; returns zero duration if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Construct from hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * MICROS_PER_SEC)
    }

    /// Construct from days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * MICROS_PER_DAY)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds (truncating).
    pub const fn secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float (rounds to the nearest microsecond).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

// JSON wire format (unchanged from the serde derives these replace): both
// newtypes serialise as their raw microsecond count, `Weekday` as its name.

impl ToJson for SimTime {
    fn to_json(&self) -> Json {
        Json::U64(self.0)
    }
}

impl FromJson for SimTime {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u64::from_json(v).map(SimTime)
    }
}

impl ToJson for SimDuration {
    fn to_json(&self) -> Json {
        Json::U64(self.0)
    }
}

impl FromJson for SimDuration {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u64::from_json(v).map(SimDuration)
    }
}

impl Weekday {
    /// Short English name (`"Mon"`, …), as used on the JSON wire.
    pub fn name(self) -> &'static str {
        match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        }
    }
}

impl ToJson for Weekday {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for Weekday {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = String::from_json(v)?;
        Weekday::ALL
            .iter()
            .copied()
            .find(|d| d.name() == s)
            .ok_or_else(|| JsonError::new(format!("unknown weekday `{s}`")))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day();
        let rem = self.0 % MICROS_PER_DAY;
        let h = rem / (3_600 * MICROS_PER_SEC);
        let m = (rem / (60 * MICROS_PER_SEC)) % 60;
        let s = (rem / MICROS_PER_SEC) % 60;
        let us = rem % MICROS_PER_SEC;
        write!(f, "d{day}+{h:02}:{m:02}:{s:02}.{us:06}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The calendar of the paper's capture: 42 days, 2012-03-24 … 2012-05-04,
/// with the holidays the paper notes ("exceptions around holidays in April
/// and May": Easter Apr 8–9, Liberation Day Apr 25, May 1).
pub struct CaptureCalendar;

impl CaptureCalendar {
    /// Number of days of the main capture.
    pub const DAYS: u32 = 42;

    /// Day indices that are public holidays in the monitored countries.
    /// Day 0 = 2012-03-24. Easter Sunday = Apr 8 = day 15, Easter Monday =
    /// day 16, Apr 25 (Italian Liberation Day) = day 32, May 1 = day 38.
    pub const HOLIDAYS: [u32; 4] = [15, 16, 32, 38];

    /// True when `day` is a holiday.
    pub fn is_holiday(day: u32) -> bool {
        Self::HOLIDAYS.contains(&day)
    }

    /// True when `day` is a working day (not weekend, not holiday).
    pub fn is_working_day(day: u32) -> bool {
        let t = SimTime::from_day_offset(day, SimDuration::ZERO);
        !t.is_weekend() && !Self::is_holiday(day)
    }

    /// Human-readable date label (`MM-DD`) for a capture day index.
    pub fn date_label(day: u32) -> String {
        // Day 0 = March 24. March has 31 days, April 30.
        let mut d = 24 + day;
        let mut month = 3;
        for len in [31u32, 30, 31] {
            if d <= len {
                break;
            }
            d -= len;
            month += 1;
        }
        format!("{month:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_saturday() {
        assert_eq!(SimTime::EPOCH.weekday(), Weekday::Sat);
        assert!(SimTime::EPOCH.is_weekend());
    }

    #[test]
    fn day_and_hour_arithmetic() {
        let t =
            SimTime::from_day_offset(3, SimDuration::from_hours(14)) + SimDuration::from_mins(30);
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour(), 14);
        assert_eq!(t.weekday(), Weekday::Tue);
    }

    #[test]
    fn duration_roundtrip_f64() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.micros(), 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn time_subtraction() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_secs(250);
        assert_eq!((b - a).secs(), 150);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn calendar_labels() {
        assert_eq!(CaptureCalendar::date_label(0), "03-24");
        assert_eq!(CaptureCalendar::date_label(7), "03-31");
        assert_eq!(CaptureCalendar::date_label(8), "04-01");
        assert_eq!(CaptureCalendar::date_label(41), "05-04");
    }

    #[test]
    fn working_days_respect_weekends_and_holidays() {
        // Day 0 (Sat) and day 1 (Sun) are weekend.
        assert!(!CaptureCalendar::is_working_day(0));
        assert!(!CaptureCalendar::is_working_day(1));
        // Day 2 is Monday 2012-03-26.
        assert!(CaptureCalendar::is_working_day(2));
        // Easter Monday.
        assert!(!CaptureCalendar::is_working_day(16));
        // May 1.
        assert!(!CaptureCalendar::is_working_day(38));
    }

    #[test]
    fn json_round_trip_preserves_micros() {
        let t = SimTime::from_micros(123_456_789);
        assert_eq!(crate::json::to_string(&t), "123456789");
        assert_eq!(crate::json::from_str::<SimTime>("123456789").unwrap(), t);
        let d = SimDuration::from_millis(42);
        assert_eq!(crate::json::to_string(&d), "42000");
        assert_eq!(crate::json::from_str::<SimDuration>("42000").unwrap(), d);
        assert_eq!(crate::json::to_string(&Weekday::Wed), "\"Wed\"");
        assert_eq!(
            crate::json::from_str::<Weekday>("\"Wed\"").unwrap(),
            Weekday::Wed
        );
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_day_offset(1, SimDuration::from_secs(3_661));
        assert_eq!(format!("{t}"), "d1+01:01:01.000000");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
    }
}

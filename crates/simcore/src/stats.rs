//! Statistics helpers: running summaries, quantiles, and empirical CDFs.
//!
//! The analysis layer (crate `dropbox-analysis`) reports the same summary
//! statistics the paper does — medians, averages, and CDFs evaluated at the
//! paper's reference points. These helpers implement those primitives once.

use crate::json::{FromJson, Json, JsonError, ToJson};

/// Running univariate summary (count, mean, min, max, variance via Welford).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// New empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        // simlint: allow(float-merge) — SpanMerge drains shard results in canonical household-slot order, so this reduction's order is fixed by construction; exactness is not required for Welford moments
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Order-insensitive f64 summation (Shewchuk's exact expansion, with
/// correctly-rounded readout à la `math.fsum`).
///
/// Naive `+=` accumulation makes the result depend on addition order,
/// which turns any merge-order perturbation into a digest change. This
/// accumulator instead maintains the *exact* real-valued sum as a list of
/// non-overlapping partials; [`OrderlessSum::value`] rounds that exact sum
/// to the nearest f64. Because the exact sum is a pure function of the
/// multiset of inputs, the rounded result is bit-identical under any
/// permutation of `add` calls and any tree of `merge` calls — which is
/// what the `float-merge` lint rule demands of reductions in merge paths.
#[derive(Clone, Debug, Default)]
pub struct OrderlessSum {
    /// Non-overlapping partials in increasing magnitude; their exact
    /// real sum is the accumulated total.
    partials: Vec<f64>,
}

impl OrderlessSum {
    /// New empty accumulator.
    pub fn new() -> Self {
        OrderlessSum {
            partials: Vec::new(),
        }
    }

    /// Add one value exactly (two-sum cascade over the partials).
    pub fn add(&mut self, x: f64) {
        let mut x = x;
        let mut i = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[i] = lo;
                i += 1;
            }
            x = hi;
        }
        self.partials.truncate(i);
        self.partials.push(x);
    }

    /// Merge another accumulator into this one. Exact, so the merge tree's
    /// shape cannot influence the final [`OrderlessSum::value`].
    pub fn merge(&mut self, other: &OrderlessSum) {
        for &p in &other.partials {
            self.add(p);
        }
    }

    /// The accumulated sum, rounded once to the nearest f64
    /// (round-half-even), independent of insertion and merge order.
    pub fn value(&self) -> f64 {
        let p = &self.partials;
        let Some(&last) = p.last() else {
            return 0.0;
        };
        let mut hi = last;
        let mut lo = 0.0;
        let mut i = p.len() - 1;
        while i > 0 {
            i -= 1;
            let x = hi;
            let y = p[i];
            hi = x + y;
            lo = y - (hi - x);
            if lo != 0.0 {
                break;
            }
        }
        // Halfway case: nudge toward the next-lower partial's sign so the
        // single rounding matches the exact sum (fsum's correction step).
        if i > 0 && ((lo < 0.0 && p[i - 1] < 0.0) || (lo > 0.0 && p[i - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

/// Quantile of a sample using linear interpolation between order statistics
/// (the common "type 7" definition). `q` must be in `[0, 1]`.
/// Returns `None` for an empty sample.
pub fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile: input must be sorted"
    );
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median convenience wrapper over [`quantile`].
pub fn median(sorted: &[f64]) -> Option<f64> {
    quantile(sorted, 0.5)
}

/// An empirical CDF over `f64` samples.
///
/// Built once from a sample, then queried either as `F(x)` (fraction ≤ x) or
/// as the inverse `F⁻¹(q)`; it can also be dumped as `(x, F(x))` points for
/// plotting, with optional subsampling for large inputs.
///
/// ```
/// use simcore::stats::Ecdf;
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.fraction_le(2.0), 0.5);
/// assert_eq!(e.quantile(1.0), Some(4.0));
/// ```
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::U64(self.n)),
            ("mean", Json::F64(self.mean)),
            ("m2", Json::F64(self.m2)),
            ("min", Json::F64(self.min)),
            ("max", Json::F64(self.max)),
            ("sum", Json::F64(self.sum)),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Summary {
            n: v.field("n")?,
            mean: v.field("mean")?,
            m2: v.field("m2")?,
            min: v.field("min")?,
            max: v.field("max")?,
            sum: v.field("sum")?,
        })
    }
}

impl ToJson for Ecdf {
    fn to_json(&self) -> Json {
        Json::obj([("sorted", self.sorted.to_json())])
    }
}

impl FromJson for Ecdf {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let sorted: Vec<f64> = v.field("sorted")?;
        if sorted.windows(2).any(|w| !(w[0] <= w[1])) {
            return Err(JsonError::new("Ecdf samples not sorted"));
        }
        Ok(Ecdf { sorted })
    }
}

impl Ecdf {
    /// Build from samples (NaNs are rejected).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(samples.iter().all(|x| !x.is_nan()), "Ecdf: NaN in samples");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (0 for an empty CDF).
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Type-7 quantile (linear interpolation between order statistics),
    /// delegating to the free [`quantile`] function. The result is *not*
    /// necessarily an observed sample — between order statistics it
    /// interpolates, matching what the paper's plotting stack computes.
    /// Use [`Ecdf::inverse_cdf`] when an actual sample value is required.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile(&self.sorted, q)
    }

    /// True inverse CDF: the smallest *sample* `v` with `F(v) >= q`,
    /// where `F` counts duplicates (`F(sorted[i]) = (i+1)/n`). Unlike
    /// [`Ecdf::quantile`] this never interpolates, so the result is always
    /// a value that was actually observed.
    pub fn inverse_cdf(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "inverse_cdf out of range: {q}");
        let n = self.sorted.len();
        if n == 0 {
            return None;
        }
        let i = ((q * n as f64).ceil() as usize)
            .saturating_sub(1)
            .min(n - 1);
        Some(self.sorted[i])
    }

    /// Arithmetic mean of the sample.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// `(x, F(x))` step points, subsampled to at most `max_points`.
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        if n == 0 {
            return Vec::new();
        }
        // Ceiling division: a floor stride (`n / max_points`) collapses to
        // 1 whenever `max_points < n < 2*max_points` and emits all `n`
        // points, violating the "at most `max_points`" contract.
        let step = n.div_ceil(max_points.max(1));
        let mut out = Vec::with_capacity(n / step + 1);
        let mut i = step - 1;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(_, f)| f) != Some(1.0) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }

    /// Access the sorted samples.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Fixed logarithmic binning, used for the scatter→envelope reductions of
/// Figs. 9–10 ("divide the x-axis in slots of equal sizes in log scale").
#[derive(Clone, Debug)]
pub struct LogBins {
    lo: f64,
    ratio: f64,
    n: usize,
}

impl LogBins {
    /// `n` bins covering `[lo, hi]` with logarithmically equal widths.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && n > 0, "LogBins: invalid parameters");
        LogBins {
            lo,
            ratio: (hi / lo).powf(1.0 / n as f64),
            n,
        }
    }

    /// Bin index for `x` (clamped to the edge bins).
    pub fn index(&self, x: f64) -> usize {
        if x <= self.lo {
            return 0;
        }
        let idx = (x / self.lo).ln() / self.ratio.ln();
        (idx as usize).min(self.n - 1)
    }

    /// Geometric midpoint of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo * self.ratio.powf(i as f64 + 0.5)
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: constructed with `n > 0`.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut whole = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.add(x);
            if i % 2 == 0 {
                a.add(x)
            } else {
                b.add(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    /// Deterministic LCG for permutation tests (no external RNG, and the
    /// values exercise a wide magnitude range to make order matter for a
    /// naive `+=` reduction).
    fn lcg_values(n: usize) -> Vec<f64> {
        let mut state: u64 = 0x2545F4914F6CDD1D;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mag = (state >> 59) as i32 - 16;
                let frac = (state >> 11) as f64 / (1u64 << 53) as f64;
                (frac - 0.5) * 2f64.powi(mag * 4)
            })
            .collect()
    }

    #[test]
    fn orderless_sum_is_permutation_invariant() {
        let xs = lcg_values(200);
        let mut fwd = OrderlessSum::new();
        for &x in &xs {
            fwd.add(x);
        }
        let mut rev = OrderlessSum::new();
        for &x in xs.iter().rev() {
            rev.add(x);
        }
        // Strided interleave: a third, very different order.
        let mut strided = OrderlessSum::new();
        for start in 0..7 {
            for &x in xs.iter().skip(start).step_by(7) {
                strided.add(x);
            }
        }
        assert_eq!(fwd.value().to_bits(), rev.value().to_bits());
        assert_eq!(fwd.value().to_bits(), strided.value().to_bits());
        // Naive += over the same orders disagrees, demonstrating the
        // hazard this accumulator removes.
        let naive_fwd: f64 = xs.iter().sum();
        let naive_rev: f64 = xs.iter().rev().sum();
        assert_ne!(naive_fwd.to_bits(), naive_rev.to_bits());
    }

    #[test]
    fn orderless_sum_merge_tree_shape_is_irrelevant() {
        let xs = lcg_values(128);
        let mut whole = OrderlessSum::new();
        for &x in &xs {
            whole.add(x);
        }
        // Left-leaning merge of 8 shards vs pairwise tree merge.
        let shards: Vec<OrderlessSum> = xs
            .chunks(16)
            .map(|c| {
                let mut s = OrderlessSum::new();
                for &x in c {
                    s.add(x);
                }
                s
            })
            .collect();
        let mut linear = OrderlessSum::new();
        for s in &shards {
            linear.merge(s);
        }
        let mut level: Vec<OrderlessSum> = shards.clone();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    let mut m = pair[0].clone();
                    if let Some(b) = pair.get(1) {
                        m.merge(b);
                    }
                    m
                })
                .collect();
        }
        assert_eq!(whole.value().to_bits(), linear.value().to_bits());
        assert_eq!(whole.value().to_bits(), level[0].value().to_bits());
        // Reversed shard order too.
        let mut rev = OrderlessSum::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(whole.value().to_bits(), rev.value().to_bits());
    }

    #[test]
    fn orderless_sum_is_exact_on_cancellation() {
        let mut s = OrderlessSum::new();
        for &x in &[1e100, 1.0, -1e100] {
            s.add(x);
        }
        assert_eq!(s.value(), 1.0);
        let naive = 1e100 + 1.0 + -1e100;
        assert_eq!(naive, 0.0, "naive accumulation loses the 1.0");
        assert_eq!(OrderlessSum::new().value(), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn ecdf_fractions() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((e.fraction_le(3.0) - 0.6).abs() < 1e-12);
        assert_eq!(e.fraction_le(0.5), 0.0);
        assert_eq!(e.fraction_le(10.0), 1.0);
        assert_eq!(e.quantile(0.5), Some(3.0));
    }

    #[test]
    fn ecdf_points_end_at_one() {
        let e = Ecdf::new((0..1000).map(|i| i as f64).collect());
        let pts = e.points(50);
        assert!(pts.len() <= 50);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn ecdf_points_never_exceed_max_points() {
        // Regression: the floor stride emitted all n points whenever
        // max_points < n < 2*max_points (n=150, max=100 gave 150 points).
        for max_points in [1usize, 2, 3, 7, 100] {
            for n in [
                1usize,
                max_points.saturating_sub(1).max(1),
                max_points,
                max_points + 1,
                max_points + max_points / 2 + 1,
                2 * max_points - 1,
                2 * max_points,
                2 * max_points + 1,
                3 * max_points + 1,
            ] {
                let e = Ecdf::new((0..n).map(|i| i as f64).collect());
                let pts = e.points(max_points);
                assert!(
                    pts.len() <= max_points,
                    "n={n} max_points={max_points}: {} points",
                    pts.len()
                );
                assert_eq!(pts.last().unwrap().1, 1.0, "n={n} max={max_points}");
                for w in pts.windows(2) {
                    assert!(w[0].0 <= w[1].0);
                    assert!(w[0].1 < w[1].1);
                }
            }
        }
        // max_points == 0 is clamped to 1 rather than panicking.
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(e.points(0).len(), 1);
    }

    #[test]
    fn inverse_cdf_returns_smallest_sample_reaching_q() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]);
        // F(1)=0.25, F(2)=0.75, F(4)=1.0.
        assert_eq!(e.inverse_cdf(0.0), Some(1.0));
        assert_eq!(e.inverse_cdf(0.25), Some(1.0));
        assert_eq!(e.inverse_cdf(0.26), Some(2.0));
        assert_eq!(e.inverse_cdf(0.75), Some(2.0));
        assert_eq!(e.inverse_cdf(0.76), Some(4.0));
        assert_eq!(e.inverse_cdf(1.0), Some(4.0));
        assert_eq!(Ecdf::new(Vec::new()).inverse_cdf(0.5), None);
        // Unlike type-7 interpolation, the result is always a sample.
        let samples = [1.0, 2.0, 4.0];
        for q in [0.1, 0.33, 0.5, 0.9] {
            let v = e.inverse_cdf(q).unwrap();
            assert!(samples.contains(&v), "q={q}: {v} is not a sample");
        }
        // The interpolating quantile is not: its median here is 2.0 but
        // e.g. q=0.9 lands between samples.
        assert!(!samples.contains(&e.quantile(0.9).unwrap()));
    }

    #[test]
    fn summary_and_ecdf_json_round_trip() {
        let mut s = Summary::new();
        for x in [1.5, 2.5, 10.0] {
            s.add(x);
        }
        let back: Summary = crate::json::from_str(&crate::json::to_string(&s)).unwrap();
        assert_eq!(back.count(), s.count());
        assert_eq!(back.mean(), s.mean());
        assert_eq!(back.min(), s.min());
        assert_eq!(back.max(), s.max());

        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        let back: Ecdf = crate::json::from_str(&crate::json::to_string(&e)).unwrap();
        assert_eq!(back.sorted(), e.sorted());
        assert!(crate::json::from_str::<Ecdf>(r#"{"sorted":[2.0,1.0]}"#).is_err());
    }

    #[test]
    fn log_bins_cover_range() {
        let b = LogBins::new(1.0, 1024.0, 10);
        assert_eq!(b.index(0.5), 0);
        assert_eq!(b.index(1.0), 0);
        assert_eq!(b.index(2000.0), 9);
        // Centers grow geometrically.
        assert!(b.center(5) / b.center(4) > 1.0);
    }
}

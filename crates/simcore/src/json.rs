//! Minimal JSON support: a value tree, an emitter, and a strict parser —
//! all std-only, so the workspace builds offline with zero external crates.
//!
//! The module replaces `serde`/`serde_json` for the workspace's only
//! serialisation need, the JSON-lines flow-log export. The emitter is
//! byte-compatible with what `serde_json` produced for the record types in
//! `nettrace` (same field order, same escaping, integers as plain decimal
//! literals), and floats use Rust's shortest round-tripping representation
//! so that `f64` values survive export/import *exactly* — including
//! subnormals and values at the edges of the `f64` range.
//!
//! Types opt in by implementing [`ToJson`]/[`FromJson`] by hand; there is
//! deliberately no derive machinery. The impls live next to the types they
//! serialise (`simcore::time`, `simcore::stats`, `nettrace::*`).
//!
//! ```
//! use simcore::json::{self, Json};
//! let v = Json::parse(r#"{"a": [1, 2.5, null], "b": "x"}"#).unwrap();
//! assert_eq!(v.get("b").unwrap(), &Json::Str("x".into()));
//! assert_eq!(json::to_string(&vec![1u64, 2, 3]), "[1,2,3]");
//! ```

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
///
/// Numbers keep their lexical class: integer literals parse to [`Json::U64`]
/// (or [`Json::I64`] when negative), anything with a fraction or exponent to
/// [`Json::F64`]. This is what lets `u64` fields (chunk ids, byte counters,
/// `host_int` device ids) round-trip without passing through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer literal.
    U64(u64),
    /// Negative integer literal.
    I64(i64),
    /// Fractional or exponent-form number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
}

/// Error raised by parsing or by [`FromJson`] conversions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Construct an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Serialise a value to a JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump()
}

/// Parse a JSON string into a value implementing [`FromJson`].
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(s)?)
}

/// Types that can serialise themselves to a [`Json`] tree.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Types that can reconstruct themselves from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Parse from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on an object (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Typed member lookup with context in the error message.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        match self {
            Json::Obj(_) => match self.get(key) {
                Some(v) => {
                    T::from_json(v).map_err(|e| JsonError::new(format!("field `{key}`: {e}")))
                }
                None => Err(JsonError::new(format!("missing field `{key}`"))),
            },
            other => Err(JsonError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// Typed member lookup that falls back to `default` when the key is
    /// absent (backward-compatible schema evolution: readers accept old
    /// records that predate a field). A *present* field must still parse —
    /// `null` or a wrong type remains an error.
    pub fn field_or<T: FromJson>(&self, key: &str, default: T) -> Result<T, JsonError> {
        match self {
            Json::Obj(_) => match self.get(key) {
                Some(v) => {
                    T::from_json(v).map_err(|e| JsonError::new(format!("field `{key}`: {e}")))
                }
                None => Ok(default),
            },
            other => Err(JsonError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::U64(_) | Json::I64(_) => "integer",
            Json::F64(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Emit compact JSON (no whitespace), matching `serde_json::to_string`.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest representation that parses
                    // back to the same bits; it always carries a `.` or an
                    // exponent, so the lexical class survives a round trip.
                    let _ = write!(out, "{x:?}");
                } else {
                    // serde_json also emits null for NaN/±inf.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl fmt::Display) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Advance by one UTF-8 character (input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..ch_len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a following surrogate pair
    /// when needed); `self.pos` is already past the `u`.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&hi) {
            // High surrogate: require a low surrogate escape next.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
            } else {
                Err(self.err("lone surrogate"))
            }
        } else if (0xDC00..=0xDFFF).contains(&hi) {
            Err(self.err("lone surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            saw_digit = true;
            self.pos += 1;
        }
        if !saw_digit {
            return Err(self.err("expected digit"));
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number token is ASCII");
        if !fractional {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(v) = rest.parse::<u64>() {
                    if v == 0 {
                        return Ok(Json::U64(0));
                    }
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Json::I64(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        // Fractional form, or an integer too large for u64/i64: fall back
        // to the correctly rounded f64 (what serde_json does as well).
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::U64(x) => Ok(*x),
            Json::I64(x) if *x >= 0 => Ok(*x as u64),
            other => Err(JsonError::new(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        if *self >= 0 {
            Json::U64(*self as u64)
        } else {
            Json::I64(*self)
        }
    }
}

impl FromJson for i64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::I64(x) => Ok(*x),
            Json::U64(x) if *x <= i64::MAX as u64 => Ok(*x as i64),
            other => Err(JsonError::new(format!(
                "expected signed integer, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_small_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = u64::from_json(v)?;
                <$t>::try_from(raw).map_err(|_| {
                    JsonError::new(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_small_uint!(u8, u16, u32, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::F64(x) => Ok(*x),
            Json::U64(x) => Ok(*x as f64),
            Json::I64(x) => Ok(*x as f64),
            other => Err(JsonError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_compact_serde_json_compatible_output() {
        let v = Json::obj([
            ("a", Json::U64(1)),
            (
                "b",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::F64(2.5)]),
            ),
            ("c", Json::Str("x\"y\n".into())),
        ]);
        assert_eq!(v.dump(), r#"{"a":1,"b":[null,true,2.5],"c":"x\"y\n"}"#);
    }

    #[test]
    fn integer_literals_keep_full_u64_precision() {
        // 2^53 + 1 is not representable as f64; it must survive as u64.
        let big = (1u64 << 53) + 1;
        let s = to_string(&big);
        assert_eq!(s, "9007199254740993");
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
    }

    #[test]
    fn f64_round_trips_exactly() {
        for x in [
            0.0,
            -0.0,
            0.1,
            95.0,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            1e300,
            -123456789.123456789,
        ] {
            let s = Json::F64(x).dump();
            let back = match Json::parse(&s).unwrap() {
                Json::F64(v) => v,
                other => panic!("expected F64 back for {x:?}, got {other:?}"),
            };
            assert_eq!(back.to_bits(), x.to_bits(), "{x:?} -> {s} -> {back:?}");
        }
    }

    #[test]
    fn non_finite_floats_emit_null_like_serde_json() {
        assert_eq!(Json::F64(f64::NAN).dump(), "null");
        assert_eq!(Json::F64(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn parses_nested_structures_with_whitespace() {
        let v = Json::parse(" { \"k\" : [ 1 , -2 , 3.5 , \"s\" ] , \"n\" : null } ").unwrap();
        assert_eq!(
            v.get("k").unwrap(),
            &Json::Arr(vec![
                Json::U64(1),
                Json::I64(-2),
                Json::F64(3.5),
                Json::Str("s".into())
            ])
        );
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" backslash\\ newline\n tab\t ctrl\u{01} unicode\u{2603} 😀";
        let dumped = Json::Str(original.into()).dump();
        assert_eq!(Json::parse(&dumped).unwrap(), Json::Str(original.into()));
        // \u escapes with surrogate pairs parse too.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00 \u2603""#).unwrap(),
            Json::Str("😀 ☃".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"unterminated",
            "01a",
            "-",
            "1.e5",
            "\"\\ud800\"", // lone surrogate
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn field_lookup_reports_context() {
        let v = Json::parse(r#"{"a": {"b": "str"}}"#).unwrap();
        let nested: Json = v.field("a").unwrap();
        let err = nested.field::<u64>("b").unwrap_err();
        assert!(err.to_string().contains("field `b`"), "{err}");
        let err = v.field::<u64>("missing").unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn field_or_defaults_only_when_absent() {
        let v = Json::parse(r#"{"a": 3}"#).unwrap();
        assert_eq!(v.field_or::<u64>("a", 9).unwrap(), 3);
        assert_eq!(v.field_or::<u64>("b", 9).unwrap(), 9);
        assert_eq!(v.field_or::<bool>("c", false).unwrap(), false);
        // A present-but-wrong field still errors — only absence defaults.
        let err = Json::parse(r#"{"a": null}"#)
            .unwrap()
            .field_or::<u64>("a", 9)
            .unwrap_err();
        assert!(err.to_string().contains("field `a`"), "{err}");
        let err = Json::Null.field_or::<u64>("a", 9).unwrap_err();
        assert!(err.to_string().contains("expected object"), "{err}");
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<Vec<u32>> = Some(vec![1, 2, 3]);
        assert_eq!(to_string(&v), "[1,2,3]");
        assert_eq!(from_str::<Option<Vec<u32>>>("[1,2,3]").unwrap(), v);
        assert_eq!(from_str::<Option<Vec<u32>>>("null").unwrap(), None);
    }

    #[test]
    fn number_class_is_preserved() {
        assert_eq!(Json::parse("7").unwrap(), Json::U64(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::F64(7.0));
        assert_eq!(Json::parse("7e2").unwrap(), Json::F64(700.0));
        // Integer beyond u64 falls back to f64 (serde_json behaviour).
        assert!(matches!(
            Json::parse("18446744073709551616").unwrap(),
            Json::F64(_)
        ));
    }
}

//! Property-based tests of the simulation core, on the in-tree
//! deterministic harness (`simcore::proptest`).

use simcore::dist::{bounded_pareto, exponential, lognormal_median, Categorical, Zipf};
use simcore::proptest::{any_u64, vec_of};
use simcore::stats::{quantile, LogBins};
use simcore::time::{SimDuration, SimTime};
use simcore::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
use simcore::{EventQueue, Rng};

proptest! {
    #![cases(128)]

    /// Samplers stay inside their mathematical domains for any seed and
    /// reasonable parameters.
    #[test]
    fn samplers_stay_in_domain(seed in any_u64(), lambda in 0.001f64..100.0,
                               median in 0.001f64..1e9, sigma in 0.0f64..4.0) {
        let mut rng = Rng::new(seed);
        let e = exponential(&mut rng, lambda);
        prop_assert!(e.is_finite() && e >= 0.0);
        let l = lognormal_median(&mut rng, median, sigma);
        prop_assert!(l.is_finite() && l > 0.0);
        let p = bounded_pareto(&mut rng, 1.0, 1e6, 1.3);
        prop_assert!((1.0..=1e6).contains(&p));
    }

    /// Zipf ranks are always valid indices.
    #[test]
    fn zipf_in_range(seed in any_u64(), n in 1usize..500, s in 0.1f64..3.0) {
        let z = Zipf::new(n, s);
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Categorical with one positive weight always returns that item.
    #[test]
    fn categorical_degenerate(seed in any_u64(), idx in 0usize..5) {
        let pairs: Vec<(usize, f64)> = (0..5).map(|i| (i, if i == idx { 1.0 } else { 0.0 })).collect();
        let c = Categorical::new(&pairs);
        let mut rng = Rng::new(seed);
        for _ in 0..20 {
            prop_assert_eq!(*c.sample(&mut rng), idx);
        }
    }

    /// Quantiles are bounded by the sample extremes and monotone in q.
    #[test]
    fn quantiles_bounded_and_monotone(xs in vec_of(-1e6f64..1e6, 1..100)) {
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = xs[0];
        let hi = *xs.last().unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = quantile(&xs, q).unwrap();
            prop_assert!((lo..=hi).contains(&v));
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// LogBins: the center of a bin maps back to that bin.
    #[test]
    fn log_bins_center_roundtrip(lo in 1.0f64..100.0, factor in 2.0f64..1e6, n in 1usize..200) {
        let bins = LogBins::new(lo, lo * factor, n);
        for i in 0..n {
            prop_assert_eq!(bins.index(bins.center(i)), i);
        }
    }

    /// The event queue pops any schedule in sorted order with FIFO ties.
    #[test]
    fn event_queue_total_order(times in vec_of(0u64..1_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), (t, i));
        }
        let mut popped = Vec::new();
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_secs(t));
            popped.push((t, i));
        }
        // Sorted by time, FIFO (insertion index) among equal times.
        let mut expected = popped.clone();
        expected.sort_by_key(|&(t, i)| (t, i));
        prop_assert_eq!(popped, expected);
    }

    /// Forked RNG streams never collide on their first outputs for
    /// distinct labels (sanity of the splitting construction).
    #[test]
    fn fork_labels_distinct(seed in any_u64(), a in any_u64(), b in any_u64()) {
        prop_assume!(a != b);
        let root = Rng::new(seed);
        let mut fa = root.fork(a);
        let mut fb = root.fork(b);
        prop_assert_ne!(fa.next_u64(), fb.next_u64());
    }

    /// Calendar arithmetic: day/hour decomposition recomposes.
    #[test]
    fn time_decomposition(day in 0u32..42, secs in 0u64..86_400) {
        let t = SimTime::from_day_offset(day, SimDuration::from_secs(secs));
        prop_assert_eq!(t.day(), day);
        prop_assert_eq!(t.hour() as u64, secs / 3_600);
        prop_assert_eq!(t.time_of_day().secs(), secs);
    }
}

//! Ad-hoc timing breakdown of the lint pipeline (dev tool, not a test).

use simlint::{cache, Options};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let opts = Options::workspace();
    let cache_path = root.join("target/simlint-profile-cache.json");
    let _ = std::fs::remove_file(&cache_path);

    let t = Instant::now();
    let r = simlint::run(&root, &opts).unwrap();
    println!(
        "no-cache run:   {:.1} ms ({} files)",
        t.elapsed().as_secs_f64() * 1e3,
        r.files_scanned
    );

    let t = Instant::now();
    let _ = simlint::run_with_cache(&root, &opts, &cache_path).unwrap();
    println!("cold cache run: {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let (_, s) = simlint::run_with_cache(&root, &opts, &cache_path).unwrap();
    println!(
        "warm cache run: {:.1} ms ({} hits)",
        t.elapsed().as_secs_f64() * 1e3,
        s.hits
    );

    let digest = cache::config_digest(&opts);
    let sidecar = cache::sidecar_path(&cache_path);
    let t = Instant::now();
    let c = cache::Summary::load(&cache_path, &digest).unwrap();
    println!(
        "summary load:   {:.2} ms ({} entries)",
        t.elapsed().as_secs_f64() * 1e3,
        c.files.len()
    );
    let t = Instant::now();
    let f = cache::load_facts(&sidecar);
    println!(
        "facts load:     {:.1} ms ({} entries)",
        t.elapsed().as_secs_f64() * 1e3,
        f.len()
    );
    let t = Instant::now();
    c.save(&cache_path).unwrap();
    cache::save_facts(&sidecar, &f).unwrap();
    println!("cache save:     {:.1} ms", t.elapsed().as_secs_f64() * 1e3);
    let sz =
        std::fs::metadata(&cache_path).unwrap().len() + std::fs::metadata(&sidecar).unwrap().len();
    println!("cache size:     {} kB", sz / 1024);
    let _ = std::fs::remove_file(&cache_path);
    let _ = std::fs::remove_file(&sidecar);

    // Per-stage split: read+compute vs the global passes.
    let mut rs = Vec::new();
    collect(&root, &mut rs);
    let t = Instant::now();
    let mut all = Vec::new();
    for p in &rs {
        let rel = p
            .strip_prefix(&root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(p).unwrap();
        all.push(simlint::facts::FileFacts::compute(&rel, &text, &opts));
    }
    println!(
        "read+compute:   {:.1} ms ({} files)",
        t.elapsed().as_secs_f64() * 1e3,
        all.len()
    );
    let pkg = std::collections::BTreeMap::new();
    let t = Instant::now();
    let ws = simlint::resolve::Workspace::build(&all, &pkg);
    println!("resolve build:  {:.1} ms", t.elapsed().as_secs_f64() * 1e3);
    let t = Instant::now();
    let n = simlint::taint::check(&ws, &opts).len();
    println!(
        "taint check:    {:.1} ms ({} findings)",
        t.elapsed().as_secs_f64() * 1e3,
        n
    );
    let t = Instant::now();
    let j = simcore::json::to_string(&simcore::json::ToJson::to_json(&all[0]));
    let _ = j.len();
    println!("facts[0] json:  {:.3} ms", t.elapsed().as_secs_f64() * 1e3);
}

fn collect(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
    for e in std::fs::read_dir(dir).unwrap() {
        let e = e.unwrap();
        let p = e.path();
        let name = e.file_name().to_string_lossy().into_owned();
        if p.is_dir() {
            if ["target", ".git", "fixtures", "results", "node_modules"].contains(&name.as_str())
                || name.starts_with('.')
            {
                continue;
            }
            collect(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

//! JSONL schema-drift rule.
//!
//! PR 2 established the back-compat contract for serialized records: a
//! field added to a type's `ToJson` output must be read back with
//! `field_or(name, default)` so that logs written by older builds still
//! parse. This rule cross-checks, for every type with hand-written
//! `impl ToJson` / `impl FromJson` blocks, the set of field names written
//! against the set read, and fails when a written field is read *strictly*
//! (`field(name)`) unless the `(type, field)` pair is grandfathered in the
//! baseline compiled into [`crate::Options`].
//!
//! The rule is split for the incremental cache: [`collect_facts`] runs
//! per file (cacheable), [`check_facts`] joins the accesses workspace-wide
//! (always re-run, cheap).

use crate::facts::{Finding, SchemaFact};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Options;
use std::collections::BTreeMap;

/// Collect every serialisation-schema access in one file.
pub fn collect_facts(file: &SourceFile, opts: &Options) -> Vec<SchemaFact> {
    if file.is_test_file
        || opts
            .schema_skip
            .iter()
            .any(|s| file.rel.ends_with(s.as_str()))
    {
        return Vec::new();
    }
    let toks = &file.toks;
    let mut out = Vec::new();
    for imp in &file.impls {
        if file.in_test(imp.body_open) {
            continue;
        }
        match imp.trait_name.as_deref() {
            Some("ToJson") => {
                // Field writes: `("name", <expr>,` tuple heads with
                // identifier-like names (error strings are filtered out).
                for k in imp.body_open..imp.body_end.min(toks.len()) {
                    if toks[k].is_sym("(")
                        && toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Str)
                        && toks.get(k + 2).is_some_and(|t| t.is_sym(","))
                        && ident_like(&toks[k + 1].text)
                    {
                        out.push(SchemaFact {
                            ty: imp.owner.clone(),
                            field: toks[k + 1].text.clone(),
                            access: "write".to_string(),
                            line: toks[k + 1].line,
                        });
                    }
                }
            }
            Some("FromJson") => {
                // Field reads: `field("name")` (strict) and
                // `field_or("name", default)` (back-compatible).
                for k in imp.body_open..imp.body_end.min(toks.len()) {
                    let access = if toks[k].is_ident("field") {
                        "strict"
                    } else if toks[k].is_ident("field_or") {
                        "default"
                    } else {
                        continue;
                    };
                    if !toks.get(k + 1).is_some_and(|t| t.is_sym("(")) {
                        continue;
                    }
                    let Some(name) = toks.get(k + 2).filter(|t| t.kind == TokKind::Str) else {
                        continue;
                    };
                    out.push(SchemaFact {
                        ty: imp.owner.clone(),
                        field: name.text.clone(),
                        access: access.to_string(),
                        line: name.line,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Join the per-file accesses workspace-wide and flag strict reads of
/// written fields that are neither defaulted nor grandfathered.
pub fn check_facts(files: &[crate::facts::FileFacts], opts: &Options) -> Vec<(usize, Finding)> {
    #[derive(Default)]
    struct TypeSchema {
        writes: BTreeMap<String, (usize, u32)>,
        strict: BTreeMap<String, (usize, u32)>,
        defaulted: BTreeMap<String, (usize, u32)>,
    }
    let mut types: BTreeMap<String, TypeSchema> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for s in &file.schema {
            let entry = types.entry(s.ty.clone()).or_default();
            let target = match s.access.as_str() {
                "write" => &mut entry.writes,
                "strict" => &mut entry.strict,
                "default" => &mut entry.defaulted,
                _ => continue,
            };
            target.entry(s.field.clone()).or_insert((fi, s.line));
        }
    }
    let mut out = Vec::new();
    for (ty, schema) in &types {
        for (field, _) in schema.writes.iter() {
            if schema.defaulted.contains_key(field) {
                continue;
            }
            let Some(&(fi, line)) = schema.strict.get(field) else {
                // Written but never read back: forward-compatible, old
                // readers simply ignore it.
                continue;
            };
            let grandfathered = opts
                .schema_baseline
                .iter()
                .any(|(t, f)| t == ty && f == field);
            if grandfathered {
                continue;
            }
            out.push((
                fi,
                Finding {
                    pass: "schema".to_string(),
                    rule: "schema-drift".to_string(),
                    line,
                    message: format!(
                        "`{ty}::from_json` reads new field `{field}` strictly; \
                         use `field_or(\"{field}\", default)` so logs written before the field existed still parse"
                    ),
                    symbol: format!("{ty}::{field}"),
                },
            ));
        }
    }
    out
}

/// True when a string literal looks like a JSON field name rather than a
/// message (identifier characters only).
fn ident_like(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::FileFacts;

    fn run_schema(src: &str, baseline: &[(&str, &str)]) -> Vec<Finding> {
        let mut opts = Options::workspace();
        opts.schema_baseline = baseline
            .iter()
            .map(|(t, f)| (t.to_string(), f.to_string()))
            .collect();
        let facts = vec![FileFacts::compute("crates/x/src/lib.rs", src, &opts)];
        check_facts(&facts, &opts)
            .into_iter()
            .map(|(_, f)| f)
            .collect()
    }

    const SRC: &str = r#"
impl ToJson for Rec {
    fn to_json(&self) -> Json {
        Json::obj([("old", self.old.to_json()), ("fresh", self.fresh.to_json())])
    }
}
impl FromJson for Rec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Rec { old: v.field("old")?, fresh: v.field("fresh")? })
    }
}
"#;

    #[test]
    fn strict_read_of_new_field_is_drift() {
        let v = run_schema(SRC, &[("Rec", "old")]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "schema-drift");
        assert!(v[0].message.contains("fresh"));
        assert_eq!(v[0].symbol, "Rec::fresh");
    }

    #[test]
    fn field_or_and_baseline_are_clean() {
        let v = run_schema(SRC, &[("Rec", "old"), ("Rec", "fresh")]);
        assert!(v.is_empty());
        let ok = SRC.replace("v.field(\"fresh\")?", "v.field_or(\"fresh\", 0)?");
        assert!(run_schema(&ok, &[("Rec", "old")]).is_empty());
    }

    #[test]
    fn error_strings_are_not_fields() {
        let src = r#"
impl ToJson for E {
    fn to_json(&self) -> Json {
        let _ = format!("not a field {}", 1);
        Json::obj([("x", self.x.to_json())])
    }
}
impl FromJson for E {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(E { x: v.field_or("x", 0)? })
    }
}
"#;
        assert!(run_schema(src, &[]).is_empty());
    }
}

//! JSONL schema-drift rule.
//!
//! PR 2 established the back-compat contract for serialized records: a
//! field added to a type's `ToJson` output must be read back with
//! `field_or(name, default)` so that logs written by older builds still
//! parse. This rule cross-checks, for every type with hand-written
//! `impl ToJson` / `impl FromJson` blocks, the set of field names written
//! against the set read, and fails when a written field is read *strictly*
//! (`field(name)`) unless the `(type, field)` pair is grandfathered in the
//! baseline compiled into [`crate::Options`].

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{emit, Options, Suppressed, Violation};
use std::collections::BTreeMap;

/// Field usage collected for one type across its serialisation impls.
#[derive(Default, Debug)]
struct TypeSchema {
    /// Fields written by `ToJson` (name → first write line, file).
    writes: BTreeMap<String, (usize, u32)>,
    /// Fields read strictly by `FromJson` via `field(...)`.
    strict: BTreeMap<String, (usize, u32)>,
    /// Fields read with a default via `field_or(...)`.
    defaulted: BTreeMap<String, (usize, u32)>,
}

/// Run the schema rule over the whole workspace.
pub fn check(
    files: &[SourceFile],
    opts: &Options,
    violations: &mut Vec<Violation>,
    allowed: &mut Vec<Suppressed>,
) {
    let mut types: BTreeMap<String, TypeSchema> = BTreeMap::new();

    for (fi, file) in files.iter().enumerate() {
        if file.is_test_file
            || opts
                .schema_skip
                .iter()
                .any(|s| file.rel.ends_with(s.as_str()))
        {
            continue;
        }
        collect_impls(fi, file, &mut types);
    }

    for (ty, schema) in &types {
        for (field, _) in schema.writes.iter() {
            if schema.defaulted.contains_key(field) {
                continue;
            }
            let Some(&(fi, line)) = schema.strict.get(field) else {
                // Written but never read back: forward-compatible, old
                // readers simply ignore it.
                continue;
            };
            let grandfathered = opts
                .schema_baseline
                .iter()
                .any(|(t, f)| t == ty && f == field);
            if grandfathered {
                continue;
            }
            emit(
                &files[fi],
                "schema-drift",
                line,
                format!(
                    "`{ty}::from_json` reads new field `{field}` strictly; \
                     use `field_or(\"{field}\", default)` so logs written before the field existed still parse"
                ),
                violations,
                allowed,
            );
        }
    }
}

/// Scan one file for `impl ToJson for T` / `impl FromJson for T` blocks
/// and record their field writes/reads.
fn collect_impls(fi: usize, file: &SourceFile, types: &mut BTreeMap<String, TypeSchema>) {
    let toks = &file.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") || file.in_test(i) {
            i += 1;
            continue;
        }
        // Skip `impl<...>` generics (angle-bracket depth matching).
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_sym("<")) {
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_sym("<") {
                    depth += 1;
                } else if toks[j].is_sym(">") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let trait_name = match toks.get(j) {
            Some(t) if t.is_ident("ToJson") || t.is_ident("FromJson") => t.text.clone(),
            _ => {
                i += 1;
                continue;
            }
        };
        if !toks.get(j + 1).is_some_and(|t| t.is_ident("for")) {
            i += 1;
            continue;
        }
        // Type name: first identifier after `for` (generic parameters,
        // e.g. `Vec<T>`, are fine — the base name identifies the schema).
        let mut k = j + 2;
        while k < toks.len() && !matches!(toks[k].kind, TokKind::Ident) {
            k += 1;
        }
        let Some(ty) = toks.get(k).map(|t| t.text.clone()) else {
            break;
        };
        // Body: brace-match from the next `{`.
        let mut open = k + 1;
        while open < toks.len() && !toks[open].is_sym("{") {
            open += 1;
        }
        let mut depth = 0i32;
        let mut end = open;
        while end < toks.len() {
            if toks[end].is_sym("{") {
                depth += 1;
            } else if toks[end].is_sym("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        let entry = types.entry(ty).or_default();
        if trait_name == "ToJson" {
            collect_writes(fi, toks, open, end, &mut entry.writes);
        } else {
            collect_reads(fi, toks, open, end, entry);
        }
        i = end + 1;
    }
}

/// Field writes inside a `ToJson` body: `("name", <expr>,` tuple heads
/// with identifier-like names (error-message strings are filtered out).
fn collect_writes(
    fi: usize,
    toks: &[crate::lexer::Tok],
    open: usize,
    end: usize,
    out: &mut BTreeMap<String, (usize, u32)>,
) {
    for k in open..end {
        if toks[k].is_sym("(")
            && toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Str)
            && toks.get(k + 2).is_some_and(|t| t.is_sym(","))
            && ident_like(&toks[k + 1].text)
        {
            out.entry(toks[k + 1].text.clone())
                .or_insert((fi, toks[k + 1].line));
        }
    }
}

/// Field reads inside a `FromJson` body: `field("name")` (strict) and
/// `field_or("name", default)` (back-compatible).
fn collect_reads(
    fi: usize,
    toks: &[crate::lexer::Tok],
    open: usize,
    end: usize,
    entry: &mut TypeSchema,
) {
    for k in open..end {
        let strict = toks[k].is_ident("field");
        let defaulted = toks[k].is_ident("field_or");
        if !strict && !defaulted {
            continue;
        }
        if !toks.get(k + 1).is_some_and(|t| t.is_sym("(")) {
            continue;
        }
        let Some(name) = toks.get(k + 2).filter(|t| t.kind == TokKind::Str) else {
            continue;
        };
        let target = if strict {
            &mut entry.strict
        } else {
            &mut entry.defaulted
        };
        target.entry(name.text.clone()).or_insert((fi, name.line));
    }
}

/// True when a string literal looks like a JSON field name rather than a
/// message (identifier characters only).
fn ident_like(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_schema(src: &str, baseline: &[(&str, &str)]) -> Vec<Violation> {
        let file = SourceFile::analyse("crates/x/src/lib.rs", src);
        let mut opts = Options::workspace();
        opts.schema_baseline = baseline
            .iter()
            .map(|(t, f)| (t.to_string(), f.to_string()))
            .collect();
        let mut v = Vec::new();
        let mut a = Vec::new();
        check(std::slice::from_ref(&file), &opts, &mut v, &mut a);
        v
    }

    const SRC: &str = r#"
impl ToJson for Rec {
    fn to_json(&self) -> Json {
        Json::obj([("old", self.old.to_json()), ("fresh", self.fresh.to_json())])
    }
}
impl FromJson for Rec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Rec { old: v.field("old")?, fresh: v.field("fresh")? })
    }
}
"#;

    #[test]
    fn strict_read_of_new_field_is_drift() {
        let v = run_schema(SRC, &[("Rec", "old")]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "schema-drift");
        assert!(v[0].message.contains("fresh"));
    }

    #[test]
    fn field_or_and_baseline_are_clean() {
        let v = run_schema(SRC, &[("Rec", "old"), ("Rec", "fresh")]);
        assert!(v.is_empty());
        let ok = SRC.replace("v.field(\"fresh\")?", "v.field_or(\"fresh\", 0)?");
        assert!(run_schema(&ok, &[("Rec", "old")]).is_empty());
    }

    #[test]
    fn error_strings_are_not_fields() {
        let src = r#"
impl ToJson for E {
    fn to_json(&self) -> Json {
        let _ = format!("not a field {}", 1);
        Json::obj([("x", self.x.to_json())])
    }
}
impl FromJson for E {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(E { x: v.field_or("x", 0)? })
    }
}
"#;
        assert!(run_schema(src, &[]).is_empty());
    }
}

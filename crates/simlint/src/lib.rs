//! `simlint` — the workspace's in-tree static-analysis pass.
//!
//! The reproduction's core claim is that every table and figure of
//! *Inside Dropbox* (IMC 2012) regenerates byte-identically from a seed,
//! even under fault plans. That claim rests on invariants the compiler
//! does not check:
//!
//! * **determinism** — no wall-clock reads in simulation crates, OS
//!   threads confined to the deterministic fork-join executor
//!   (`simcore::par`, whose own shared-state uses must each be justified —
//!   the `par-exec` rule), seed streams derived only from stable shard
//!   identity, never scheduling state (the seed-provenance taint pass in
//!   [`taint`], emitting the `shard-seed` and `taint-flow` rules), no
//!   `HashMap`/`HashSet` iteration whose order can reach serialized
//!   output ([`rules`], resolved workspace-wide by [`resolve`]), and no
//!   order-sensitive f64 reduction in merge paths ([`floatsum`]);
//! * **hermeticity** — every dependency is an in-tree path dependency and
//!   no code shells out ([`manifest`], [`rules`]);
//! * **streaming** — analysis crates consume flow records through the
//!   single-pass pipeline instead of re-scanning materialised `.flows`
//!   vectors, outside the declared compatibility view ([`rules`]);
//! * **panic policy** — fault-recovery paths propagate errors instead of
//!   unwrapping ([`rules`]);
//! * **JSONL schema stability** — new serialized fields are read back
//!   with `field_or` defaults ([`schema`]).
//!
//! Violations can be suppressed, never silently: a
//! `// simlint: allow(<rule>) — <reason>` annotation on the offending
//! line (or the line above) records the justification, a malformed
//! annotation is itself a violation (`allow-syntax`), and an annotation
//! that suppresses nothing is too (`stale-allow`) — suppressions cannot
//! outlive the code they excuse.
//!
//! The pass runs in two stages. Per-file **fact extraction** ([`facts`])
//! lexes a file once and records local findings plus everything the
//! cross-file passes need (call sites with argument structure, taint
//! sets, schema accesses, `use` declarations); being a pure function of
//! file content and configuration, it is cached by content hash
//! ([`cache`]). The **global passes** — symbol resolution and the
//! emission/parameter-flow fixpoints ([`resolve`]), seed-provenance taint
//! ([`taint`]), the schema join ([`schema`]), and stale-allow detection —
//! re-run whenever any input changed; when *nothing* changed, the whole
//! report (itself a pure function of facts, manifests, and
//! configuration) is replayed from the cache summary without parsing a
//! single fact.
//!
//! The pass is std-only and builds on its own lightweight lexer
//! ([`lexer`]) — consistent with the hermetic-workspace rule it enforces.

pub mod cache;
pub mod facts;
pub mod floatsum;
pub mod lexer;
pub mod manifest;
pub mod resolve;
pub mod rules;
pub mod schema;
pub mod source;
pub mod taint;

use facts::{FileFacts, Finding};
use simcore::json::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every rule identifier the pass can emit.
pub const RULES: &[&str] = &[
    "wall-clock",
    "par-exec",
    "shard-seed",
    "taint-flow",
    "float-merge",
    "map-iter",
    "full-materialize",
    "non-workspace-dep",
    "extern-crate",
    "process-spawn",
    "panic-path",
    "oracle-pure",
    "schema-drift",
    "allow-syntax",
    "stale-allow",
];

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of [`RULES`]).
    pub rule: String,
    /// Root-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
    /// Analysis pass that produced the finding (`file`, `manifest`,
    /// `resolve`, `taint`, `float`, `schema`, `allow`).
    pub pass: String,
    /// Resolved symbol path the finding hangs off, when the pass has one
    /// (e.g. the seed-derivation function a tainted value reached).
    pub symbol: String,
}

/// A violation suppressed by a justified allow annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppressed {
    /// Rule identifier.
    pub rule: String,
    /// Root-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The annotation's justification.
    pub reason: String,
}

/// Result of linting a tree.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of `.rs` and `Cargo.toml` files scanned.
    pub files_scanned: usize,
    /// Violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Justified suppressions, same order.
    pub allowed: Vec<Suppressed>,
}

impl Report {
    /// True when the tree is clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-rule violation counts (deterministically ordered).
    pub fn counts(&self) -> BTreeMap<&str, usize> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.rule.as_str()).or_default() += 1;
        }
        counts
    }

    /// Machine-readable report (the `results/simlint_report.json`
    /// payload). Each violation carries rule provenance: the `pass` that
    /// produced it and, when resolution was involved, the resolved
    /// `symbol` path.
    pub fn to_json(&self) -> Json {
        let viol = Json::Arr(
            self.violations
                .iter()
                .map(|v| {
                    Json::obj([
                        ("rule", v.rule.to_json()),
                        ("file", v.file.to_json()),
                        ("line", Json::U64(v.line as u64)),
                        ("message", v.message.to_json()),
                        ("pass", v.pass.to_json()),
                        ("symbol", v.symbol.to_json()),
                    ])
                })
                .collect(),
        );
        let allowed = Json::Arr(
            self.allowed
                .iter()
                .map(|a| {
                    Json::obj([
                        ("rule", a.rule.to_json()),
                        ("file", a.file.to_json()),
                        ("line", Json::U64(a.line as u64)),
                        ("reason", a.reason.to_json()),
                    ])
                })
                .collect(),
        );
        let counts = Json::Obj(
            self.counts()
                .into_iter()
                .map(|(rule, n)| (rule.to_string(), Json::U64(n as u64)))
                .collect(),
        );
        Json::obj([
            ("files_scanned", Json::U64(self.files_scanned as u64)),
            ("ok", Json::Bool(self.ok())),
            ("counts", counts),
            ("violations", viol),
            ("allowed", allowed),
        ])
    }

    /// Human diagnostics, one line per finding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.file, v.line, v.rule, v.message
            ));
        }
        for a in &self.allowed {
            out.push_str(&format!(
                "{}:{}: [{}] allowed — {}\n",
                a.file, a.line, a.rule, a.reason
            ));
        }
        out.push_str(&format!(
            "simlint: {} file(s), {} violation(s), {} allowed\n",
            self.files_scanned,
            self.violations.len(),
            self.allowed.len()
        ));
        out
    }
}

impl FromJson for Violation {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Violation {
            rule: v.field_or("rule", String::new())?,
            file: v.field_or("file", String::new())?,
            line: v.field_or("line", 0u64)? as u32,
            message: v.field_or("message", String::new())?,
            pass: v.field_or("pass", String::new())?,
            symbol: v.field_or("symbol", String::new())?,
        })
    }
}

impl FromJson for Suppressed {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Suppressed {
            rule: v.field_or("rule", String::new())?,
            file: v.field_or("file", String::new())?,
            line: v.field_or("line", 0u64)? as u32,
            reason: v.field_or("reason", String::new())?,
        })
    }
}

impl FromJson for Report {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // `ok` and `counts` are derived views; only the substance reads
        // back.
        Ok(Report {
            files_scanned: v.field_or("files_scanned", 0u64)? as usize,
            violations: v.field_or("violations", Vec::new())?,
            allowed: v.field_or("allowed", Vec::new())?,
        })
    }
}

/// Lint configuration. [`Options::workspace`] is what the binary and the
/// verify gate use; tests construct variants to lint fixtures.
#[derive(Clone, Debug)]
pub struct Options {
    /// Crates (directory names under `crates/`) holding simulation code:
    /// strict determinism tier.
    pub sim_crates: Vec<String>,
    /// Root-relative path suffixes of fault-recovery files where
    /// `unwrap`/`expect` are banned.
    pub panic_path_files: Vec<String>,
    /// Root-relative path suffixes of the deterministic parallel
    /// executor(s): the only files where thread primitives are legal.
    /// Inside them the `par-exec` rule inverts — shared-mutable-state
    /// primitives are flagged instead, so every exception to "shards are
    /// pure" carries a justified allow annotation.
    pub par_exec_files: Vec<String>,
    /// Root-relative path suffixes of the convergence-oracle files: the
    /// read-only judges of a finished run. Any `&mut` borrow outside
    /// tests is flagged (`oracle-pure`) — the oracle must not be able to
    /// mutate the simulation state it is checking.
    pub oracle_files: Vec<String>,
    /// Crates (directory names under `crates/`) holding analysis code
    /// held to the streaming single-pass contract: re-scanning a
    /// materialised `.flows` vector is flagged (`full-materialize`).
    pub analysis_crates: Vec<String>,
    /// Root-relative path suffixes exempt from `full-materialize`: the
    /// declared materialised compatibility view.
    pub materialize_exempt_files: Vec<String>,
    /// Path suffixes exempt from the schema rule (the generic JSON
    /// substrate itself).
    pub schema_skip: Vec<String>,
    /// Grandfathered strict-read `(type, field)` pairs: the schema as it
    /// existed when the back-compat contract was introduced. New fields
    /// must use `field_or` and never enter this list.
    pub schema_baseline: Vec<(String, String)>,
}

impl Options {
    /// The workspace's own configuration.
    pub fn workspace() -> Options {
        let baseline: &[(&str, &str)] = &[
            ("Endpoint", "ip"),
            ("Endpoint", "port"),
            ("FlowKey", "client"),
            ("FlowKey", "server"),
            ("AppMarker", "sni"),
            ("AppMarker", "common_name"),
            ("AppMarker", "host"),
            ("AppMarker", "path"),
            ("AppMarker", "status"),
            ("AppMarker", "host_int"),
            ("AppMarker", "namespaces"),
            ("DirStats", "packets"),
            ("DirStats", "bytes"),
            ("DirStats", "psh_segments"),
            ("DirStats", "retransmissions"),
            ("DirStats", "first_payload"),
            ("DirStats", "last_payload"),
            ("NotifyMeta", "host_int"),
            ("NotifyMeta", "namespaces"),
            ("FlowRecord", "key"),
            ("FlowRecord", "first_syn"),
            ("FlowRecord", "last_packet"),
            ("FlowRecord", "up"),
            ("FlowRecord", "down"),
            ("FlowRecord", "min_rtt_ms"),
            ("FlowRecord", "rtt_samples"),
            ("FlowRecord", "tls_sni"),
            ("FlowRecord", "tls_certificate_cn"),
            ("FlowRecord", "http_host"),
            ("FlowRecord", "server_fqdn"),
            ("FlowRecord", "notify"),
            ("FlowRecord", "close"),
            ("Summary", "n"),
            ("Summary", "mean"),
            ("Summary", "m2"),
            ("Summary", "min"),
            ("Summary", "max"),
            ("Summary", "sum"),
            ("Ecdf", "sorted"),
        ];
        Options {
            sim_crates: [
                "simcore", "tcpmodel", "workload", "dropbox", "nettrace", "tstat", "dnssim", "core",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            panic_path_files: [
                "crates/dropbox/src/client.rs",
                "crates/dropbox/src/storage.rs",
                "crates/workload/src/driver.rs",
                "crates/simcore/src/faults.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            par_exec_files: vec!["crates/simcore/src/par.rs".to_string()],
            oracle_files: vec!["crates/workload/src/oracle.rs".to_string()],
            analysis_crates: ["core", "experiments"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            materialize_exempt_files: vec!["crates/core/src/dataset.rs".to_string()],
            schema_skip: vec!["crates/simcore/src/json.rs".to_string()],
            schema_baseline: baseline
                .iter()
                .map(|(t, f)| (t.to_string(), f.to_string()))
                .collect(),
        }
    }

    /// True when `crate_name` is held to the strict determinism tier.
    pub fn is_sim_crate(&self, crate_name: &str) -> bool {
        self.sim_crates.iter().any(|c| c == crate_name)
    }
}

/// Directories never descended into: build outputs, VCS metadata, and the
/// lint's own known-bad test fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results", "node_modules"];

/// Lint the tree rooted at `root` with the given options (no cache).
pub fn run(root: &Path, opts: &Options) -> io::Result<Report> {
    run_impl(root, opts, None).map(|(report, _)| report)
}

/// Lint with the incremental cache at `cache_path`: when nothing
/// changed the cached report is replayed outright; otherwise per-file
/// facts are reused where content is unchanged and the global passes
/// re-run over the full fact set.
pub fn run_with_cache(
    root: &Path,
    opts: &Options,
    cache_path: &Path,
) -> io::Result<(Report, cache::Stats)> {
    run_impl(root, opts, Some(cache_path))
}

fn run_impl(
    root: &Path,
    opts: &Options,
    cache_path: Option<&Path>,
) -> io::Result<(Report, cache::Stats)> {
    let mut rs = Vec::new();
    let mut manifests = Vec::new();
    walk(root, root, &mut rs, &mut manifests)?;
    rs.sort();
    manifests.sort();

    // Manifests are few and tiny: read them up front. Their hashes take
    // part in cache validation; their contents feed the hermeticity rule
    // and the crate-dir → import-name map the resolver needs.
    let mut manifest_texts = Vec::with_capacity(manifests.len());
    let mut manifest_shas: BTreeMap<String, String> = BTreeMap::new();
    for path in &manifests {
        let rel = rel_of(root, path);
        let text = fs::read_to_string(path)?;
        manifest_shas.insert(rel.clone(), contenthash::sha256(text.as_bytes()).to_hex());
        manifest_texts.push((rel, text));
    }

    let mut stats = cache::Stats::default();

    // No cache: read and compute everything.
    let Some(cache_file) = cache_path else {
        let mut all_facts = Vec::with_capacity(rs.len());
        for path in &rs {
            let rel = rel_of(root, path);
            let text = fs::read_to_string(path)?;
            all_facts.push(FileFacts::compute(&rel, &text, opts));
        }
        let report = finish(
            rs.len() + manifests.len(),
            &manifest_texts,
            &all_facts,
            opts,
        );
        return Ok((report, stats));
    };

    let digest = cache::config_digest(opts);
    let old = cache::Summary::load(cache_file, &digest);

    // Validate every `.rs` file against the summary: `(size, mtime)`
    // fast path first, content hash on mismatch. `changed` keeps the
    // text of files whose facts must recompute (already read for
    // hashing).
    let empty = cache::Summary::default();
    let prior = old.as_ref().unwrap_or(&empty);
    let mut metas: BTreeMap<String, cache::Meta> = BTreeMap::new();
    let mut changed: BTreeMap<String, String> = BTreeMap::new();
    let mut refreshed = false;
    for path in &rs {
        let rel = rel_of(root, path);
        let (size, mtime_s, mtime_ns) = cache::file_validators(path)?;
        if let Some(m) = prior.files.get(&rel) {
            if m.size == size && m.mtime_s == mtime_s && m.mtime_ns == mtime_ns {
                metas.insert(rel, m.clone());
                continue;
            }
        }
        let text = fs::read_to_string(path)?;
        let sha = contenthash::sha256(text.as_bytes()).to_hex();
        match prior.files.get(&rel) {
            // Touched but unchanged: refresh the validators only.
            Some(m) if m.sha == sha => refreshed = true,
            _ => {
                changed.insert(rel.clone(), text);
            }
        }
        metas.insert(
            rel,
            cache::Meta {
                size,
                mtime_s,
                mtime_ns,
                sha,
            },
        );
    }

    // Warm short-circuit: same configuration, same file set, same
    // contents, same manifests — the cached report is the answer and the
    // facts sidecar is never parsed.
    if let Some(prior) = &old {
        if changed.is_empty()
            && metas.len() == prior.files.len()
            && manifest_shas == prior.manifests
        {
            stats.hits = rs.len();
            let report = prior.report.clone();
            if refreshed {
                let fresh = cache::Summary {
                    digest,
                    files: metas,
                    manifests: manifest_shas,
                    report: report.clone(),
                };
                // Cache write failure only costs time next run, never results.
                let _ = fresh.save(cache_file);
            }
            return Ok((report, stats));
        }
    }

    // Incremental path: parse the facts sidecar, recompute only what
    // changed (plus anything the sidecar is missing), re-run the global
    // passes over the full fact set.
    let sidecar = cache::sidecar_path(cache_file);
    let mut old_facts = if old.is_some() {
        cache::load_facts(&sidecar)
    } else {
        BTreeMap::new()
    };
    let mut all_facts = Vec::with_capacity(rs.len());
    let mut fresh_facts: BTreeMap<String, FileFacts> = BTreeMap::new();
    for path in &rs {
        let rel = rel_of(root, path);
        let facts = if let Some(text) = changed.get(&rel) {
            stats.misses += 1;
            FileFacts::compute(&rel, text, opts)
        } else if let Some(f) = old_facts.remove(&rel) {
            stats.hits += 1;
            f
        } else {
            // Validated but absent from the sidecar: recompute from
            // source.
            stats.misses += 1;
            let text = fs::read_to_string(path)?;
            FileFacts::compute(&rel, &text, opts)
        };
        fresh_facts.insert(rel, facts.clone());
        all_facts.push(facts);
    }

    let report = finish(
        rs.len() + manifests.len(),
        &manifest_texts,
        &all_facts,
        opts,
    );
    let fresh = cache::Summary {
        digest,
        files: metas,
        manifests: manifest_shas,
        report: report.clone(),
    };
    // Cache write failure only costs time next run, never results.
    let _ = fresh.save(cache_file);
    let _ = cache::save_facts(&sidecar, &fresh_facts);
    Ok((report, stats))
}

/// The global passes plus finding routing: everything downstream of the
/// (cacheable) per-file facts.
fn finish(
    files_scanned: usize,
    manifest_texts: &[(String, String)],
    all_facts: &[FileFacts],
    opts: &Options,
) -> Report {
    // Manifests: hermeticity rule plus the crate-dir → import-name map
    // the resolver needs.
    let mut violations = Vec::new();
    let mut pkg: BTreeMap<String, String> = BTreeMap::new();
    for (rel, text) in manifest_texts {
        manifest::check(rel, text, &mut violations);
        if let Some(name) = manifest::package_name(text) {
            let crate_dir = match rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
            {
                Some(dir) => dir.to_string(),
                None => "workspace-root".to_string(),
            };
            pkg.insert(crate_dir, name.replace('-', "_"));
        }
    }
    let ws = resolve::Workspace::build(all_facts, &pkg);

    // Gather findings per file: local facts, the emission-tier map-iter
    // verdicts, taint, and the schema join.
    let mut findings: Vec<Vec<Finding>> = all_facts.iter().map(|f| f.local.clone()).collect();
    for (fi, file) in all_facts.iter().enumerate() {
        for site in &file.map_iter {
            if ws.emitting[fi]
                .get(site.fn_idx as usize)
                .copied()
                .unwrap_or(false)
            {
                findings[fi].push(rules::map_iter_emit_finding(site));
            }
        }
    }
    for (fi, f) in taint::check(&ws, opts) {
        findings[fi].push(f);
    }
    for (fi, f) in schema::check_facts(all_facts, opts) {
        findings[fi].push(f);
    }

    // Route findings through the allow annotations, tracking which allows
    // actually suppressed something — the rest are stale.
    let mut allowed = Vec::new();
    for (fi, file) in all_facts.iter().enumerate() {
        let mut used = vec![false; file.allows.len()];
        let allow_idx = |rule: &str, line: u32| {
            file.allows.iter().position(|a| {
                (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule)
            })
        };
        for f in &findings[fi] {
            match allow_idx(&f.rule, f.line) {
                Some(ai) => {
                    used[ai] = true;
                    allowed.push(Suppressed {
                        rule: f.rule.clone(),
                        file: file.rel.clone(),
                        line: f.line,
                        reason: file.allows[ai].reason.clone(),
                    });
                }
                None => violations.push(Violation {
                    rule: f.rule.clone(),
                    file: file.rel.clone(),
                    line: f.line,
                    message: f.message.clone(),
                    pass: f.pass.clone(),
                    symbol: f.symbol.clone(),
                }),
            }
        }
        // Stale-allow pass. Descending line order so an `allow(stale-allow)`
        // covering a later stale annotation is marked used before its own
        // staleness is judged.
        let mut order: Vec<usize> = (0..file.allows.len()).collect();
        order.sort_by_key(|&ai| std::cmp::Reverse(file.allows[ai].line));
        for ai in order {
            if used[ai] {
                continue;
            }
            let a = &file.allows[ai];
            let message = format!(
                "allow({}) suppresses no violations — the code it excused is gone; delete \
                 the annotation",
                a.rules.join(", ")
            );
            match allow_idx("stale-allow", a.line) {
                Some(aj) => {
                    used[aj] = true;
                    allowed.push(Suppressed {
                        rule: "stale-allow".to_string(),
                        file: file.rel.clone(),
                        line: a.line,
                        reason: file.allows[aj].reason.clone(),
                    });
                }
                None => violations.push(Violation {
                    rule: "stale-allow".to_string(),
                    file: file.rel.clone(),
                    line: a.line,
                    message,
                    pass: "allow".to_string(),
                    symbol: String::new(),
                }),
            }
        }
    }

    violations.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    violations.dedup();
    allowed.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    allowed.dedup();

    Report {
        files_scanned,
        violations,
        allowed,
    }
}

/// Recursive walk collecting `.rs` files and `Cargo.toml` manifests.
fn walk(
    root: &Path,
    dir: &Path,
    rs: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, rs, manifests)?;
        } else if name.ends_with(".rs") {
            rs.push(path);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        }
    }
    Ok(())
}

/// Root-relative, `/`-separated path for diagnostics and reports.
fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

//! `simlint` — the workspace's in-tree static-analysis pass.
//!
//! The reproduction's core claim is that every table and figure of
//! *Inside Dropbox* (IMC 2012) regenerates byte-identically from a seed,
//! even under fault plans. That claim rests on invariants the compiler
//! does not check:
//!
//! * **determinism** — no wall-clock reads in simulation crates, OS
//!   threads confined to the deterministic fork-join executor
//!   (`simcore::par`, whose own shared-state uses must each be justified —
//!   the `par-exec` rule), seed streams derived only from stable shard
//!   identity, never scheduling state (the `shard-seed` rule), and no
//!   `HashMap`/`HashSet` iteration whose order can reach serialized
//!   output ([`rules`], [`callgraph`]);
//! * **hermeticity** — every dependency is an in-tree path dependency and
//!   no code shells out ([`manifest`], [`rules`]);
//! * **streaming** — analysis crates consume flow records through the
//!   single-pass pipeline instead of re-scanning materialised `.flows`
//!   vectors, outside the declared compatibility view ([`rules`]);
//! * **panic policy** — fault-recovery paths propagate errors instead of
//!   unwrapping ([`rules`]);
//! * **JSONL schema stability** — new serialized fields are read back
//!   with `field_or` defaults ([`schema`]).
//!
//! Violations can be suppressed, never silently: a
//! `// simlint: allow(<rule>) — <reason>` annotation on the offending
//! line (or the line above) records the justification, and a malformed
//! annotation is itself a violation (`allow-syntax`).
//!
//! The pass is std-only and builds on its own lightweight lexer
//! ([`lexer`]) — consistent with the hermetic-workspace rule it enforces.

pub mod callgraph;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod schema;
pub mod source;

use simcore::json::{Json, ToJson};
use source::SourceFile;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every rule identifier the pass can emit.
pub const RULES: &[&str] = &[
    "wall-clock",
    "par-exec",
    "shard-seed",
    "map-iter",
    "full-materialize",
    "non-workspace-dep",
    "extern-crate",
    "process-spawn",
    "panic-path",
    "oracle-pure",
    "schema-drift",
    "allow-syntax",
];

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of [`RULES`]).
    pub rule: String,
    /// Root-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
}

/// A violation suppressed by a justified allow annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppressed {
    /// Rule identifier.
    pub rule: String,
    /// Root-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The annotation's justification.
    pub reason: String,
}

/// Result of linting a tree.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of `.rs` and `Cargo.toml` files scanned.
    pub files_scanned: usize,
    /// Violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Justified suppressions, same order.
    pub allowed: Vec<Suppressed>,
}

impl Report {
    /// True when the tree is clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-rule violation counts (deterministically ordered).
    pub fn counts(&self) -> BTreeMap<&str, usize> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.rule.as_str()).or_default() += 1;
        }
        counts
    }

    /// Machine-readable report (the `results/simlint_report.json` payload).
    pub fn to_json(&self) -> Json {
        let viol = Json::Arr(
            self.violations
                .iter()
                .map(|v| {
                    Json::obj([
                        ("rule", v.rule.to_json()),
                        ("file", v.file.to_json()),
                        ("line", Json::U64(v.line as u64)),
                        ("message", v.message.to_json()),
                    ])
                })
                .collect(),
        );
        let allowed = Json::Arr(
            self.allowed
                .iter()
                .map(|a| {
                    Json::obj([
                        ("rule", a.rule.to_json()),
                        ("file", a.file.to_json()),
                        ("line", Json::U64(a.line as u64)),
                        ("reason", a.reason.to_json()),
                    ])
                })
                .collect(),
        );
        let counts = Json::Obj(
            self.counts()
                .into_iter()
                .map(|(rule, n)| (rule.to_string(), Json::U64(n as u64)))
                .collect(),
        );
        Json::obj([
            ("files_scanned", Json::U64(self.files_scanned as u64)),
            ("ok", Json::Bool(self.ok())),
            ("counts", counts),
            ("violations", viol),
            ("allowed", allowed),
        ])
    }

    /// Human diagnostics, one line per finding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.file, v.line, v.rule, v.message
            ));
        }
        for a in &self.allowed {
            out.push_str(&format!(
                "{}:{}: [{}] allowed — {}\n",
                a.file, a.line, a.rule, a.reason
            ));
        }
        out.push_str(&format!(
            "simlint: {} file(s), {} violation(s), {} allowed\n",
            self.files_scanned,
            self.violations.len(),
            self.allowed.len()
        ));
        out
    }
}

/// Lint configuration. [`Options::workspace`] is what the binary and the
/// verify gate use; tests construct variants to lint fixtures.
#[derive(Clone, Debug)]
pub struct Options {
    /// Crates (directory names under `crates/`) holding simulation code:
    /// strict determinism tier.
    pub sim_crates: Vec<String>,
    /// Root-relative path suffixes of fault-recovery files where
    /// `unwrap`/`expect` are banned.
    pub panic_path_files: Vec<String>,
    /// Root-relative path suffixes of the deterministic parallel
    /// executor(s): the only files where thread primitives are legal.
    /// Inside them the `par-exec` rule inverts — shared-mutable-state
    /// primitives are flagged instead, so every exception to "shards are
    /// pure" carries a justified allow annotation.
    pub par_exec_files: Vec<String>,
    /// Root-relative path suffixes of the seed-derivation files: where
    /// `fork`/`fork_named`/`shard_stream`/`household_stream` calls are
    /// checked against scheduling-state arguments (`shard-seed` rule) —
    /// seed streams must be pure functions of stable shard identity.
    pub shard_seed_files: Vec<String>,
    /// Root-relative path suffixes of the convergence-oracle files: the
    /// read-only judges of a finished run. Any `&mut` borrow outside
    /// tests is flagged (`oracle-pure`) — the oracle must not be able to
    /// mutate the simulation state it is checking.
    pub oracle_files: Vec<String>,
    /// Crates (directory names under `crates/`) holding analysis code
    /// held to the streaming single-pass contract: re-scanning a
    /// materialised `.flows` vector is flagged (`full-materialize`).
    pub analysis_crates: Vec<String>,
    /// Root-relative path suffixes exempt from `full-materialize`: the
    /// declared materialised compatibility view.
    pub materialize_exempt_files: Vec<String>,
    /// Path suffixes exempt from the schema rule (the generic JSON
    /// substrate itself).
    pub schema_skip: Vec<String>,
    /// Grandfathered strict-read `(type, field)` pairs: the schema as it
    /// existed when the back-compat contract was introduced. New fields
    /// must use `field_or` and never enter this list.
    pub schema_baseline: Vec<(String, String)>,
}

impl Options {
    /// The workspace's own configuration.
    pub fn workspace() -> Options {
        let baseline: &[(&str, &str)] = &[
            ("Endpoint", "ip"),
            ("Endpoint", "port"),
            ("FlowKey", "client"),
            ("FlowKey", "server"),
            ("AppMarker", "sni"),
            ("AppMarker", "common_name"),
            ("AppMarker", "host"),
            ("AppMarker", "path"),
            ("AppMarker", "status"),
            ("AppMarker", "host_int"),
            ("AppMarker", "namespaces"),
            ("DirStats", "packets"),
            ("DirStats", "bytes"),
            ("DirStats", "psh_segments"),
            ("DirStats", "retransmissions"),
            ("DirStats", "first_payload"),
            ("DirStats", "last_payload"),
            ("NotifyMeta", "host_int"),
            ("NotifyMeta", "namespaces"),
            ("FlowRecord", "key"),
            ("FlowRecord", "first_syn"),
            ("FlowRecord", "last_packet"),
            ("FlowRecord", "up"),
            ("FlowRecord", "down"),
            ("FlowRecord", "min_rtt_ms"),
            ("FlowRecord", "rtt_samples"),
            ("FlowRecord", "tls_sni"),
            ("FlowRecord", "tls_certificate_cn"),
            ("FlowRecord", "http_host"),
            ("FlowRecord", "server_fqdn"),
            ("FlowRecord", "notify"),
            ("FlowRecord", "close"),
            ("Summary", "n"),
            ("Summary", "mean"),
            ("Summary", "m2"),
            ("Summary", "min"),
            ("Summary", "max"),
            ("Summary", "sum"),
            ("Ecdf", "sorted"),
        ];
        Options {
            sim_crates: [
                "simcore", "tcpmodel", "workload", "dropbox", "nettrace", "tstat", "dnssim", "core",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            panic_path_files: [
                "crates/dropbox/src/client.rs",
                "crates/dropbox/src/storage.rs",
                "crates/workload/src/driver.rs",
                "crates/simcore/src/faults.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            par_exec_files: vec!["crates/simcore/src/par.rs".to_string()],
            shard_seed_files: [
                "crates/simcore/src/par.rs",
                "crates/workload/src/driver.rs",
                "crates/workload/src/shard.rs",
                "crates/workload/src/population.rs",
                "crates/workload/src/providers.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            oracle_files: vec!["crates/workload/src/oracle.rs".to_string()],
            analysis_crates: ["core", "experiments"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            materialize_exempt_files: vec!["crates/core/src/dataset.rs".to_string()],
            schema_skip: vec!["crates/simcore/src/json.rs".to_string()],
            schema_baseline: baseline
                .iter()
                .map(|(t, f)| (t.to_string(), f.to_string()))
                .collect(),
        }
    }

    /// True when `crate_name` is held to the strict determinism tier.
    pub fn is_sim_crate(&self, crate_name: &str) -> bool {
        self.sim_crates.iter().any(|c| c == crate_name)
    }
}

/// Route a finding to the violation list or, when a justified allow
/// annotation covers it, to the suppression list.
pub(crate) fn emit(
    file: &SourceFile,
    rule: &str,
    line: u32,
    message: String,
    violations: &mut Vec<Violation>,
    allowed: &mut Vec<Suppressed>,
) {
    if let Some(a) = file.allow_for(rule, line) {
        allowed.push(Suppressed {
            rule: rule.to_string(),
            file: file.rel.clone(),
            line,
            reason: a.reason.clone(),
        });
    } else {
        violations.push(Violation {
            rule: rule.to_string(),
            file: file.rel.clone(),
            line,
            message,
        });
    }
}

/// Directories never descended into: build outputs, VCS metadata, and the
/// lint's own known-bad test fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results", "node_modules"];

/// Lint the tree rooted at `root` with the given options.
pub fn run(root: &Path, opts: &Options) -> io::Result<Report> {
    let mut rs = Vec::new();
    let mut manifests = Vec::new();
    walk(root, root, &mut rs, &mut manifests)?;
    rs.sort();
    manifests.sort();

    let mut violations = Vec::new();
    let mut allowed = Vec::new();

    for path in &manifests {
        let rel = rel_of(root, path);
        let text = fs::read_to_string(path)?;
        manifest::check(&rel, &text, &mut violations);
    }

    let mut sources = Vec::with_capacity(rs.len());
    for path in &rs {
        let rel = rel_of(root, path);
        let text = fs::read_to_string(path)?;
        sources.push(SourceFile::analyse(&rel, &text));
    }

    let emitting = callgraph::emitting_fns(&sources);
    for (file, emitting) in sources.iter().zip(&emitting) {
        for bad in &file.bad_allows {
            violations.push(Violation {
                rule: "allow-syntax".to_string(),
                file: file.rel.clone(),
                line: bad.line,
                message: format!("malformed simlint annotation: {}", bad.what),
            });
        }
        rules::wall_clock(file, opts, &mut violations, &mut allowed);
        rules::par_exec(file, opts, &mut violations, &mut allowed);
        rules::shard_seed(file, opts, &mut violations, &mut allowed);
        rules::hermetic_source(file, &mut violations, &mut allowed);
        rules::panic_path(file, opts, &mut violations, &mut allowed);
        rules::oracle_pure(file, opts, &mut violations, &mut allowed);
        rules::map_iter(file, opts, emitting, &mut violations, &mut allowed);
        rules::full_materialize(file, opts, &mut violations, &mut allowed);
    }
    schema::check(&sources, opts, &mut violations, &mut allowed);

    violations.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    violations.dedup();
    allowed.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    allowed.dedup();

    Ok(Report {
        files_scanned: rs.len() + manifests.len(),
        violations,
        allowed,
    })
}

/// Recursive walk collecting `.rs` files and `Cargo.toml` manifests.
fn walk(
    root: &Path,
    dir: &Path,
    rs: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, rs, manifests)?;
        } else if name.ends_with(".rs") {
            rs.push(path);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        }
    }
    Ok(())
}

/// Root-relative, `/`-separated path for diagnostics and reports.
fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

//! The determinism, hermeticity and panic-policy rules that operate on a
//! single source file. Rules append [`Finding`]s; allow-annotation
//! routing happens centrally in [`crate::run`] so unused allows can be
//! detected. (Cargo manifests are handled in [`crate::manifest`], the
//! cross-file JSONL schema rule in [`crate::schema`], seed-provenance
//! taint in [`crate::taint`], float merge-order in [`crate::floatsum`].)

use crate::facts::{Finding, MapIterSite};
use crate::source::{SourceFile, Span};
use crate::Options;

/// Determinism: wall-clock reads are banned in simulation crates.
/// Simulated time comes from the event loop; real time would make runs
/// irreproducible. (Thread primitives are the [`par_exec`] rule.)
pub fn wall_clock(file: &SourceFile, opts: &Options, out: &mut Vec<Finding>) {
    if !opts.is_sim_crate(&file.crate_name) {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test(i) {
            continue;
        }
        let trailing2 = |a: &str, b: &str| {
            toks.get(i + 1).is_some_and(|t| t.is_sym("::")) && {
                toks.get(i + 2).is_some_and(|t| t.is_ident(b)) && toks[i].is_ident(a)
            }
        };
        let hit = if trailing2("SystemTime", "now") {
            Some("SystemTime::now")
        } else if trailing2("Instant", "now") {
            Some("Instant::now")
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(Finding::local(
                "wall-clock",
                toks[i].line,
                format!(
                    "`{what}` in simulation crate `{}`: use simulated time / the event loop",
                    file.crate_name
                ),
            ));
        }
    }
}

/// Types that introduce shared mutable state between threads. Banned even
/// inside the parallel executor: its byte-identity argument rests on
/// shards being pure, so every cross-thread cell needs an individual,
/// justified allow annotation.
const SHARED_STATE_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceLock",
    "LazyLock",
];

/// Read-modify-write methods on atomics, flagged alongside the types so
/// each *use* of a scheduling cell carries its own justification.
const SHARED_STATE_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Determinism: OS threads are confined to the deterministic fork-join
/// executor (`Options::par_exec_files`, normally `simcore::par`). Outside
/// it, any `thread::spawn` / `thread::scope` / `thread::Builder` in a
/// simulation crate is a violation; *inside* it, thread primitives are the
/// point, but shared-mutable-state primitives (mutexes, cells, atomics and
/// their read-modify-write calls, `static mut`) are flagged so that every
/// hole in the "shards are pure" argument is individually justified.
pub fn par_exec(file: &SourceFile, opts: &Options, out: &mut Vec<Finding>) {
    let is_executor = opts
        .par_exec_files
        .iter()
        .any(|suffix| file.rel.ends_with(suffix.as_str()));
    if !is_executor && !opts.is_sim_crate(&file.crate_name) {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test(i) {
            continue;
        }
        if is_executor {
            let t = &toks[i];
            let (what, line) = if t.kind == crate::lexer::TokKind::Ident
                && (SHARED_STATE_TYPES.contains(&t.text.as_str()) || t.text.starts_with("Atomic"))
            {
                (format!("`{}`", t.text), t.line)
            } else if t.is_sym(".")
                && toks
                    .get(i + 1)
                    .is_some_and(|m| SHARED_STATE_METHODS.contains(&m.text.as_str()))
                && toks.get(i + 2).is_some_and(|m| m.is_sym("("))
            {
                (format!("`.{}(...)`", toks[i + 1].text), toks[i + 1].line)
            } else if t.is_ident("static") && toks.get(i + 1).is_some_and(|m| m.is_ident("mut")) {
                ("`static mut`".to_string(), t.line)
            } else {
                continue;
            };
            out.push(Finding::local(
                "par-exec",
                line,
                format!(
                    "{what} in parallel executor `{}`: shards must stay pure — \
                     justify scheduling-only state with an allow annotation",
                    file.rel
                ),
            ));
        } else {
            let trailing2 = |b: &str| {
                toks[i].is_ident("thread")
                    && toks.get(i + 1).is_some_and(|t| t.is_sym("::"))
                    && toks.get(i + 2).is_some_and(|t| t.is_ident(b))
            };
            let hit = if trailing2("spawn") {
                Some("thread::spawn")
            } else if trailing2("scope") {
                Some("thread::scope")
            } else if trailing2("Builder") {
                Some("thread::Builder")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(Finding::local(
                    "par-exec",
                    toks[i].line,
                    format!(
                        "`{what}` in simulation crate `{}`: OS threads are confined to \
                         the deterministic fork-join executor (`simcore::par`)",
                        file.crate_name
                    ),
                ));
            }
        }
    }
}

/// Hermeticity (source side): no `extern crate`, no `std::process::Command`
/// outside tests. The workspace must build and run offline from vendored
/// sources only, and experiments must not shell out to tools that differ
/// between machines.
pub fn hermetic_source(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test(i) {
            continue;
        }
        if toks[i].is_ident("extern") && toks.get(i + 1).is_some_and(|t| t.is_ident("crate")) {
            out.push(Finding::local(
                "extern-crate",
                toks[i].line,
                "`extern crate`: the workspace is hermetic, only in-tree path dependencies are allowed".to_string(),
            ));
        }
        if toks[i].is_ident("process")
            && toks.get(i + 1).is_some_and(|t| t.is_sym("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("Command"))
        {
            out.push(Finding::local(
                "process-spawn",
                toks[i].line,
                "`process::Command`: spawning external processes breaks hermetic, reproducible runs".to_string(),
            ));
        }
    }
}

/// Panic policy: `unwrap()` / `expect()` are banned in fault-recovery
/// paths. A fault plan exercises exactly the error branches a panic would
/// short-circuit, so these files must propagate errors (or carry an
/// explicit justification).
pub fn panic_path(file: &SourceFile, opts: &Options, out: &mut Vec<Finding>) {
    if !opts
        .panic_path_files
        .iter()
        .any(|suffix| file.rel.ends_with(suffix.as_str()))
    {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test(i) {
            continue;
        }
        if !toks[i].is_sym(".") {
            continue;
        }
        let method = match toks.get(i + 1) {
            Some(t) if t.is_ident("unwrap") || t.is_ident("expect") => t.text.clone(),
            _ => continue,
        };
        if toks.get(i + 2).is_some_and(|t| t.is_sym("(")) {
            out.push(Finding::local(
                "panic-path",
                toks[i + 1].line,
                format!(
                    "`.{method}(...)` in fault-recovery path `{}`: propagate the error instead",
                    file.rel
                ),
            ));
        }
    }
}

/// Oracle purity: the convergence oracle judges a finished run, so it
/// must not be able to edit the evidence. In the oracle files
/// (`Options::oracle_files`) any mutable borrow — `&mut` on a parameter,
/// receiver, local, or expression — outside tests is a violation: every
/// check folds over the audit ledger through `&self` accessors only. (A
/// `fmt::Formatter` counts too; the oracle renders via owned `String`s.)
pub fn oracle_pure(file: &SourceFile, opts: &Options, out: &mut Vec<Finding>) {
    if !opts
        .oracle_files
        .iter()
        .any(|suffix| file.rel.ends_with(suffix.as_str()))
    {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test(i) {
            continue;
        }
        if toks[i].is_sym("&") && toks.get(i + 1).is_some_and(|t| t.is_ident("mut")) {
            out.push(Finding::local(
                "oracle-pure",
                toks[i].line,
                format!(
                    "`&mut` in convergence-oracle file `{}`: the oracle is read-only — \
                     it folds over the audit ledger through `&self` accessors and must \
                     not be able to mutate the run it is judging",
                    file.rel
                ),
            ));
        }
    }
}

/// Methods that walk or copy a whole materialised flow vector.
const MATERIALIZE_METHODS: &[&str] = &["iter", "iter_mut", "into_iter", "clone", "to_vec"];

/// Streaming: analysis code consumes flow records through the single-pass
/// pipeline (`dropbox_analysis::stream`), not by re-scanning a
/// materialised `.flows` vector once per report. Whole-vector iteration
/// (`.flows.iter()`, `for f in &out.dataset.flows { … }`, `.flows.clone()`)
/// is flagged in analysis crates outside the declared compatibility view
/// (`Options::materialize_exempt_files`); `.flows.len()`, indexing, and
/// passing the slice onward are fine.
pub fn full_materialize(file: &SourceFile, opts: &Options, out: &mut Vec<Finding>) {
    if !opts.analysis_crates.iter().any(|c| c == &file.crate_name) {
        return;
    }
    if opts
        .materialize_exempt_files
        .iter()
        .any(|suffix| file.rel.ends_with(suffix.as_str()))
    {
        return;
    }
    let toks = &file.toks;
    let mut flag = |idx: usize, line: u32, how: &str| {
        if file.in_test(idx) {
            return;
        }
        out.push(Finding::local(
            "full-materialize",
            line,
            format!(
                "{how} over a materialised `.flows` vector in analysis crate `{}`: \
                 feed the records through the streaming pipeline \
                 (`dropbox_analysis::stream`) instead of re-scanning",
                file.crate_name
            ),
        ));
    };

    // `<expr>.flows.iter()` / `.clone()` / ….
    for i in 0..toks.len() {
        if toks[i].is_sym(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("flows"))
            && toks.get(i + 2).is_some_and(|t| t.is_sym("."))
            && toks
                .get(i + 3)
                .is_some_and(|t| MATERIALIZE_METHODS.contains(&t.text.as_str()))
            && toks.get(i + 4).is_some_and(|t| t.is_sym("("))
        {
            let how = format!("`.flows.{}()`", toks[i + 3].text);
            flag(i + 3, toks[i + 3].line, &how);
        }
    }

    // `for x in [&][mut] <path>.flows { … }` — the path must be a field
    // access (at least one dot), so one-pass helpers that take a bare
    // `flows: &[FlowRecord]` slice stay legal.
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_idx = None;
        while j < toks.len() && j < i + 64 {
            let t = &toks[j];
            if t.is_sym("(") || t.is_sym("[") {
                depth += 1;
            } else if t.is_sym(")") || t.is_sym("]") {
                depth -= 1;
            } else if depth == 0 && t.is_ident("in") {
                in_idx = Some(j);
                break;
            } else if t.is_sym("{") || t.is_sym(";") {
                break;
            }
            j += 1;
        }
        let Some(in_idx) = in_idx else { continue };
        let mut k = in_idx + 1;
        while k < toks.len() && (toks[k].is_sym("&") || toks[k].is_ident("mut")) {
            k += 1;
        }
        let mut last_ident = None;
        let mut dots = 0usize;
        while k < toks.len() && toks[k].kind == crate::lexer::TokKind::Ident {
            last_ident = Some(k);
            if toks.get(k + 1).is_some_and(|t| t.is_sym("."))
                && toks
                    .get(k + 2)
                    .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident)
            {
                dots += 1;
                k += 2;
            } else {
                k += 1;
                break;
            }
        }
        let Some(last) = last_ident else { continue };
        if dots == 0 || !toks[last].is_ident("flows") || !toks.get(k).is_some_and(|t| t.is_sym("{"))
        {
            continue;
        }
        flag(last, toks[last].line, "`for` loop");
    }
}

/// Methods whose call on a hash container exposes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// A `HashMap`/`HashSet` binding declared in this file.
#[derive(Debug)]
struct MapDecl {
    name: String,
    /// `Some(span)`: local/parameter visible inside that function span.
    /// `None`: struct field — use sites must be field accesses (`x.name`).
    scope: Option<Span>,
    kind: &'static str,
}

/// Render the emission-tier map-iter message for a deferred site once the
/// global fixpoint has decided the enclosing function reaches emission.
pub fn map_iter_emit_finding(site: &MapIterSite) -> Finding {
    Finding {
        pass: "resolve".to_string(),
        rule: "map-iter".to_string(),
        line: site.line,
        message: format!(
            "{how} over `{name}` ({kind}): iteration order is nondeterministic and reaches \
             JSON/JSONL emission; use BTreeMap/BTreeSet or sort first",
            how = site.how,
            name = site.name,
            kind = site.kind
        ),
        symbol: String::new(),
    }
}

/// Determinism: iterating a `HashMap`/`HashSet` is flagged when the
/// containing code either lives in a simulation crate (strict tier — any
/// iteration is banned; hash order varies per process and per run) or
/// reaches JSON/JSONL emission. The emission tier depends on the global
/// reachability fixpoint, so those sites are *deferred*: recorded here,
/// decided in [`crate::run`] once [`crate::resolve::Workspace`] exists.
pub fn map_iter(
    file: &SourceFile,
    opts: &Options,
    out: &mut Vec<Finding>,
    deferred: &mut Vec<MapIterSite>,
) {
    let decls = map_decls(file);
    if decls.is_empty() {
        return;
    }
    let strict = opts.is_sim_crate(&file.crate_name);
    let toks = &file.toks;

    let mut flag = |idx: usize, name: &str, kind: &str, how: &str| {
        if file.in_test(idx) {
            return;
        }
        if strict {
            out.push(Finding::local(
                "map-iter",
                toks[idx].line,
                format!(
                    "{how} over `{name}` ({kind}): iteration order is nondeterministic in \
                     simulation crate `{}`; use BTreeMap/BTreeSet or sort first",
                    file.crate_name
                ),
            ));
            return;
        }
        // Emission tier: only meaningful inside a function we can map to
        // the global reachability fixpoint.
        let Some(f) = file.enclosing_fn(idx) else {
            return;
        };
        let Some(fn_idx) = file.fns.iter().position(|g| g.sig_start == f.sig_start) else {
            return;
        };
        deferred.push(MapIterSite {
            fn_idx: fn_idx as u64,
            line: toks[idx].line,
            name: name.to_string(),
            kind: kind.to_string(),
            how: how.to_string(),
        });
    };

    // Method-style iteration: `<recv>.iter()`, `.keys()`, …
    for i in 0..toks.len() {
        if !toks[i].is_sym(".") {
            continue;
        }
        let is_iter_call = toks
            .get(i + 1)
            .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
            && toks.get(i + 2).is_some_and(|t| t.is_sym("("));
        if !is_iter_call || i == 0 {
            continue;
        }
        if let Some((name, kind)) = receiver_match(file, &decls, i - 1, i) {
            let method = toks[i + 1].text.clone();
            flag(i, &name, kind, &format!("`.{method}()`"));
        }
    }

    // `for x in map { … }` / `for x in &self.map { … }`.
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_idx = None;
        while j < toks.len() && j < i + 64 {
            let t = &toks[j];
            if t.is_sym("(") || t.is_sym("[") {
                depth += 1;
            } else if t.is_sym(")") || t.is_sym("]") {
                depth -= 1;
            } else if depth == 0 && t.is_ident("in") {
                in_idx = Some(j);
                break;
            } else if t.is_sym("{") || t.is_sym(";") {
                break;
            }
            j += 1;
        }
        let Some(in_idx) = in_idx else { continue };
        let mut k = in_idx + 1;
        while k < toks.len() && (toks[k].is_sym("&") || toks[k].is_ident("mut")) {
            k += 1;
        }
        // Walk a dotted path; the iterated expression must end right at `{`.
        let mut last_ident = None;
        while k < toks.len() && toks[k].kind == crate::lexer::TokKind::Ident {
            last_ident = Some(k);
            if toks.get(k + 1).is_some_and(|t| t.is_sym("."))
                && toks
                    .get(k + 2)
                    .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident)
            {
                k += 2;
            } else {
                k += 1;
                break;
            }
        }
        let Some(last) = last_ident else { continue };
        if !toks.get(k).is_some_and(|t| t.is_sym("{")) {
            continue;
        }
        if let Some((name, kind)) = receiver_match(file, &decls, last, last) {
            flag(last, &name, kind, "`for` loop");
        }
    }
}

/// Match the identifier at `recv` against the declared maps. `use_idx` is
/// where scope containment is evaluated.
fn receiver_match(
    file: &SourceFile,
    decls: &[MapDecl],
    recv: usize,
    use_idx: usize,
) -> Option<(String, &'static str)> {
    let toks = &file.toks;
    if toks[recv].kind != crate::lexer::TokKind::Ident {
        return None;
    }
    let name = &toks[recv].text;
    let preceded_by_dot = recv >= 1 && toks[recv - 1].is_sym(".");
    for d in decls {
        if &d.name != name {
            continue;
        }
        match d.scope {
            Some((s, e)) => {
                // Locals are referenced bare, inside their function.
                if !preceded_by_dot && use_idx >= s && use_idx < e {
                    return Some((d.name.clone(), d.kind));
                }
            }
            None => {
                // Fields are referenced as `expr.field`.
                if preceded_by_dot {
                    return Some((d.name.clone(), d.kind));
                }
            }
        }
    }
    None
}

/// Collect names bound to `HashMap`/`HashSet` in this file: struct fields,
/// locals with type ascription, parameters, and `= HashMap::new()`-style
/// initialisations.
fn map_decls(file: &SourceFile) -> Vec<MapDecl> {
    let toks = &file.toks;
    let mut decls = Vec::new();
    for k in 0..toks.len() {
        let kind = if toks[k].is_ident("HashMap") {
            "HashMap"
        } else if toks[k].is_ident("HashSet") {
            "HashSet"
        } else {
            continue;
        };
        // Step back over a `std::collections::` path prefix.
        let mut p = k;
        while p >= 2 && toks[p - 1].is_sym("::") && toks[p - 2].kind == crate::lexer::TokKind::Ident
        {
            p -= 2;
        }
        if p == 0 {
            continue;
        }
        // Skip reference/lifetime noise between the binder and the type.
        let mut q = p - 1;
        while q > 0
            && (toks[q].is_sym("&")
                || toks[q].is_ident("mut")
                || toks[q].kind == crate::lexer::TokKind::Lifetime)
        {
            q -= 1;
        }
        let binder = if (toks[q].is_sym(":") || toks[q].is_sym("=")) && q >= 1 {
            &toks[q - 1]
        } else {
            continue;
        };
        if binder.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        let scope = file.enclosing_fn(k).map(|f| (f.sig_start, f.body_end));
        decls.push(MapDecl {
            name: binder.text.clone(),
            scope,
            kind,
        });
    }
    decls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::FileFacts;
    use crate::resolve::Workspace;
    use std::collections::BTreeMap;

    fn check(src: &str, sim: bool) -> Vec<Finding> {
        let file = SourceFile::analyse("crates/x/src/lib.rs", src);
        let mut opts = Options::workspace();
        if sim {
            opts.sim_crates.push("x".to_string());
        }
        let mut out = Vec::new();
        let mut deferred = Vec::new();
        wall_clock(&file, &opts, &mut out);
        par_exec(&file, &opts, &mut out);
        hermetic_source(&file, &mut out);
        panic_path(&file, &opts, &mut out);
        map_iter(&file, &opts, &mut out, &mut deferred);
        out
    }

    #[test]
    fn wall_clock_only_in_sim_crates() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(check(src, false).is_empty());
        let v = check(src, true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "wall-clock");
    }

    #[test]
    fn thread_primitives_outside_the_executor_are_par_exec() {
        for src in [
            "fn f() { let h = std::thread::spawn(|| 1); let _ = h.join(); }",
            "fn f() { std::thread::scope(|s| { let _ = s; }); }",
            "fn f() { let b = thread::Builder::new(); let _ = b; }",
        ] {
            assert!(check(src, false).is_empty(), "non-sim crate: {src}");
            let v = check(src, true);
            assert_eq!(v.len(), 1, "{src}: {v:?}");
            assert_eq!(v[0].rule, "par-exec");
            assert!(v[0].message.contains("simcore::par"), "{}", v[0].message);
        }
    }

    #[test]
    fn executor_file_allows_threads_but_flags_shared_state() {
        let src = "fn f() { std::thread::scope(|s| { let _ = s; });\n\
                   let m = std::sync::Mutex::new(0);\n\
                   let c = std::sync::atomic::AtomicUsize::new(0);\n\
                   let _ = c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);\n\
                   let _ = m; }";
        let file = SourceFile::analyse("crates/simcore/src/par.rs", src);
        let mut v = Vec::new();
        par_exec(&file, &Options::workspace(), &mut v);
        let what: Vec<&str> = v.iter().map(|x| x.rule.as_str()).collect();
        assert_eq!(what, ["par-exec", "par-exec", "par-exec"], "{v:?}");
        assert!(v[0].message.contains("`Mutex`"));
        assert!(v[1].message.contains("`AtomicUsize`"));
        assert!(v[2].message.contains("`.fetch_add(...)`"));
    }

    fn check_oracle(rel: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::analyse(rel, src);
        let mut v = Vec::new();
        oracle_pure(&file, &Options::workspace(), &mut v);
        v
    }

    #[test]
    fn oracle_pure_flags_mutable_borrows_in_oracle_files() {
        let src = "pub fn check(audit: &mut SyncAudit) -> Vec<u8> {\n\
                   let v: &mut Vec<u8> = &mut audit.buf;\n\
                   v.clear(); Vec::new() }";
        let v = check_oracle("crates/workload/src/oracle.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "oracle-pure"));
        assert!(v[0].message.contains("read-only"), "{}", v[0].message);
        // Other files are out of scope, even with `&mut` everywhere.
        assert!(check_oracle("crates/workload/src/driver.rs", src).is_empty());
    }

    #[test]
    fn oracle_pure_permits_shared_borrows_and_test_code() {
        let src = "pub fn check(audit: &SyncAudit) -> Vec<u8> {\n\
                   let mut out = Vec::new();\n\
                   out.extend(audit.commits().iter().map(|c| c.id as u8));\n\
                   out }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t() { let x = &mut Vec::<u8>::new(); x.clear(); } }";
        assert!(check_oracle("crates/workload/src/oracle.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f() { let t = SystemTime::now(); } }";
        assert!(check(src, true).is_empty());
    }

    #[test]
    fn local_map_iteration_in_sim_crate() {
        let src =
            "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for x in &m { let _ = x; } }";
        let v = check(src, true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "map-iter");
    }

    #[test]
    fn field_map_iteration_reaching_emission_in_non_sim_crate() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   impl S { fn dump(&self) { for k in self.m.keys() { k.to_json(); } } }";
        let opts = Options::workspace();
        let facts = vec![FileFacts::compute("crates/x/src/lib.rs", src, &opts)];
        let ws = Workspace::build(&facts, &BTreeMap::new());
        let fired: Vec<&crate::facts::MapIterSite> = facts[0]
            .map_iter
            .iter()
            .filter(|s| ws.emitting[0][s.fn_idx as usize])
            .collect();
        assert_eq!(fired.len(), 1, "{:?}", facts[0].map_iter);
        let f = map_iter_emit_finding(fired[0]);
        assert_eq!(f.rule, "map-iter");
        assert!(f.message.contains("emission"));

        let quiet = "struct S { m: HashMap<u32, u32> }\n\
                     impl S { fn count(&self) -> usize { self.m.keys().count() } }";
        let facts = vec![FileFacts::compute("crates/x/src/lib.rs", quiet, &opts)];
        let ws = Workspace::build(&facts, &BTreeMap::new());
        assert!(facts[0]
            .map_iter
            .iter()
            .all(|s| !ws.emitting[0][s.fn_idx as usize]));
    }

    #[test]
    fn lookups_are_fine() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }";
        assert!(check(src, true).is_empty());
    }

    fn check_materialize(rel: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::analyse(rel, src);
        let mut v = Vec::new();
        full_materialize(&file, &Options::workspace(), &mut v);
        v
    }

    #[test]
    fn full_materialize_flags_analysis_rescans() {
        let src = "fn f(ds: &Dataset) -> u64 {\n\
                   let mut n = 0;\n\
                   for f in &ds.flows { n += f; }\n\
                   n + ds.flows.iter().count() as u64 }";
        let v = check_materialize("crates/core/src/other.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "full-materialize"));
        // The declared compatibility view and non-analysis crates are out
        // of scope.
        assert!(check_materialize("crates/core/src/dataset.rs", src).is_empty());
        assert!(check_materialize("crates/workload/src/lib.rs", src).is_empty());
    }

    #[test]
    fn full_materialize_permits_single_pass_access() {
        // `.len()`, indexing, passing the slice on, and one-pass helpers
        // over a bare slice are all legal.
        let src = "fn g(flows: &[u32], ds: &Dataset) -> u64 {\n\
                   let mut n = ds.flows.len() as u64 + ds.flows[0];\n\
                   for f in flows { n += f; }\n\
                   run_one(&ds.flows, n) }";
        assert!(check_materialize("crates/experiments/src/lib.rs", src).is_empty());
    }
}

//! Workspace-wide symbol resolution and the global fixpoints built on it.
//!
//! The resolver turns the per-file facts into a symbol table keyed by
//! `(crate import name, module path, function name)` and resolves every
//! recorded call site against it: path-qualified calls (`crate::`,
//! `self::`, `super::`, explicit crate paths), `use`-aliased names
//! (including renames — `use simcore::par::household_stream as hh`),
//! glob imports, and bare same-module names. Method calls stay
//! name-matched — without type inference a receiver's impl cannot be
//! pinned down, and pretending otherwise would silently mis-resolve.
//!
//! Two fixpoints run over the resolved graph:
//!
//! * **emission reachability** — which functions transitively reach a
//!   serialisation point (`to_json` / `write_jsonl` / `json::to_string`).
//!   This replaces the old name-only call graph and feeds the map-iter
//!   emission tier.
//! * **parameter flow** — per function, which parameters flow into seed
//!   derivation (`fork` / `fork_named` / `shard_stream` /
//!   `household_stream`) and which flow into serialisation. The taint
//!   pass consults these to flag tainted arguments across crate
//!   boundaries.

use crate::facts::{CallFact, FileFacts};
use crate::taint;
use std::collections::BTreeMap;

/// Method/function names whose matches are too generic to propagate
/// emission through when a call cannot be resolved to a workspace symbol.
pub const STOPLIST: &[&str] = &[
    "to_string",
    "new",
    "default",
    "clone",
    "from",
    "into",
    "fmt",
    "next",
    "len",
    "get",
    "push",
    "insert",
    "remove",
    "write",
    "flush",
    "finish",
    "extend",
    "sum",
    "min",
    "max",
    "cmp",
    "eq",
    "hash",
    "collect",
    "map",
    "iter",
    "contains",
];

/// Resolution result for one call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// Resolved to a workspace function: (file index, fn index).
    Fn(usize, usize),
    /// Unresolved; fall back to name matching (methods, macros-adjacent
    /// constructs, unknown local names).
    Name,
    /// Resolved to a path outside the workspace (`std::…`); opaque.
    External,
}

/// One pre-resolved call site: the target, plus (for name fallbacks) the
/// stoplist-filtered candidate definitions.
struct PreCall {
    target: Target,
    name_defs: Box<[(usize, usize)]>,
}

/// The resolved workspace: symbol table plus fixpoint results.
pub struct Workspace<'a> {
    /// The per-file facts the table was built from.
    pub files: &'a [FileFacts],
    /// Per file: the crate's import name (package name with `-` → `_`).
    import_of: Vec<String>,
    /// `(import, module path, fn name)` → (file, fn) for free functions;
    /// methods are keyed too (last definition wins) but resolution only
    /// reaches them through explicit paths.
    symbols: BTreeMap<(String, String, String), (usize, usize)>,
    /// Name → all (file, fn) definitions, for fallback matching.
    by_name: BTreeMap<String, Vec<(usize, usize)>>,
    /// Per (file, fn, call): the resolution result, computed once — the
    /// fixpoints iterate many times over every call site, and resolving
    /// inside the loop dominates the whole pass.
    resolved: Vec<Vec<Vec<PreCall>>>,
    /// Per (file, fn): reaches a serialisation point.
    pub emitting: Vec<Vec<bool>>,
    /// Per (file, fn, param): flows into seed derivation.
    pub seed_param: Vec<Vec<Vec<bool>>>,
    /// Per (file, fn, param): flows into serialisation.
    pub emit_param: Vec<Vec<Vec<bool>>>,
}

impl<'a> Workspace<'a> {
    /// Build the symbol table and run both fixpoints. `pkg` maps crate
    /// directory names to import names; directories without a manifest
    /// fall back to the directory name with `-` replaced by `_`.
    pub fn build(files: &'a [FileFacts], pkg: &BTreeMap<String, String>) -> Workspace<'a> {
        let import_of: Vec<String> = files
            .iter()
            .map(|f| {
                pkg.get(&f.crate_dir)
                    .cloned()
                    .unwrap_or_else(|| f.crate_dir.replace('-', "_"))
            })
            .collect();
        let mut symbols = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            let module = file.module.join("::");
            for (fj, f) in file.fns.iter().enumerate() {
                if f.owner.is_empty() {
                    symbols.insert(
                        (import_of[fi].clone(), module.clone(), f.name.clone()),
                        (fi, fj),
                    );
                }
                by_name.entry(f.name.clone()).or_default().push((fi, fj));
            }
        }
        let mut ws = Workspace {
            files,
            import_of,
            symbols,
            by_name,
            resolved: Vec::new(),
            emitting: Vec::new(),
            seed_param: Vec::new(),
            emit_param: Vec::new(),
        };
        ws.resolved = files
            .iter()
            .enumerate()
            .map(|(fi, file)| {
                file.fns
                    .iter()
                    .map(|f| f.calls.iter().map(|c| ws.pre_resolve(fi, c)).collect())
                    .collect()
            })
            .collect();
        ws.compute_emitting();
        ws.compute_param_flow();
        ws
    }

    /// Resolve one call eagerly; for name fallbacks, pre-filter the
    /// candidate definitions the emission fixpoint will repeatedly test.
    fn pre_resolve(&self, fi: usize, c: &CallFact) -> PreCall {
        match self.resolve(fi, c) {
            Target::Fn(di, dj) => PreCall {
                target: Target::Fn(di, dj),
                name_defs: Box::new([]),
            },
            Target::External => PreCall {
                target: Target::External,
                name_defs: Box::new([]),
            },
            Target::Name => {
                let name = c.path.last().map(String::as_str).unwrap_or("");
                let defs = if STOPLIST.contains(&name) {
                    Box::new([]) as Box<[(usize, usize)]>
                } else {
                    self.defs_named(name).to_vec().into_boxed_slice()
                };
                PreCall {
                    target: Target::Name,
                    name_defs: defs,
                }
            }
        }
    }

    /// The precomputed resolution of call `ci` in fn `fj` of file `fi`.
    pub fn target(&self, fi: usize, fj: usize, ci: usize) -> Target {
        self.resolved[fi][fj][ci].target
    }

    /// All workspace definitions of `name` (fallback matching).
    pub fn defs_named(&self, name: &str) -> &[(usize, usize)] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Human-readable path of a resolved function, for finding provenance.
    pub fn symbol_path(&self, fi: usize, fj: usize) -> String {
        let file = &self.files[fi];
        let f = &file.fns[fj];
        let mut parts = vec![self.import_of[fi].clone()];
        parts.extend(file.module.iter().cloned());
        if !f.owner.is_empty() {
            parts.push(f.owner.clone());
        }
        parts.push(f.name.clone());
        parts.join("::")
    }

    /// Resolve one call site recorded in file `fi`.
    pub fn resolve(&self, fi: usize, call: &CallFact) -> Target {
        if call.method {
            return Target::Name;
        }
        let segs = &call.path;
        if segs.is_empty() {
            return Target::Name;
        }
        if segs.len() == 1 {
            let name = &segs[0];
            let file = &self.files[fi];
            // Same crate, same module.
            let key = (
                self.import_of[fi].clone(),
                file.module.join("::"),
                name.clone(),
            );
            if let Some(&(di, dj)) = self.symbols.get(&key) {
                return Target::Fn(di, dj);
            }
            // `use` alias (exact rename or leaf name).
            for u in &file.uses {
                if u.alias == *name {
                    return self.resolve_path(fi, &u.path);
                }
            }
            // Glob imports: try each prefix.
            for u in &file.uses {
                if u.alias == "*" {
                    let mut full = u.path.clone();
                    full.push(name.clone());
                    if let Target::Fn(di, dj) = self.resolve_path(fi, &full) {
                        return Target::Fn(di, dj);
                    }
                }
            }
            return Target::Name;
        }
        self.resolve_path(fi, segs)
    }

    /// Resolve a multi-segment path written in file `fi`.
    fn resolve_path(&self, fi: usize, segs: &[String]) -> Target {
        let file = &self.files[fi];
        let own = &self.import_of[fi];
        // Normalise the head: crate/self/super map into the file's own
        // crate; a `use` alias for the head expands its path.
        let mut path: Vec<String> = Vec::new();
        match segs[0].as_str() {
            "crate" => {
                path.push(own.clone());
                path.extend(segs[1..].iter().cloned());
            }
            "self" => {
                path.push(own.clone());
                path.extend(file.module.iter().cloned());
                path.extend(segs[1..].iter().cloned());
            }
            "super" => {
                path.push(own.clone());
                let n = file.module.len().saturating_sub(1);
                path.extend(file.module[..n].iter().cloned());
                path.extend(segs[1..].iter().cloned());
            }
            head => {
                if let Some(u) = file.uses.iter().find(|u| u.alias == head && u.alias != "*") {
                    path.extend(u.path.iter().cloned());
                } else {
                    path.push(head.to_string());
                }
                path.extend(segs[1..].iter().cloned());
            }
        }
        if path.len() < 2 {
            return Target::Name;
        }
        let import = &path[0];
        if !self.import_of.iter().any(|i| i == import) {
            // A bare module name inside the same crate (`par::fork(..)`
            // without a `use`): retry with the crate prefixed.
            let retry = [own.clone()]
                .into_iter()
                .chain(path.iter().cloned())
                .collect::<Vec<_>>();
            if retry[0] != path[0] && self.import_of.iter().any(|i| i == &retry[0]) {
                if let t @ Target::Fn(..) = self.lookup(&retry) {
                    return t;
                }
            }
            return Target::External;
        }
        self.lookup(&path)
    }

    /// Look a fully-normalised path up in the symbol table: exact module
    /// match, then crate-root re-export, then unique-by-name within the
    /// crate.
    fn lookup(&self, path: &[String]) -> Target {
        let import = &path[0];
        let name = path.last().unwrap();
        let mid = path[1..path.len() - 1].join("::");
        if let Some(&(di, dj)) = self.symbols.get(&(import.clone(), mid, name.clone())) {
            return Target::Fn(di, dj);
        }
        if let Some(&(di, dj)) = self
            .symbols
            .get(&(import.clone(), String::new(), name.clone()))
        {
            return Target::Fn(di, dj);
        }
        let in_crate: Vec<(usize, usize)> = self
            .defs_named(name)
            .iter()
            .copied()
            .filter(|&(di, _)| &self.import_of[di] == import)
            .collect();
        if let [only] = in_crate[..] {
            return Target::Fn(only.0, only.1);
        }
        Target::Name
    }

    /// Emission reachability: seeded by direct serialisation, propagated
    /// backwards over resolved edges; unresolved names fall back to
    /// any-definition matching, guarded by the stoplist.
    fn compute_emitting(&mut self) {
        let mut emitting: Vec<Vec<bool>> = self
            .files
            .iter()
            .map(|f| f.fns.iter().map(|x| x.direct_emit).collect())
            .collect();
        for _ in 0..64 {
            let mut changed = false;
            for fi in 0..self.files.len() {
                for (fj, f) in self.files[fi].fns.iter().enumerate() {
                    if emitting[fi][fj] {
                        continue;
                    }
                    let reaches = (0..f.calls.len()).any(|ci| {
                        let pre = &self.resolved[fi][fj][ci];
                        match pre.target {
                            Target::Fn(di, dj) => emitting[di][dj],
                            Target::External => false,
                            Target::Name => pre.name_defs.iter().any(|&(di, dj)| emitting[di][dj]),
                        }
                    });
                    if reaches {
                        emitting[fi][fj] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.emitting = emitting;
    }

    /// Parameter-flow fixpoint: which parameters reach seed derivation or
    /// serialisation, transitively through resolved free-function calls.
    fn compute_param_flow(&mut self) {
        let mut seed: Vec<Vec<Vec<bool>>> = Vec::new();
        let mut emit: Vec<Vec<Vec<bool>>> = Vec::new();
        for file in self.files {
            let mut s = Vec::new();
            let mut e = Vec::new();
            for f in &file.fns {
                let n = f.params.len();
                // Seed roots: the canonical derivation functions — any
                // argument to them decides a stream's identity.
                let is_seed_root = taint::SEED_FN_NAMES.contains(&f.name.as_str());
                // Emission roots: serialisation entry points defined in
                // the workspace.
                let is_emit_root = matches!(f.name.as_str(), "to_json" | "write_jsonl")
                    || (f.name == "to_string" && file.module.last().is_some_and(|m| m == "json"));
                s.push(vec![is_seed_root; n]);
                e.push(vec![is_emit_root; n]);
            }
            seed.push(s);
            emit.push(e);
        }
        for _ in 0..64 {
            let mut changed = false;
            for fi in 0..self.files.len() {
                for (fj, f) in self.files[fi].fns.iter().enumerate() {
                    for (ci, c) in f.calls.iter().enumerate() {
                        let last = c.path.last().map(String::as_str).unwrap_or("");
                        // Name-level sinks cover method calls and
                        // unresolved paths.
                        let name_seed = taint::SEED_FN_NAMES.contains(&last);
                        let name_emit = taint::TAINT_SINK_NAMES.contains(&last)
                            || c.path
                                .ends_with(&["json".to_string(), "to_string".to_string()]);
                        let resolved = match self.resolved[fi][fj][ci].target {
                            Target::Fn(di, dj) => Some((di, dj)),
                            _ => None,
                        };
                        for (a, arg) in c.args.iter().enumerate() {
                            let mut to_seed = name_seed;
                            let mut to_emit = name_emit;
                            if let Some((di, dj)) = resolved {
                                let p2 = callee_param(&self.files[di].fns[dj].params, c, a);
                                if let Some(p2) = p2 {
                                    to_seed |= seed[di][dj].get(p2).copied().unwrap_or(false);
                                    to_emit |= emit[di][dj].get(p2).copied().unwrap_or(false);
                                }
                            }
                            for &p in &arg.params {
                                let p = p as usize;
                                if to_seed && !seed[fi][fj][p] {
                                    seed[fi][fj][p] = true;
                                    changed = true;
                                }
                                if to_emit && !emit[fi][fj][p] {
                                    emit[fi][fj][p] = true;
                                    changed = true;
                                }
                            }
                        }
                        if name_emit {
                            for &p in &c.recv_params {
                                let p = p as usize;
                                if !emit[fi][fj][p] {
                                    emit[fi][fj][p] = true;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.seed_param = seed;
        self.emit_param = emit;
    }
}

/// Map argument position `a` of call `c` to the callee's parameter index
/// (skipping a leading `self` on the callee for method-shaped targets).
pub fn callee_param(callee_params: &[String], c: &CallFact, a: usize) -> Option<usize> {
    let base = if callee_params.first().is_some_and(|p| p == "self") && c.method {
        1
    } else {
        0
    };
    let p = base + a;
    if p < callee_params.len() {
        Some(p)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::FileFacts;
    use crate::Options;

    fn build_facts(files: &[(&str, &str)]) -> Vec<FileFacts> {
        let opts = Options::workspace();
        files
            .iter()
            .map(|(rel, src)| FileFacts::compute(rel, src, &opts))
            .collect()
    }

    #[test]
    fn direct_and_transitive_emission() {
        let facts = build_facts(&[(
            "crates/core/src/lib.rs",
            "fn leaf(x: &R) { let _ = x.to_json(); }\n\
             fn mid() { leaf(&r()); }\n\
             fn top() { mid(); }\n\
             fn unrelated() { let _ = 1 + 1; }\n",
        )]);
        let ws = Workspace::build(&facts, &BTreeMap::new());
        let e = &ws.emitting[0];
        let names: Vec<&str> = facts[0].fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["leaf", "mid", "top", "unrelated"]);
        assert_eq!(e.as_slice(), [true, true, true, false]);
    }

    #[test]
    fn to_string_does_not_propagate_by_name() {
        // `to_string` is stoplisted: a random Display impl must not make
        // its callers "emitting".
        let facts = build_facts(&[
            (
                "crates/core/src/lib.rs",
                "fn to_string(x: &R) -> String { json::to_string(&x.to_json()) }\n",
            ),
            (
                "crates/workload/src/lib.rs",
                "fn caller(v: u32) -> String { v.to_string() }\n",
            ),
        ]);
        let ws = Workspace::build(&facts, &BTreeMap::new());
        assert!(ws.emitting[0][0], "direct serialisation");
        assert!(!ws.emitting[1][0], "stoplisted name must not propagate");
    }

    #[test]
    fn cross_crate_resolution_through_use_and_alias() {
        let facts = build_facts(&[
            (
                "crates/simcore/src/par.rs",
                "pub fn shard_stream(master: u64, shard: u64) -> Rng { fork(master, shard) }\n",
            ),
            (
                "crates/workload/src/driver.rs",
                "use simcore::par::shard_stream as derive;\n\
                 pub fn go(seed: u64, hh: u64) -> Rng {\n\
                     let a = derive(seed, hh);\n\
                     let b = simcore::par::shard_stream(seed, hh);\n\
                     let c = crate::local(seed);\n\
                     a\n\
                 }\n\
                 pub fn local(x: u64) -> u64 { x }\n",
            ),
        ]);
        let ws = Workspace::build(&facts, &BTreeMap::new());
        let driver = 1usize;
        let go = &facts[driver].fns[0];
        let aliased = go.calls.iter().find(|c| c.path == ["derive"]).unwrap();
        assert_eq!(ws.resolve(driver, aliased), Target::Fn(0, 0));
        let full = go
            .calls
            .iter()
            .find(|c| c.path.len() == 3 && c.path[2] == "shard_stream")
            .unwrap();
        assert_eq!(ws.resolve(driver, full), Target::Fn(0, 0));
        let local = go
            .calls
            .iter()
            .find(|c| c.path.last().is_some_and(|s| s == "local"))
            .unwrap();
        assert_eq!(ws.resolve(driver, local), Target::Fn(1, 1));
    }

    #[test]
    fn param_flow_reaches_seed_through_wrapper() {
        let facts = build_facts(&[(
            "crates/simcore/src/par.rs",
            "pub fn shard_stream(master: u64, shard: u64) -> Rng { make(master, shard) }\n\
                 pub fn spawn_shard(seed: u64, salt: u64) -> Rng { shard_stream(seed, salt) }\n",
        )]);
        let ws = Workspace::build(&facts, &BTreeMap::new());
        // shard_stream is a seed root; spawn_shard's params flow into it.
        assert_eq!(ws.seed_param[0][0], [true, true]);
        assert_eq!(ws.seed_param[0][1], [true, true]);
    }
}

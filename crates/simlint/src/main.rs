//! `simlint` binary: lint the workspace, print diagnostics, write the
//! machine-readable report, and exit non-zero on any violation.
//!
//! ```text
//! cargo run -p simlint --release [-- --root <dir>] [--report <path>]
//! ```
//!
//! `--root` defaults to the current directory (verify.sh runs from the
//! repository root); `--report` defaults to `<root>/results/simlint_report.json`.

use simcore::json;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!("usage: simlint [--root <dir>] [--report <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("simlint: cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let report_path = report_path.unwrap_or_else(|| root.join("results/simlint_report.json"));

    let opts = simlint::Options::workspace();
    let report = match simlint::run(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render());

    if let Some(parent) = report_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("simlint: cannot create {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    let mut payload = json::to_string(&report.to_json());
    payload.push('\n');
    if let Err(e) = std::fs::write(&report_path, payload) {
        eprintln!("simlint: cannot write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

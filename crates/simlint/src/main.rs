//! `simlint` binary: lint the workspace, print diagnostics, write the
//! machine-readable report, and exit non-zero on any violation.
//!
//! ```text
//! cargo run -p simlint --release [-- --root <dir>] [--report <path>] [--no-cache]
//! ```
//!
//! `--root` defaults to the current directory (verify.sh runs from the
//! repository root); `--report` defaults to `<root>/results/simlint_report.json`.
//! The incremental cache lives at `<root>/target/simlint-cache.json`
//! (plus a `.facts` sidecar), keyed by content hash — a fully-warm run
//! replays the cached report without re-analysing anything (override the
//! path with `--cache <path>`, disable with `--no-cache`).

use simcore::json;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut cache_path: Option<PathBuf> = None;
    let mut use_cache = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            "--cache" => cache_path = args.next().map(PathBuf::from),
            "--no-cache" => use_cache = false,
            "--help" | "-h" => {
                eprintln!(
                    "usage: simlint [--root <dir>] [--report <path>] [--cache <path>] [--no-cache]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("simlint: cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let report_path = report_path.unwrap_or_else(|| root.join("results/simlint_report.json"));
    let cache_path = cache_path.unwrap_or_else(|| root.join("target/simlint-cache.json"));

    let opts = simlint::Options::workspace();
    let started = Instant::now();
    let outcome = if use_cache {
        simlint::run_with_cache(&root, &opts, &cache_path).map(|(r, s)| (r, Some(s)))
    } else {
        simlint::run(&root, &opts).map(|r| (r, None))
    };
    let (report, stats) = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();

    print!("{}", report.render());
    match stats {
        Some(s) => eprintln!(
            "simlint: {:.1} ms ({} cached, {} analysed)",
            elapsed.as_secs_f64() * 1e3,
            s.hits,
            s.misses
        ),
        None => eprintln!(
            "simlint: {:.1} ms (cache disabled)",
            elapsed.as_secs_f64() * 1e3
        ),
    }

    if let Some(parent) = report_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("simlint: cannot create {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    let mut payload = json::to_string(&report.to_json());
    payload.push('\n');
    if let Err(e) = std::fs::write(&report_path, payload) {
        eprintln!("simlint: cannot write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Per-file analysis facts: everything the global passes need from one
//! source file, in serializable form.
//!
//! The lint used to hand whole token streams to every rule. Splitting the
//! work into a per-file *fact extraction* step and cheap cross-file
//! *global passes* (emission reachability, seed-provenance taint, schema
//! drift, stale-allow detection) buys two things at once: the global
//! passes see resolved, structured data instead of tokens, and the
//! per-file step — the expensive part — can be cached by content hash
//! ([`crate::cache`]) because its output is a pure function of
//! `(file bytes, configuration)`.
//!
//! Serialisation deliberately reads every field with `field_or` defaults:
//! the cache format is versioned as a whole (config digest), so per-field
//! strictness buys nothing, and the workspace's own schema-drift rule
//! stays quiet about it.

use crate::lexer::TokKind;
use crate::source::{FnSpan, SourceFile};
use crate::{floatsum, rules, schema, taint, Options};
use simcore::json::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeSet;

/// One pre-routing diagnostic: a rule hit that has not yet been matched
/// against allow annotations.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Analysis pass that produced the finding (`file`, `resolve`,
    /// `taint`, `float`, `schema`, `manifest`, `allow`).
    pub pass: String,
    /// Rule identifier (one of [`crate::RULES`]).
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
    /// Resolved symbol path the finding hangs off (empty when the pass
    /// has no symbol context).
    pub symbol: String,
}

impl Finding {
    /// A finding from a purely token-level (per-file) rule.
    pub fn local(rule: &str, line: u32, message: String) -> Finding {
        Finding {
            pass: "file".to_string(),
            rule: rule.to_string(),
            line,
            message,
            symbol: String::new(),
        }
    }
}

/// One argument of a recorded call: which caller parameters appear in it
/// and which locally-tainted identifiers appear in it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArgFact {
    /// Indices into the caller's parameter list.
    pub params: Vec<u64>,
    /// Locally tainted identifier names appearing in the argument.
    pub tainted: Vec<String>,
}

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallFact {
    /// Path segments as written (`["simcore", "par", "shard_stream"]`;
    /// just the method name for method calls).
    pub path: Vec<String>,
    /// True for `.name(...)` method syntax.
    pub method: bool,
    /// 1-based line of the call.
    pub line: u32,
    /// Per-argument facts, in order.
    pub args: Vec<ArgFact>,
    /// Caller parameter indices appearing in the receiver chain (methods).
    pub recv_params: Vec<u64>,
    /// Tainted identifiers appearing in the receiver chain (methods).
    pub recv_tainted: Vec<String>,
}

/// Facts about one `fn` item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnFact {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing impl block (empty for free functions).
    pub owner: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter names (`self` recorded literally).
    pub params: Vec<String>,
    /// True when the body directly serialises (`to_json` /
    /// `write_jsonl` / `json::to_string`).
    pub direct_emit: bool,
    /// True when the function lives in test-only code.
    pub is_test: bool,
    /// Call sites in the body.
    pub calls: Vec<CallFact>,
}

/// A map-iteration site whose verdict depends on the global emission
/// fixpoint (non-strict tier): flagged only if the enclosing function
/// reaches serialisation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapIterSite {
    /// Index into [`FileFacts::fns`] of the enclosing function.
    pub fn_idx: u64,
    /// 1-based line of the iteration.
    pub line: u32,
    /// Name of the iterated binding.
    pub name: String,
    /// `HashMap` or `HashSet`.
    pub kind: String,
    /// How it is iterated (`` `.keys()` ``, `` `for` loop ``, …).
    pub how: String,
}

/// One serialisation-schema access: a field written by `ToJson` or read
/// by `FromJson`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaFact {
    /// Type the impl block serialises.
    pub ty: String,
    /// Field name.
    pub field: String,
    /// `write`, `strict` (read via `field`), or `default` (`field_or`).
    pub access: String,
    /// 1-based line.
    pub line: u32,
}

/// A parsed allow annotation, in serializable form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowFact {
    /// 1-based line of the annotation.
    pub line: u32,
    /// Rules it suppresses.
    pub rules: Vec<String>,
    /// Mandatory justification.
    pub reason: String,
}

/// One `use` declaration leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseFact {
    /// Full path segments.
    pub path: Vec<String>,
    /// Bound local name (`*` for globs).
    pub alias: String,
}

/// Everything the global passes need from one file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileFacts {
    /// Root-relative `/`-separated path.
    pub rel: String,
    /// Crate directory name (`workspace-root` outside `crates/`).
    pub crate_dir: String,
    /// Module path of the file inside its crate (empty for the root).
    pub module: Vec<String>,
    /// True when the whole file is test/tooling code.
    pub is_test_file: bool,
    /// Findings decided purely locally (token-level rules, float rule,
    /// malformed allows).
    pub local: Vec<Finding>,
    /// Allow annotations.
    pub allows: Vec<AllowFact>,
    /// Function facts, aligned with the file's `fn` items.
    pub fns: Vec<FnFact>,
    /// Map-iteration sites awaiting the emission verdict.
    pub map_iter: Vec<MapIterSite>,
    /// Schema accesses for the cross-file drift rule.
    pub schema: Vec<SchemaFact>,
    /// `use` declarations for call resolution.
    pub uses: Vec<UseFact>,
}

impl Default for FnFact {
    fn default() -> FnFact {
        FnFact {
            name: String::new(),
            owner: String::new(),
            line: 0,
            params: Vec::new(),
            direct_emit: false,
            is_test: false,
            calls: Vec::new(),
        }
    }
}

/// Module path of a file inside its crate, from the root-relative path:
/// `crates/x/src/a/b.rs` → `["a", "b"]`, `…/src/lib.rs` and
/// `…/src/main.rs` → `[]`, `…/src/a/mod.rs` → `["a"]`.
pub fn module_of(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let src = match parts.iter().position(|p| *p == "src") {
        Some(i) => i,
        None => return Vec::new(),
    };
    let mut module: Vec<String> = parts[src + 1..]
        .iter()
        .map(|p| p.trim_end_matches(".rs").to_string())
        .collect();
    match module.last().map(String::as_str) {
        Some("lib") | Some("main") | Some("mod") => {
            module.pop();
        }
        _ => {}
    }
    module
}

impl FileFacts {
    /// Extract all facts from one file. Pure function of
    /// `(rel, src, opts)` — the cache contract.
    pub fn compute(rel: &str, src: &str, opts: &Options) -> FileFacts {
        let file = SourceFile::analyse(rel, src);
        let mut local = Vec::new();
        for bad in &file.bad_allows {
            local.push(Finding {
                pass: "allow".to_string(),
                rule: "allow-syntax".to_string(),
                line: bad.line,
                message: format!("malformed simlint annotation: {}", bad.what),
                symbol: String::new(),
            });
        }
        rules::wall_clock(&file, opts, &mut local);
        rules::par_exec(&file, opts, &mut local);
        rules::hermetic_source(&file, &mut local);
        rules::panic_path(&file, opts, &mut local);
        rules::oracle_pure(&file, opts, &mut local);
        rules::full_materialize(&file, opts, &mut local);
        floatsum::check(&file, opts, &mut local);
        let mut map_iter = Vec::new();
        rules::map_iter(&file, opts, &mut local, &mut map_iter);

        let fns = file
            .fns
            .iter()
            .map(|f| fn_fact(&file, f))
            .collect::<Vec<_>>();

        FileFacts {
            rel: file.rel.clone(),
            crate_dir: file.crate_name.clone(),
            module: module_of(rel),
            is_test_file: file.is_test_file,
            local,
            allows: file
                .allows
                .iter()
                .map(|a| AllowFact {
                    line: a.line,
                    rules: a.rules.clone(),
                    reason: a.reason.clone(),
                })
                .collect(),
            fns,
            map_iter,
            schema: schema::collect_facts(&file, opts),
            uses: file
                .uses
                .iter()
                .map(|u| UseFact {
                    path: u.path.clone(),
                    alias: u.alias.clone(),
                })
                .collect(),
        }
    }
}

/// Keywords that can directly precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "in", "let", "else", "move", "as",
    "impl", "where", "pub", "Some", "Ok", "Err", "None",
];

/// Extract one function's facts: direct-emission flag and call sites with
/// parameter/taint argument structure.
fn fn_fact(file: &SourceFile, f: &FnSpan) -> FnFact {
    let toks = &file.toks;
    let tainted = taint::local_tainted(file, f);
    let mut calls = Vec::new();
    let mut direct_emit = false;

    let mut k = f.body_open;
    while k < f.body_end {
        let t = &toks[k];
        // `json::to_string(..)` is direct serialisation.
        if t.is_ident("json")
            && toks.get(k + 1).is_some_and(|n| n.is_sym("::"))
            && toks.get(k + 2).is_some_and(|n| n.is_ident("to_string"))
        {
            direct_emit = true;
        }
        // Method call: `.name(`.
        if t.is_sym(".")
            && toks.get(k + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(k + 2).is_some_and(|n| n.is_sym("("))
        {
            let name = toks[k + 1].text.clone();
            if taint::EMIT_SINK_NAMES.contains(&name.as_str()) {
                direct_emit = true;
            }
            let (recv_params, recv_tainted) = receiver_idents(toks, k, &f.params, &tainted);
            let args = collect_args(toks, k + 2, f.body_end, &f.params, &tainted);
            calls.push(CallFact {
                path: vec![name],
                method: true,
                line: toks[k + 1].line,
                args,
                recv_params,
                recv_tainted,
            });
            k += 3;
            continue;
        }
        // Free/path call: `path::to::name(` — the identifier directly
        // before `(`, not preceded by `.`, with any `ident::` prefix.
        if t.kind == TokKind::Ident
            && toks.get(k + 1).is_some_and(|n| n.is_sym("("))
            && !(k > 0 && toks[k - 1].is_sym("."))
            && !KEYWORDS.contains(&t.text.as_str())
        {
            let mut start = k;
            while start >= 2
                && toks[start - 1].is_sym("::")
                && toks[start - 2].kind == TokKind::Ident
            {
                start -= 2;
            }
            let path: Vec<String> = toks[start..=k]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .collect();
            if path
                .last()
                .is_some_and(|n| taint::EMIT_SINK_NAMES.contains(&n.as_str()))
            {
                direct_emit = true;
            }
            let args = collect_args(toks, k + 1, f.body_end, &f.params, &tainted);
            calls.push(CallFact {
                path,
                method: false,
                line: toks[k].line,
                args,
                recv_params: Vec::new(),
                recv_tainted: Vec::new(),
            });
            k += 2;
            continue;
        }
        k += 1;
    }

    FnFact {
        name: f.name.clone(),
        owner: f.owner.clone().unwrap_or_default(),
        line: f.line,
        params: f.params.clone(),
        direct_emit,
        is_test: file.in_test(f.sig_start),
        calls,
    }
}

/// Caller params / tainted idents in the receiver chain of a method call
/// whose `.` sits at `dot`: walk back over `ident (. ident)*`.
fn receiver_idents(
    toks: &[crate::lexer::Tok],
    dot: usize,
    params: &[String],
    tainted: &BTreeSet<String>,
) -> (Vec<u64>, Vec<String>) {
    let mut idents = Vec::new();
    let mut j = dot;
    while j >= 1 {
        if toks[j - 1].kind == TokKind::Ident {
            idents.push(toks[j - 1].text.clone());
            if j >= 2 && toks[j - 2].is_sym(".") {
                j -= 2;
                continue;
            }
        }
        break;
    }
    let mut recv_params: Vec<u64> = idents
        .iter()
        .filter_map(|n| params.iter().position(|p| p == n).map(|i| i as u64))
        .collect();
    recv_params.sort_unstable();
    recv_params.dedup();
    let mut recv_tainted: Vec<String> =
        idents.into_iter().filter(|n| tainted.contains(n)).collect();
    recv_tainted.sort();
    recv_tainted.dedup();
    (recv_params, recv_tainted)
}

/// Per-argument facts of the call whose `(` sits at `open`: split on
/// top-level commas, record caller params and tainted idents per slot.
fn collect_args(
    toks: &[crate::lexer::Tok],
    open: usize,
    limit: usize,
    params: &[String],
    tainted: &BTreeSet<String>,
) -> Vec<ArgFact> {
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut cur = ArgFact::default();
    let mut any = false;
    let mut j = open;
    while j < toks.len() && j < limit {
        let t = &toks[j];
        if t.kind == TokKind::Sym {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "," if depth == 1 => {
                    args.push(std::mem::take(&mut cur));
                    j += 1;
                    continue;
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident && depth >= 1 {
            any = true;
            if let Some(i) = params.iter().position(|p| p == &t.text) {
                let i = i as u64;
                if !cur.params.contains(&i) {
                    cur.params.push(i);
                }
            }
            if tainted.contains(&t.text) && !cur.tainted.contains(&t.text) {
                cur.tainted.push(t.text.clone());
            }
        } else if depth >= 1 {
            any = true;
        }
        j += 1;
    }
    if any || !args.is_empty() {
        args.push(cur);
    }
    args
}

// ---------------------------------------------------------------------
// Serialisation (cache format). Short keys and omitted defaults keep the
// cache file small: every reader uses `field_or`, so an absent field IS
// its default — most calls have no tainted args, most fns no owner, and
// skipping those empties shrinks the facts sidecar several-fold.
// ---------------------------------------------------------------------

/// Object builder that drops default-valued fields.
struct Obj(Vec<(String, Json)>);

impl Obj {
    fn new() -> Self {
        Obj(Vec::new())
    }
    fn put(&mut self, k: &str, v: Json) {
        self.0.push((k.to_string(), v));
    }
    fn num(&mut self, k: &str, v: u64) {
        if v != 0 {
            self.put(k, Json::U64(v));
        }
    }
    fn flag(&mut self, k: &str, v: bool) {
        if v {
            self.put(k, Json::Bool(true));
        }
    }
    fn str(&mut self, k: &str, v: &str) {
        if !v.is_empty() {
            self.put(k, v.to_json());
        }
    }
    fn strs(&mut self, k: &str, v: &[String]) {
        if !v.is_empty() {
            self.put(k, Json::Arr(v.iter().map(|s| s.to_json()).collect()));
        }
    }
    fn nums(&mut self, k: &str, v: &[u64]) {
        if !v.is_empty() {
            self.put(k, Json::Arr(v.iter().map(|&i| Json::U64(i)).collect()));
        }
    }
    fn arr<T: ToJson>(&mut self, k: &str, v: &[T]) {
        if !v.is_empty() {
            self.put(k, Json::Arr(v.iter().map(|x| x.to_json()).collect()));
        }
    }
    fn json(self) -> Json {
        Json::Obj(self.0)
    }
}

impl ToJson for Finding {
    fn to_json(&self) -> Json {
        let mut o = Obj::new();
        o.str("p", &self.pass);
        o.str("r", &self.rule);
        o.num("l", self.line as u64);
        o.str("m", &self.message);
        o.str("s", &self.symbol);
        o.json()
    }
}

impl FromJson for Finding {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Finding {
            pass: v.field_or("p", String::new())?,
            rule: v.field_or("r", String::new())?,
            line: v.field_or("l", 0u64)? as u32,
            message: v.field_or("m", String::new())?,
            symbol: v.field_or("s", String::new())?,
        })
    }
}

impl ToJson for ArgFact {
    fn to_json(&self) -> Json {
        let mut o = Obj::new();
        o.nums("p", &self.params);
        o.strs("t", &self.tainted);
        o.json()
    }
}

impl FromJson for ArgFact {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ArgFact {
            params: v.field_or("p", Vec::new())?,
            tainted: v.field_or("t", Vec::new())?,
        })
    }
}

impl ToJson for CallFact {
    fn to_json(&self) -> Json {
        let mut o = Obj::new();
        o.strs("f", &self.path);
        o.flag("m", self.method);
        o.num("l", self.line as u64);
        o.arr("a", &self.args);
        o.nums("rp", &self.recv_params);
        o.strs("rt", &self.recv_tainted);
        o.json()
    }
}

impl FromJson for CallFact {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CallFact {
            path: v.field_or("f", Vec::new())?,
            method: v.field_or("m", false)?,
            line: v.field_or("l", 0u64)? as u32,
            args: v.field_or("a", Vec::new())?,
            recv_params: v.field_or("rp", Vec::new())?,
            recv_tainted: v.field_or("rt", Vec::new())?,
        })
    }
}

impl ToJson for FnFact {
    fn to_json(&self) -> Json {
        let mut o = Obj::new();
        o.str("n", &self.name);
        o.str("o", &self.owner);
        o.num("l", self.line as u64);
        o.strs("p", &self.params);
        o.flag("e", self.direct_emit);
        o.flag("t", self.is_test);
        o.arr("c", &self.calls);
        o.json()
    }
}

impl FromJson for FnFact {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FnFact {
            name: v.field_or("n", String::new())?,
            owner: v.field_or("o", String::new())?,
            line: v.field_or("l", 0u64)? as u32,
            params: v.field_or("p", Vec::new())?,
            direct_emit: v.field_or("e", false)?,
            is_test: v.field_or("t", false)?,
            calls: v.field_or("c", Vec::new())?,
        })
    }
}

impl ToJson for MapIterSite {
    fn to_json(&self) -> Json {
        let mut o = Obj::new();
        o.num("f", self.fn_idx);
        o.num("l", self.line as u64);
        o.str("n", &self.name);
        o.str("k", &self.kind);
        o.str("h", &self.how);
        o.json()
    }
}

impl FromJson for MapIterSite {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MapIterSite {
            fn_idx: v.field_or("f", 0u64)?,
            line: v.field_or("l", 0u64)? as u32,
            name: v.field_or("n", String::new())?,
            kind: v.field_or("k", String::new())?,
            how: v.field_or("h", String::new())?,
        })
    }
}

impl ToJson for SchemaFact {
    fn to_json(&self) -> Json {
        let mut o = Obj::new();
        o.str("y", &self.ty);
        o.str("f", &self.field);
        o.str("a", &self.access);
        o.num("l", self.line as u64);
        o.json()
    }
}

impl FromJson for SchemaFact {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SchemaFact {
            ty: v.field_or("y", String::new())?,
            field: v.field_or("f", String::new())?,
            access: v.field_or("a", String::new())?,
            line: v.field_or("l", 0u64)? as u32,
        })
    }
}

impl ToJson for AllowFact {
    fn to_json(&self) -> Json {
        let mut o = Obj::new();
        o.num("l", self.line as u64);
        o.strs("r", &self.rules);
        o.str("w", &self.reason);
        o.json()
    }
}

impl FromJson for AllowFact {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(AllowFact {
            line: v.field_or("l", 0u64)? as u32,
            rules: v.field_or("r", Vec::new())?,
            reason: v.field_or("w", String::new())?,
        })
    }
}

impl ToJson for UseFact {
    fn to_json(&self) -> Json {
        let mut o = Obj::new();
        o.strs("f", &self.path);
        o.str("a", &self.alias);
        o.json()
    }
}

impl FromJson for UseFact {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(UseFact {
            path: v.field_or("f", Vec::new())?,
            alias: v.field_or("a", String::new())?,
        })
    }
}

impl ToJson for FileFacts {
    fn to_json(&self) -> Json {
        let mut o = Obj::new();
        o.str("rel", &self.rel);
        o.str("crate", &self.crate_dir);
        o.strs("module", &self.module);
        o.flag("test", self.is_test_file);
        o.arr("local", &self.local);
        o.arr("allows", &self.allows);
        o.arr("fns", &self.fns);
        o.arr("map_iter", &self.map_iter);
        o.arr("schema", &self.schema);
        o.arr("uses", &self.uses);
        o.json()
    }
}

impl FromJson for FileFacts {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FileFacts {
            rel: v.field_or("rel", String::new())?,
            crate_dir: v.field_or("crate", String::new())?,
            module: v.field_or("module", Vec::new())?,
            is_test_file: v.field_or("test", false)?,
            local: v.field_or("local", Vec::new())?,
            allows: v.field_or("allows", Vec::new())?,
            fns: v.field_or("fns", Vec::new())?,
            map_iter: v.field_or("map_iter", Vec::new())?,
            schema: v.field_or("schema", Vec::new())?,
            uses: v.field_or("uses", Vec::new())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths() {
        assert_eq!(module_of("crates/simcore/src/par.rs"), ["par"]);
        assert!(module_of("crates/workload/src/lib.rs").is_empty());
        assert!(module_of("src/main.rs").is_empty());
        assert_eq!(module_of("crates/x/src/a/b.rs"), ["a", "b"]);
        assert_eq!(module_of("crates/x/src/a/mod.rs"), ["a"]);
    }

    #[test]
    fn facts_round_trip_through_json() {
        let src = "use simcore::par::shard_stream as derive;\n\
                   pub fn f(rng: &Rng, worker_idx: u64) -> Rng {\n\
                       let salt = worker_idx ^ 7;\n\
                       derive(1, salt)\n\
                   }\n";
        let facts = FileFacts::compute("crates/workload/src/driver.rs", src, &Options::workspace());
        let json = simcore::json::to_string(&facts.to_json());
        let back = FileFacts::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(facts, back);
        assert_eq!(facts.fns.len(), 1);
        // `salt` is tainted through the let-binding and appears in the
        // second argument of the aliased call.
        let call = facts.fns[0]
            .calls
            .iter()
            .find(|c| c.path == ["derive"])
            .unwrap();
        assert_eq!(call.args.len(), 2);
        assert_eq!(call.args[1].tainted, ["salt"]);
    }

    #[test]
    fn call_collection_paths_and_methods() {
        let src = "fn f(x: u64, hh: u64) {\n\
                       let r = simcore::par::household_stream(1, x, hh);\n\
                       r.fork(hh);\n\
                       json::to_string(&r);\n\
                   }\n";
        let facts = FileFacts::compute("crates/workload/src/driver.rs", src, &Options::workspace());
        let f = &facts.fns[0];
        assert!(f.direct_emit, "json::to_string marks direct emission");
        let paths: Vec<String> = f.calls.iter().map(|c| c.path.join("::")).collect();
        assert!(paths.contains(&"simcore::par::household_stream".to_string()));
        assert!(f.calls.iter().any(|c| c.method && c.path == ["fork"]));
        let hs = f
            .calls
            .iter()
            .find(|c| c.path.last().is_some_and(|s| s == "household_stream"))
            .unwrap();
        assert_eq!(hs.args.len(), 3);
        assert_eq!(hs.args[1].params, [0]);
        assert_eq!(hs.args[2].params, [1]);
    }
}

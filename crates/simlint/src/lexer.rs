//! A lightweight Rust lexer: just enough to answer the questions the lint
//! rules ask, with correct handling of the constructs that break naive
//! line-based scanners (nested block comments, raw strings, char literals
//! versus lifetimes, strings containing braces).
//!
//! The lexer deliberately does not build an AST. Every rule in this crate
//! works on token patterns plus brace-matched spans, which keeps the whole
//! pass hermetic (std-only, no syn/proc-macro2) and fast enough to run on
//! every verify invocation.

/// Kind of a lexed token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation; `::` is fused into a single token, everything else is
    /// one character.
    Sym,
    /// String literal (plain, raw, byte, raw-byte); `text` is the content
    /// without quotes or prefixes.
    Str,
    /// Character or byte literal; `text` is the raw content.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'_`, `'static`); `text` excludes the quote.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is punctuation with exactly this text.
    pub fn is_sym(&self, s: &str) -> bool {
        self.kind == TokKind::Sym && self.text == s
    }
}

/// A comment stripped from the token stream, kept for annotation parsing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
}

/// Result of lexing one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex Rust source. Unterminated literals are tolerated (the token simply
/// runs to end of file): lint input may be arbitrary text and the lexer
/// must never panic on it.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1u32;
            let mut j = i + 2;
            let mut text = String::new();
            while j < b.len() && depth > 0 {
                if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                    continue;
                }
                if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                    continue;
                }
                if b[j] == '\n' {
                    line += 1;
                }
                text.push(b[j]);
                j += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text,
            });
            i = j;
            continue;
        }

        // String-ish literals, including raw/byte prefixes.
        if c == '"' {
            let (text, ni, nl) = scan_string(&b, i + 1, line);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line,
            });
            i = ni;
            line = nl;
            continue;
        }
        if (c == 'r' || c == 'b') && is_raw_or_byte_string(&b, i) {
            let start_line = line;
            let mut j = i + 1;
            if c == 'b' && j < b.len() && b[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == '"' {
                if hashes == 0 {
                    // b"..." with escapes, r"..." without; treating both as
                    // escape-free is safe because `\"` cannot appear in r"".
                    let (text, ni, nl) = if b[i] == 'b' && b[i + 1] == '"' {
                        scan_string(&b, j + 1, line)
                    } else {
                        scan_raw(&b, j + 1, 0, line)
                    };
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text,
                        line: start_line,
                    });
                    i = ni;
                    line = nl;
                } else {
                    let (text, ni, nl) = scan_raw(&b, j + 1, hashes, line);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text,
                        line: start_line,
                    });
                    i = ni;
                    line = nl;
                }
                continue;
            }
            // `r#ident` raw identifier or lone `r`/`b`: fall through to the
            // identifier branch below.
        }

        // Char literal or lifetime.
        if c == '\'' {
            if i + 1 < b.len() && b[i + 1] == '\\' {
                // Escaped char literal: the escape pair comes first (so
                // `'\\'` and `'\''` close correctly), then any remaining
                // code — `\u{1F4be}` — up to the closing quote.
                let mut j = i + 1;
                let mut text = String::new();
                if j + 1 < b.len() {
                    text.push(b[j]);
                    text.push(b[j + 1]);
                    j += 2;
                }
                while j < b.len() && b[j] != '\'' {
                    text.push(b[j]);
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                });
                i = (j + 1).min(b.len());
                continue;
            }
            if i + 2 < b.len() && b[i + 2] == '\'' {
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[i + 1].to_string(),
                    line,
                });
                i += 3;
                continue;
            }
            // Lifetime: `'` followed by identifier characters.
            let mut j = i + 1;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text: b[i + 1..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        // Identifiers and keywords (including raw identifiers `r#x`).
        if is_ident_start(c) {
            let mut j = i + 1;
            if (c == 'r') && j + 1 < b.len() && b[j] == '#' && is_ident_start(b[j + 1]) {
                j += 1; // skip the `#` of a raw identifier
            }
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            let text: String = b[i..j].iter().collect();
            let text = text.strip_prefix("r#").unwrap_or(&text).to_string();
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            i = j;
            continue;
        }

        // Numbers, including floats: fraction and signed exponent fuse into
        // one token (`1.5e-3` is a single Num, not five fragments).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            loop {
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                // Fractional part: the `.` must be followed by a digit so
                // ranges (`0..n`) and method calls (`1.max(2)`) keep their
                // own tokens.
                if j + 1 < b.len() && b[j] == '.' && b[j + 1].is_ascii_digit() {
                    j += 2;
                    continue;
                }
                // Signed exponent (`1e-3`, `2.5E+8`); hex literals are
                // excluded so `0xE-2` stays subtraction.
                let hex = b[i] == '0' && i + 1 < b.len() && matches!(b[i + 1], 'x' | 'X');
                if !hex
                    && j + 1 < b.len()
                    && matches!(b[j - 1], 'e' | 'E')
                    && matches!(b[j], '+' | '-')
                    && b[j + 1].is_ascii_digit()
                {
                    j += 2;
                    continue;
                }
                break;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        // `::` is fused; everything else is a single-character symbol.
        if c == ':' && i + 1 < b.len() && b[i + 1] == ':' {
            out.toks.push(Tok {
                kind: TokKind::Sym,
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Sym,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

/// Scan a plain string body starting just after the opening quote.
/// Returns (content, index-after-closing-quote, line-after).
fn scan_string(b: &[char], mut j: usize, mut line: u32) -> (String, usize, u32) {
    let mut text = String::new();
    while j < b.len() && b[j] != '"' {
        if b[j] == '\\' && j + 1 < b.len() {
            text.push(b[j]);
            text.push(b[j + 1]);
            if b[j + 1] == '\n' {
                line += 1;
            }
            j += 2;
            continue;
        }
        if b[j] == '\n' {
            line += 1;
        }
        text.push(b[j]);
        j += 1;
    }
    (text, (j + 1).min(b.len()), line)
}

/// Scan a raw string body (no escapes) closed by `"` plus `hashes` `#`s.
fn scan_raw(b: &[char], mut j: usize, hashes: usize, mut line: u32) -> (String, usize, u32) {
    let mut text = String::new();
    while j < b.len() {
        if b[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (text, k, line);
            }
        }
        if b[j] == '\n' {
            line += 1;
        }
        text.push(b[j]);
        j += 1;
    }
    (text, b.len(), line)
}

/// True when position `i` (an `r` or `b`) starts a raw/byte string literal.
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i + 1;
    if b[i] == 'b' && j < b.len() && b[j] == 'r' {
        j += 1;
    }
    let mut saw_hash = false;
    while j < b.len() && b[j] == '#' {
        saw_hash = true;
        j += 1;
    }
    if j < b.len() && b[j] == '"' {
        return true;
    }
    // `r#ident` is a raw identifier, not a raw string.
    let _ = saw_hash;
    false
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn fuses_path_separators() {
        let l = lex("std::time::Instant::now()");
        let texts: Vec<&str> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["std", "::", "time", "::", "Instant", "::", "now", "(", ")"]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let x = "SystemTime::now() { }"; y"#);
        assert!(!idents(r#"let x = "SystemTime::now()"; y"#).contains(&"SystemTime".to_string()));
        let braces = l.toks.iter().filter(|t| t.is_sym("{")).count();
        assert_eq!(braces, 0);
    }

    #[test]
    fn nested_block_comments_and_line_tracking() {
        let l = lex("a /* x /* y */ z */\nb // tail\nc");
        assert_eq!(idents("a /* x /* y */ z */\nb // tail\nc"), ["a", "b", "c"]);
        assert_eq!(l.toks[0].line, 1);
        assert_eq!(l.toks[1].line, 2);
        assert_eq!(l.toks[2].line, 3);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[1].text, " tail");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex(r###"let s = r#"quote " inside"#; t"###);
        let strs: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, [r#"quote " inside"#]);
        assert!(idents(r###"let s = r#"quote " inside"#; t"###).contains(&"t".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["x"]);
    }

    #[test]
    fn escaped_char_literal() {
        let l = lex(r"let c = '\n'; d");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        assert!(idents(r"let c = '\n'; d").contains(&"d".to_string()));
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        assert_eq!(idents("r#fn r#match plain"), ["fn", "match", "plain"]);
    }

    #[test]
    fn escaped_backslash_char_literal_closes() {
        // `'\\'` used to run past its closing quote and swallow `d`.
        let l = lex(r"let c = '\\'; d");
        let chars: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, [r"\\"]);
        assert!(idents(r"let c = '\\'; d").contains(&"d".to_string()));
    }

    #[test]
    fn escaped_quote_char_literal_closes() {
        // `'\''` used to terminate at the escaped quote, leaving a stray
        // `'` that mis-lexed the rest of the line as a lifetime.
        let l = lex(r"let c = '\''; d");
        let chars: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, [r"\'"]);
        assert!(idents(r"let c = '\''; d").contains(&"d".to_string()));
        assert!(l.toks.iter().all(|t| t.kind != TokKind::Lifetime));
    }

    #[test]
    fn unicode_escape_char_literal() {
        let l = lex(r"let c = '\u{1F4BE}'; d");
        let chars: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, [r"\u{1F4BE}"]);
        assert!(idents(r"let c = '\u{1F4BE}'; d").contains(&"d".to_string()));
    }

    #[test]
    fn float_literals_are_single_tokens() {
        let nums = |src: &str| -> Vec<String> {
            lex(src)
                .toks
                .into_iter()
                .filter(|t| t.kind == TokKind::Num)
                .map(|t| t.text)
                .collect()
        };
        assert_eq!(nums("let x = 1.5e-3;"), ["1.5e-3"]);
        assert_eq!(nums("let x = 2.5E+8;"), ["2.5E+8"]);
        assert_eq!(nums("let x = 1e9 + 0.25f64;"), ["1e9", "0.25f64"]);
        // Ranges, method calls on literals, and hex subtraction keep
        // their own tokens.
        assert_eq!(nums("for i in 0..10 {}"), ["0", "10"]);
        assert_eq!(nums("let m = 1.max(2);"), ["1", "2"]);
        assert_eq!(nums("let h = 0xE-2;"), ["0xE", "2"]);
    }
}

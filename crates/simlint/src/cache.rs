//! Incremental lint cache.
//!
//! The whole report is a pure function of `(per-file facts, manifest
//! contents, configuration)`, and per-file fact extraction
//! ([`crate::facts::FileFacts::compute`]) is itself a pure function of
//! `(file bytes, configuration)`. The cache exploits both layers with a
//! two-file layout under `target/`:
//!
//! * **summary** (`simlint-cache.json`) — small: the configuration
//!   digest, per-file validators (`size`, `mtime`, content hash), the
//!   manifest hashes, and the full cached [`Report`]. A warm run stats
//!   every file, and when every validator passes it returns the cached
//!   report directly — no facts are parsed and no global pass re-runs.
//! * **facts sidecar** (`simlint-cache.json.facts`) — large: the cached
//!   [`FileFacts`] per file. Parsed only when something changed, so an
//!   incremental run recomputes facts for the edited files alone and
//!   then re-runs the (cheap) global passes over the full fact set.
//!
//! Validation is two-tier: `(size, mtime)` short-circuits the common
//! case without reading the file; on mismatch the content hash decides,
//! so `touch`ing a file only costs one hash, not a re-analysis. The whole
//! cache is invalidated by a configuration digest covering the
//! [`crate::Options`] in effect, the rule list, the crate version, and
//! the cache format version.

use crate::facts::FileFacts;
use crate::{Options, Report};
use simcore::json::{self, FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

/// Bump when the serialised shape of the summary, the facts, or the
/// report changes.
const CACHE_FORMAT: u32 = 2;

/// Hit/miss counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Files whose facts were reused (or whose report was, on the warm
    /// short-circuit path).
    pub hits: usize,
    /// Files that were (re-)analysed.
    pub misses: usize,
}

/// Per-file validators: fast stat pair plus the deciding content hash.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Meta {
    /// File size in bytes.
    pub size: u64,
    /// Modification time, seconds since the epoch.
    pub mtime_s: u64,
    /// Modification time, subsecond nanoseconds.
    pub mtime_ns: u64,
    /// Hex sha256 of the file content.
    pub sha: String,
}

/// The summary file: everything needed to decide "nothing changed" and
/// answer without touching the facts sidecar.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Digest of the configuration the cache was computed under.
    pub digest: String,
    /// Validators per `.rs` file, keyed by root-relative path.
    pub files: BTreeMap<String, Meta>,
    /// Hex sha256 per `Cargo.toml`, keyed by root-relative path.
    pub manifests: BTreeMap<String, String>,
    /// The report the validated state produced.
    pub report: Report,
}

/// Digest of everything the cached results depend on besides file and
/// manifest content.
pub fn config_digest(opts: &Options) -> String {
    let mut input = format!("{opts:?}");
    input.push('\n');
    input.push_str(&crate::RULES.join(","));
    input.push('\n');
    input.push_str(env!("CARGO_PKG_VERSION"));
    input.push('\n');
    input.push_str(&CACHE_FORMAT.to_string());
    contenthash::sha256(input.as_bytes()).to_hex()
}

/// `(size, mtime_s, mtime_ns)` of a file, for the fast validators.
pub fn file_validators(path: &Path) -> io::Result<(u64, u64, u64)> {
    let meta = fs::metadata(path)?;
    let (s, ns) = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
        .map(|d| (d.as_secs(), d.subsec_nanos() as u64))
        .unwrap_or((0, 0));
    Ok((meta.len(), s, ns))
}

/// Path of the facts sidecar belonging to the summary at `summary_path`.
pub fn sidecar_path(summary_path: &Path) -> PathBuf {
    let mut name = summary_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".facts");
    summary_path.with_file_name(name)
}

impl Summary {
    /// Load the summary at `path`; an unreadable, unparsable, or
    /// digest-mismatched summary yields `None` (everything recomputes).
    pub fn load(path: &Path, digest: &str) -> Option<Summary> {
        let text = fs::read_to_string(path).ok()?;
        let parsed = Json::parse(&text).ok()?;
        let summary = Summary::from_json(&parsed).ok()?;
        if summary.digest == digest {
            Some(summary)
        } else {
            None
        }
    }

    /// Persist the summary, creating the parent directory if needed.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, json::to_string(&self.to_json()))
    }
}

/// Load the facts sidecar; degrades to empty on any failure (the
/// affected files recompute from source).
pub fn load_facts(path: &Path) -> BTreeMap<String, FileFacts> {
    let Ok(text) = fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Ok(parsed) = Json::parse(&text) else {
        return BTreeMap::new();
    };
    let Json::Obj(entries) = parsed else {
        return BTreeMap::new();
    };
    let mut out = BTreeMap::new();
    for (rel, v) in entries {
        if let Ok(facts) = FileFacts::from_json(&v) {
            out.insert(rel, facts);
        }
    }
    out
}

/// Persist the facts sidecar, creating the parent directory if needed.
pub fn save_facts(path: &Path, facts: &BTreeMap<String, FileFacts>) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let obj = Json::Obj(
        facts
            .iter()
            .map(|(rel, f)| (rel.clone(), f.to_json()))
            .collect(),
    );
    fs::write(path, json::to_string(&obj))
}

impl ToJson for Meta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("sz", Json::U64(self.size)),
            ("ms", Json::U64(self.mtime_s)),
            ("mn", Json::U64(self.mtime_ns)),
            ("sha", self.sha.to_json()),
        ])
    }
}

impl FromJson for Meta {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Meta {
            size: v.field_or("sz", 0u64)?,
            mtime_s: v.field_or("ms", 0u64)?,
            mtime_ns: v.field_or("mn", 0u64)?,
            sha: v.field_or("sha", String::new())?,
        })
    }
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("digest", self.digest.to_json()),
            (
                "files",
                Json::Obj(
                    self.files
                        .iter()
                        .map(|(k, m)| (k.clone(), m.to_json()))
                        .collect(),
                ),
            ),
            (
                "manifests",
                Json::Obj(
                    self.manifests
                        .iter()
                        .map(|(k, sha)| (k.clone(), sha.to_json()))
                        .collect(),
                ),
            ),
            ("report", self.report.to_json()),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let digest: String = v.field_or("digest", String::new())?;
        let mut files = BTreeMap::new();
        if let Json::Obj(entries) = v.field_or("files", Json::obj([]))? {
            for (k, m) in entries {
                files.insert(k, Meta::from_json(&m)?);
            }
        }
        let mut manifests = BTreeMap::new();
        if let Json::Obj(entries) = v.field_or("manifests", Json::obj([]))? {
            for (k, sha) in entries {
                manifests.insert(k, String::from_json(&sha)?);
            }
        }
        let report = v.field_or("report", Report::default())?;
        Ok(Summary {
            digest,
            files,
            manifests,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Suppressed, Violation};

    #[test]
    fn digest_changes_with_options() {
        let a = config_digest(&Options::workspace());
        let mut opts = Options::workspace();
        opts.sim_crates.push("zzz".to_string());
        assert_ne!(a, config_digest(&opts));
        assert_eq!(a, config_digest(&Options::workspace()));
    }

    #[test]
    fn summary_round_trips_and_rejects_stale_digest() {
        let dir = std::env::temp_dir().join(format!("simlint-cache-test-{}", std::process::id()));
        let path = dir.join("c.json");
        let mut summary = Summary {
            digest: "d1".to_string(),
            ..Summary::default()
        };
        summary.files.insert(
            "crates/core/src/lib.rs".to_string(),
            Meta {
                size: 10,
                mtime_s: 1,
                mtime_ns: 2,
                sha: "abc".to_string(),
            },
        );
        summary
            .manifests
            .insert("Cargo.toml".to_string(), "def".to_string());
        summary.report = Report {
            files_scanned: 2,
            violations: vec![Violation {
                rule: "wall-clock".to_string(),
                file: "crates/core/src/lib.rs".to_string(),
                line: 3,
                message: "no clocks".to_string(),
                pass: "file".to_string(),
                symbol: String::new(),
            }],
            allowed: vec![Suppressed {
                rule: "panic-path".to_string(),
                file: "crates/core/src/lib.rs".to_string(),
                line: 9,
                reason: "test fixture".to_string(),
            }],
        };
        summary.save(&path).unwrap();
        let back = Summary::load(&path, "d1").expect("summary must load");
        assert_eq!(back.files, summary.files);
        assert_eq!(back.manifests, summary.manifests);
        assert_eq!(back.report.files_scanned, 2);
        assert_eq!(back.report.violations, summary.report.violations);
        assert_eq!(back.report.allowed, summary.report.allowed);
        assert!(
            Summary::load(&path, "d2").is_none(),
            "digest mismatch must clear"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn facts_sidecar_round_trips_and_degrades_to_empty() {
        let dir = std::env::temp_dir().join(format!("simlint-facts-test-{}", std::process::id()));
        let path = dir.join("c.json.facts");
        let facts = FileFacts::compute(
            "crates/workload/src/driver.rs",
            "pub fn f(worker_idx: u64, rng: &Rng) -> Rng { rng.fork(worker_idx) }\n",
            &Options::workspace(),
        );
        let mut map = BTreeMap::new();
        map.insert("crates/workload/src/driver.rs".to_string(), facts.clone());
        save_facts(&path, &map).unwrap();
        let back = load_facts(&path);
        assert_eq!(back.len(), 1);
        assert_eq!(back["crates/workload/src/driver.rs"], facts);
        assert!(load_facts(&dir.join("missing.facts")).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Hermeticity rule, manifest side: every dependency in every
//! `Cargo.toml` must resolve in-tree — either `path = "..."` or
//! `workspace = true` (with the workspace table itself pointing at path
//! dependencies). A bare version requirement means cargo would hit the
//! network, which the offline build forbids.
//!
//! The parser is a deliberately small line-based TOML subset: sections,
//! `key = value` pairs, dotted keys, inline tables and `#` comments —
//! exactly the shapes dependency declarations use.

use crate::Violation;

/// Check one manifest. `rel` is the root-relative path for diagnostics.
pub fn check(rel: &str, text: &str, violations: &mut Vec<Violation>) {
    let mut section = String::new();
    // For `[dependencies.foo]`-style tables: pending (dep, line) until we
    // know whether the table contains `path`/`workspace`.
    let mut pending: Option<(String, u32, bool)> = None;

    let flush = |pending: &mut Option<(String, u32, bool)>, violations: &mut Vec<Violation>| {
        if let Some((dep, line, ok)) = pending.take() {
            if !ok {
                violations.push(non_workspace(rel, line, &dep));
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut pending, violations);
            section = line
                .trim_matches(|c| c == '[' || c == ']')
                .trim()
                .to_string();
            if let Some(dep) = dotted_dep_table(&section) {
                pending = Some((dep, line_no, false));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();

        if let Some(p) = pending.as_mut() {
            if key == "path" || (key == "workspace" && value == "true") {
                p.2 = true;
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        // `foo.workspace = true` / `foo.path = "..."` dotted keys.
        if let Some((dep, sub)) = key.split_once('.') {
            if sub == "workspace" && value == "true" || sub == "path" {
                continue;
            }
            violations.push(non_workspace(rel, line_no, dep.trim()));
            continue;
        }
        if value_is_hermetic(value) {
            continue;
        }
        violations.push(non_workspace(rel, line_no, key));
    }
    flush(&mut pending, violations);
}

fn non_workspace(rel: &str, line: u32, dep: &str) -> Violation {
    Violation {
        rule: "non-workspace-dep".to_string(),
        file: rel.to_string(),
        line,
        message: format!(
            "dependency `{dep}` is not an in-tree path/workspace dependency; \
             the hermetic build forbids registry crates"
        ),
        pass: "manifest".to_string(),
        symbol: dep.to_string(),
    }
}

/// The `[package] name` of a manifest, for mapping crate directories to
/// import names in the resolver.
pub fn package_name(text: &str) -> Option<String> {
    let mut section = String::new();
    for raw in text.lines() {
        let line = strip_comment(raw).trim().to_string();
        if line.starts_with('[') {
            section = line
                .trim_matches(|c| c == '[' || c == ']')
                .trim()
                .to_string();
            continue;
        }
        if section != "package" {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            if key.trim() == "name" {
                return Some(value.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// True for sections whose keys declare dependencies.
fn is_dep_section(section: &str) -> bool {
    section == "workspace.dependencies"
        || section.rsplit('.').next().is_some_and(|last| {
            matches!(
                last,
                "dependencies" | "dev-dependencies" | "build-dependencies"
            )
        }) && !section.contains("metadata")
}

/// For `[dependencies.foo]`-style headers, the dependency name.
fn dotted_dep_table(section: &str) -> Option<String> {
    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(rest) = section.strip_prefix(prefix) {
            return Some(rest.to_string());
        }
        if let Some(pos) = section.find(&format!(".{prefix}")) {
            return Some(section[pos + 1 + prefix.len()..].to_string());
        }
    }
    None
}

/// True when a dependency value keeps the build hermetic.
fn value_is_hermetic(value: &str) -> bool {
    if value.starts_with('{') {
        // Inline table: require a `path` key or `workspace = true`.
        return has_key(value, "path") || has_true(value, "workspace");
    }
    // Bare string (`"1.0"`) or anything else: a registry requirement.
    false
}

fn has_key(table: &str, key: &str) -> bool {
    table
        .split(|c| c == '{' || c == ',' || c == '}')
        .any(|kv| kv.split_once('=').is_some_and(|(k, _)| k.trim() == key))
}

fn has_true(table: &str, key: &str) -> bool {
    table.split(|c| c == '{' || c == ',' || c == '}').any(|kv| {
        kv.split_once('=')
            .is_some_and(|(k, v)| k.trim() == key && v.trim() == "true")
    })
}

/// Remove a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> Vec<Violation> {
        let mut v = Vec::new();
        check("Cargo.toml", text, &mut v);
        v
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let v = run("[dependencies]\n\
             simcore = { path = \"../simcore\" }\n\
             nettrace.workspace = true\n\
             tstat = { workspace = true }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn registry_deps_fail() {
        let v = run("[dependencies]\nserde = \"1.0\" # classic\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("serde"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn dotted_tables() {
        let good = run("[dependencies.simcore]\npath = \"../simcore\"\n");
        assert!(good.is_empty(), "{good:?}");
        let bad = run("[dependencies.rand]\nversion = \"0.8\"\nfeatures = [\"std\"]\n");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("rand"));
    }

    #[test]
    fn non_dep_sections_are_ignored() {
        let v = run("[package]\nname = \"x\"\nversion = \"0.1.0\"\n[features]\ndefault = []\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn workspace_dependency_table_is_checked() {
        let v = run("[workspace.dependencies]\nlibc = \"0.2\"\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn package_name_is_parsed() {
        let text = "[package]\nname = \"dropbox-analysis\" # core\nversion = \"0.1.0\"\n\
                    [dependencies]\nsimcore.workspace = true\n";
        assert_eq!(package_name(text).as_deref(), Some("dropbox-analysis"));
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }
}

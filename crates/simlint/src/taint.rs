//! Seed-provenance taint analysis.
//!
//! The byte-identity contract (serial ≡ `--jobs N` ≡ `--hh-shards K` ≡
//! `--chaos`) holds exactly as long as nothing that reaches an RNG seed
//! or a serialised result depends on *how the run was scheduled*. This
//! pass tracks that property as dataflow instead of trusting argument
//! names at one call site:
//!
//! * **Sources.** An identifier whose name carries a scheduling fragment
//!   (`worker`, `job`, `thread`, …) is tainted, and taint propagates
//!   locally through `let` bindings and assignments to a fixpoint.
//! * **Sinks.** Seed derivation (`fork` / `fork_named` / `shard_stream` /
//!   `household_stream`, by resolved path or name) and serialisation
//!   (`to_json` / `write_jsonl` / `json::to_string` / `FlowSink::accept`).
//! * **Transitivity.** The [`crate::resolve`] parameter-flow fixpoint
//!   marks, per workspace function, which parameters flow onward into a
//!   sink — so passing a tainted value to an innocently-named wrapper in
//!   another crate is still flagged, and flagged *at the call site that
//!   introduced the taint*.
//!
//! Clean-by-construction values — household indices, capture names,
//! stream labels — never match a scheduling fragment, and `SpanMerge`
//! slot positions are canonical household order (stable identity), so
//! they are deliberately not fragments.
//!
//! Findings reuse the `shard-seed` rule id for seed sinks (the pass
//! subsumes the old name-based rule) and `taint-flow` for emission sinks.

use crate::facts::Finding;
use crate::lexer::TokKind;
use crate::resolve::{callee_param, Target, Workspace};
use crate::source::{FnSpan, SourceFile};
use crate::Options;
use std::collections::BTreeSet;

/// Name fragments that mark a value as scheduling state.
pub const SCHEDULING_FRAGMENTS: &[&str] = &["job", "worker", "thread", "cpu_", "core_id"];

/// Seed-derivation function names. Arguments decide a stream's identity,
/// so every argument position is seed-sensitive.
pub const SEED_FN_NAMES: &[&str] = &["fork", "fork_named", "shard_stream", "household_stream"];

/// Serialisation sink names the emission fixpoint seeds from.
pub const EMIT_SINK_NAMES: &[&str] = &["to_json", "write_jsonl"];

/// Serialisation sink names for the taint rule: emission plus the
/// `FlowSink` boundary.
pub const TAINT_SINK_NAMES: &[&str] = &["to_json", "write_jsonl", "accept"];

/// True when an identifier names scheduling state.
pub fn is_scheduling_name(name: &str) -> bool {
    if name == "self" {
        return false;
    }
    let lower = name.to_ascii_lowercase();
    SCHEDULING_FRAGMENTS.iter().any(|f| lower.contains(f))
}

/// The locally tainted identifier set of one function: fragment-named
/// identifiers plus everything assigned from a tainted expression,
/// iterated to a fixpoint.
pub fn local_tainted(file: &SourceFile, f: &FnSpan) -> BTreeSet<String> {
    let toks = &file.toks;
    let mut tainted: BTreeSet<String> = toks[f.sig_start..f.body_end]
        .iter()
        .filter(|t| t.kind == TokKind::Ident && is_scheduling_name(&t.text))
        .map(|t| t.text.clone())
        .collect();
    if tainted.is_empty() {
        return tainted;
    }
    for _ in 0..8 {
        let mut changed = false;
        let mut k = f.body_open;
        while k < f.body_end {
            let t = &toks[k];
            // `let [mut] name [: Ty] = expr;`
            if t.is_ident("let") {
                let mut j = k + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                // Only simple binders: `let Some(x) = …` / `let Foo { .. } = …`
                // start a pattern, not a name, and are skipped.
                let is_pattern = toks
                    .get(j + 1)
                    .is_some_and(|n| n.is_sym("(") || n.is_sym("{") || n.is_sym("::"));
                if let Some(binder) = toks
                    .get(j)
                    .filter(|t| t.kind == TokKind::Ident && t.text != "_" && !is_pattern)
                {
                    let binder = binder.text.clone();
                    // The initialiser starts after the first top-level `=`.
                    let mut depth = 0i32;
                    let mut eq = None;
                    for m in j + 1..f.body_end.min(j + 96) {
                        let s = &toks[m];
                        if s.kind == TokKind::Sym {
                            match s.text.as_str() {
                                "(" | "[" | "{" | "<" => depth += 1,
                                ")" | "]" | "}" | ">" => depth -= 1,
                                ";" if depth <= 0 => break,
                                "=" if depth <= 0
                                    && !toks
                                        .get(m + 1)
                                        .is_some_and(|n| n.is_sym("=") || n.is_sym(">")) =>
                                {
                                    eq = Some(m);
                                    break;
                                }
                                _ => {}
                            }
                        }
                    }
                    if let Some(eq) = eq {
                        if expr_tainted(file, eq + 1, f.body_end, &tainted)
                            && tainted.insert(binder)
                        {
                            changed = true;
                        }
                    }
                }
                k += 1;
                continue;
            }
            // `name = expr` / `name op= expr` (outside a let).
            if t.kind == TokKind::Sym
                && t.text == "="
                && !toks
                    .get(k + 1)
                    .is_some_and(|n| n.is_sym("=") || n.is_sym(">"))
                && k > 0
            {
                let prev = &toks[k - 1];
                let target = if prev.kind == TokKind::Ident && !(k >= 2 && toks[k - 2].is_sym(":"))
                {
                    Some(prev.text.clone())
                } else if matches!(
                    prev.text.as_str(),
                    "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|"
                ) && k >= 2
                    && toks[k - 2].kind == TokKind::Ident
                {
                    Some(toks[k - 2].text.clone())
                } else {
                    None
                };
                if let Some(target) = target {
                    if expr_tainted(file, k + 1, f.body_end, &tainted) && tainted.insert(target) {
                        changed = true;
                    }
                }
            }
            k += 1;
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// True when the expression starting at `from` (up to the next top-level
/// `;`, bounded) mentions a tainted identifier.
fn expr_tainted(file: &SourceFile, from: usize, limit: usize, tainted: &BTreeSet<String>) -> bool {
    let toks = &file.toks;
    let mut depth = 0i32;
    for m in from..limit.min(from + 160) {
        let t = &toks[m];
        if t.kind == TokKind::Sym {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                // `;` ends a statement; a depth-0 `,` ends a match arm —
                // scanning past either would leak taint from the next
                // statement/arm into this binding.
                ";" | "," if depth == 0 => return false,
                _ => {}
            }
        } else if t.kind == TokKind::Ident && tainted.contains(&t.text) {
            return true;
        }
    }
    false
}

/// Run the global taint rule over the resolved workspace: per (file, fn)
/// findings for tainted values reaching seed derivation (`shard-seed`)
/// or serialisation (`taint-flow`).
pub fn check(ws: &Workspace<'_>, opts: &Options) -> Vec<(usize, Finding)> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let in_scope = opts.sim_crates.iter().any(|c| *c == file.crate_dir)
            || opts.analysis_crates.iter().any(|c| *c == file.crate_dir);
        if !in_scope || file.is_test_file {
            continue;
        }
        for (fj, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            for (ci, c) in f.calls.iter().enumerate() {
                let last = c.path.last().map(String::as_str).unwrap_or("");
                let name_seed = SEED_FN_NAMES.contains(&last);
                let name_emit = TAINT_SINK_NAMES.contains(&last)
                    || c.path
                        .ends_with(&["json".to_string(), "to_string".to_string()]);
                let resolved = match ws.target(fi, fj, ci) {
                    Target::Fn(di, dj) => Some((di, dj)),
                    _ => None,
                };
                let symbol = match resolved {
                    Some((di, dj)) => ws.symbol_path(di, dj),
                    None => c.path.join("::"),
                };
                for (a, arg) in c.args.iter().enumerate() {
                    if arg.tainted.is_empty() {
                        continue;
                    }
                    let mut to_seed = name_seed;
                    let mut to_emit = name_emit;
                    if let Some((di, dj)) = resolved {
                        if let Some(p2) = callee_param(&ws.files[di].fns[dj].params, c, a) {
                            to_seed |= ws.seed_param[di][dj].get(p2).copied().unwrap_or(false);
                            to_emit |= ws.emit_param[di][dj].get(p2).copied().unwrap_or(false);
                        }
                    }
                    for id in &arg.tainted {
                        if to_seed {
                            out.push((
                                fi,
                                Finding {
                                    pass: "taint".to_string(),
                                    rule: "shard-seed".to_string(),
                                    line: c.line,
                                    message: format!(
                                        "`{id}` flows into seed derivation `{symbol}`: shard \
                                         seeds must be derived from stable shard identity \
                                         (capture, household), never worker ids, job counts, \
                                         or other scheduling state"
                                    ),
                                    symbol: symbol.clone(),
                                },
                            ));
                        }
                        if to_emit {
                            out.push((
                                fi,
                                Finding {
                                    pass: "taint".to_string(),
                                    rule: "taint-flow".to_string(),
                                    line: c.line,
                                    message: format!(
                                        "scheduling-derived `{id}` reaches serialised output \
                                         via `{symbol}`: emitted results must be independent \
                                         of worker ids, job counts, and merge scheduling"
                                    ),
                                    symbol: symbol.clone(),
                                },
                            ));
                        }
                    }
                }
                if name_emit && !c.recv_tainted.is_empty() {
                    for id in &c.recv_tainted {
                        out.push((
                            fi,
                            Finding {
                                pass: "taint".to_string(),
                                rule: "taint-flow".to_string(),
                                line: c.line,
                                message: format!(
                                    "scheduling-derived `{id}` reaches serialised output via \
                                     `{symbol}`: emitted results must be independent of worker \
                                     ids, job counts, and merge scheduling"
                                ),
                                symbol: symbol.clone(),
                            },
                        ));
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::FileFacts;
    use std::collections::BTreeMap;

    fn check_src(files: &[(&str, &str)]) -> Vec<Finding> {
        let opts = Options::workspace();
        let facts: Vec<FileFacts> = files
            .iter()
            .map(|(rel, src)| FileFacts::compute(rel, src, &opts))
            .collect();
        let ws = Workspace::build(&facts, &BTreeMap::new());
        check(&ws, &opts).into_iter().map(|(_, f)| f).collect()
    }

    #[test]
    fn scheduling_fragments_taint_and_propagate() {
        let src = "pub fn bad(rng: &Rng, worker_idx: u64) -> Rng {\n\
                       let salt = worker_idx ^ 7;\n\
                       rng.fork(salt)\n\
                   }\n\
                   pub fn good(rng: &Rng, household: u64) -> Rng {\n\
                       rng.fork(household)\n\
                   }\n";
        let found = check_src(&[("crates/workload/src/driver.rs", src)]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "shard-seed");
        assert!(found[0].message.contains("`salt`"));
        assert!(found[0].message.contains("stable shard identity"));
    }

    #[test]
    fn aliased_seed_call_is_caught() {
        let files = [
            (
                "crates/simcore/src/par.rs",
                "pub fn household_stream(master: u64, capture: u64, hh: u64) -> Rng {\n\
                     make(master, capture, hh)\n\
                 }\n",
            ),
            (
                "crates/workload/src/driver.rs",
                "use simcore::par::household_stream as hh_stream;\n\
                 pub fn bad(seed: u64, job_id: u64) -> Rng {\n\
                     hh_stream(seed, 1, job_id)\n\
                 }\n",
            ),
        ];
        let found = check_src(&files);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "shard-seed");
        assert!(found[0].message.contains("`job_id`"));
        assert_eq!(found[0].symbol, "simcore::par::household_stream");
    }

    #[test]
    fn cross_crate_wrapper_flow_is_caught() {
        let files = [
            (
                "crates/simcore/src/par.rs",
                "pub fn shard_stream(master: u64, shard: u64) -> Rng { make(master, shard) }\n\
                 pub fn spawn_shard(seed: u64, salt: u64) -> Rng { shard_stream(seed, salt) }\n",
            ),
            (
                "crates/workload/src/driver.rs",
                "use simcore::par::spawn_shard;\n\
                 pub fn bad(seed: u64, n_jobs: u64) -> Rng { spawn_shard(seed, n_jobs) }\n",
            ),
        ];
        let found = check_src(&files);
        assert!(
            found
                .iter()
                .any(|f| f.rule == "shard-seed" && f.message.contains("`n_jobs`")),
            "tainted arg to an innocently-named cross-crate wrapper: {found:?}"
        );
    }

    #[test]
    fn tainted_emission_is_caught() {
        let src = "pub fn bad(worker_idx: u64) -> String {\n\
                       let row = Row { id: worker_idx };\n\
                       json::to_string(&row.to_json())\n\
                   }\n";
        let found = check_src(&[("crates/core/src/report.rs", src)]);
        assert!(
            found
                .iter()
                .any(|f| f.rule == "taint-flow" && f.message.contains("`row`")),
            "tainted struct reaching serialisation: {found:?}"
        );
    }

    #[test]
    fn tests_and_out_of_scope_crates_are_skipped() {
        let src = "pub fn bad(rng: &Rng, worker_idx: u64) -> Rng { rng.fork(worker_idx) }\n";
        assert!(check_src(&[("crates/workload/tests/t.rs", src)]).is_empty());
        assert!(check_src(&[("crates/bench/src/lib.rs", src)]).is_empty());
    }
}

//! Float merge-order rule (`float-merge`).
//!
//! Shard-local state is merged in canonical household order, so any f64
//! reduction inside a merge path must be order-insensitive or the
//! serial-vs-sharded byte-identity contract quietly depends on merge
//! order (f64 addition is not associative: `(a + b) + c != a + (b + c)`
//! in general). This rule flags order-sensitive reductions — `+=` on an
//! f64, `.sum()` / `.sum::<f64>()`, `.fold(0.0, ..)` — inside merge
//! contexts: functions named `*merge*`, methods of `*Merge*` types, and
//! `Accumulate` impls. The fix is `simcore::stats::OrderlessSum` (exact,
//! permutation-invariant summation) or a justified allow.

use crate::facts::Finding;
use crate::lexer::TokKind;
use crate::source::{FnSpan, SourceFile};
use crate::Options;
use std::collections::BTreeSet;

/// True when the function sits in a merge path: its own name, its impl
/// owner, or its trait says so.
fn is_merge_context(f: &FnSpan) -> bool {
    if f.owner.as_deref() == Some("OrderlessSum") {
        return false;
    }
    f.name.to_ascii_lowercase().contains("merge")
        || f.owner.as_deref().is_some_and(|o| o.contains("Merge"))
        || f.trait_name
            .as_deref()
            .is_some_and(|t| t.contains("Accumulate"))
}

/// Identifiers declared with type `f64` anywhere in the file (struct
/// fields, params, let-ascriptions): the evidence set for naming a
/// reduction target as floating point.
fn f64_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.toks;
    let mut names = BTreeSet::new();
    for k in 0..toks.len().saturating_sub(2) {
        if toks[k].kind == TokKind::Ident && toks[k + 1].is_sym(":") && toks[k + 2].is_ident("f64")
        {
            names.insert(toks[k].text.clone());
        }
    }
    names
}

/// Run the rule over one file.
pub fn check(file: &SourceFile, opts: &Options, out: &mut Vec<Finding>) {
    let in_scope = opts.sim_crates.iter().any(|c| *c == file.crate_name)
        || opts.analysis_crates.iter().any(|c| *c == file.crate_name);
    if !in_scope || file.is_test_file {
        return;
    }
    let floats = f64_names(file);
    let toks = &file.toks;
    for f in &file.fns {
        if !is_merge_context(f) || file.in_test(f.sig_start) {
            continue;
        }
        let ctx = match (&f.owner, &f.trait_name) {
            (Some(o), Some(t)) => format!("{t} for {o}"),
            (Some(o), None) => o.clone(),
            _ => f.name.clone(),
        };
        for k in f.body_open..f.body_end.min(toks.len()) {
            let t = &toks[k];
            // `name += …` where `name: f64` is declared in this file.
            if t.kind == TokKind::Ident
                && floats.contains(&t.text)
                && toks.get(k + 1).is_some_and(|n| n.is_sym("+"))
                && toks.get(k + 2).is_some_and(|n| n.is_sym("="))
            {
                push(out, f, t.line, &ctx, &format!("`{} +=`", t.text));
                continue;
            }
            if !t.is_sym(".") {
                continue;
            }
            let name = match toks.get(k + 1) {
                Some(n) if n.kind == TokKind::Ident => n.text.as_str(),
                _ => continue,
            };
            // `.sum::<f64>()` is order-sensitive by construction.
            if name == "sum"
                && toks.get(k + 2).is_some_and(|n| n.is_sym("::"))
                && toks.get(k + 4).is_some_and(|n| n.is_ident("f64"))
            {
                push(out, f, toks[k + 1].line, &ctx, "`.sum::<f64>()`");
                continue;
            }
            // `.sum()` over something float-named nearby.
            if name == "sum" && toks.get(k + 2).is_some_and(|n| n.is_sym("(")) {
                let near_float = toks[k.saturating_sub(12)..k]
                    .iter()
                    .any(|p| p.kind == TokKind::Ident && floats.contains(&p.text));
                if near_float {
                    push(out, f, toks[k + 1].line, &ctx, "`.sum()` over f64 values");
                }
                continue;
            }
            // `.fold(0.0, …)`: a float-literal accumulator seed.
            if name == "fold" && toks.get(k + 2).is_some_and(|n| n.is_sym("(")) {
                let float_seed = toks
                    .get(k + 3)
                    .is_some_and(|n| n.kind == TokKind::Num && n.text.contains('.'));
                if float_seed {
                    push(out, f, toks[k + 1].line, &ctx, "`.fold(0.0, ..)`");
                }
            }
        }
    }
}

fn push(out: &mut Vec<Finding>, f: &FnSpan, line: u32, ctx: &str, what: &str) {
    out.push(Finding {
        pass: "float".to_string(),
        rule: "float-merge".to_string(),
        line,
        message: format!(
            "order-sensitive f64 reduction {what} in merge path `{ctx}::{name}`: f64 addition \
             is not associative, so the result depends on merge order — route it through \
             `simcore::stats::OrderlessSum` or add a justified allow",
            name = f.name
        ),
        symbol: format!("{ctx}::{name}", name = f.name),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(rel: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::analyse(rel, src);
        let mut out = Vec::new();
        check(&file, &Options::workspace(), &mut out);
        out
    }

    #[test]
    fn plus_assign_in_merge_is_flagged() {
        let src = "pub struct S { sum: f64, n: u64 }\n\
                   impl S {\n\
                       pub fn merge(&mut self, other: &S) {\n\
                           self.sum += other.sum;\n\
                           self.n += other.n;\n\
                       }\n\
                   }\n";
        let out = check_src("crates/simcore/src/stats.rs", src);
        assert_eq!(out.len(), 1, "only the f64 field is flagged: {out:?}");
        assert!(out[0].message.contains("`sum +=`"));
        assert_eq!(out[0].symbol, "S::merge");
    }

    #[test]
    fn sum_and_fold_in_merge_context_are_flagged() {
        let src = "impl SpanMergeFeed {\n\
                       fn drain(&mut self, parts: &[f64]) -> f64 {\n\
                           parts.iter().copied().sum::<f64>()\n\
                       }\n\
                       fn total(&self, xs: Vec<f64>) -> f64 {\n\
                           xs.iter().fold(0.0, |a, b| a + b)\n\
                       }\n\
                   }\n";
        let out = check_src("crates/nettrace/src/sink.rs", src);
        let what: Vec<&str> = out.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(what, ["float-merge", "float-merge"]);
    }

    #[test]
    fn non_merge_and_orderless_sum_are_exempt() {
        let src = "pub struct OrderlessSum { partials: Vec<f64> }\n\
                   impl OrderlessSum {\n\
                       pub fn merge(&mut self, x: f64) { self.push_partial(x); }\n\
                   }\n\
                   pub fn total(xs: &[f64]) -> f64 { xs.iter().copied().sum::<f64>() }\n";
        let out = check_src("crates/simcore/src/stats.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn out_of_scope_and_tests_are_exempt() {
        let src = "impl M { fn merge(&mut self, v: f64) { self.acc += v; } }\n\
                   struct Q { acc: f64 }\n";
        assert!(check_src("crates/simlint/src/x.rs", src).is_empty());
        assert!(check_src("crates/simcore/tests/t.rs", src).is_empty());
    }
}

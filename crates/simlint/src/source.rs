//! Per-file source model: the token stream plus the derived structure the
//! rules need — `#[cfg(test)]` spans, function spans, and parsed
//! `// simlint: allow(...)` annotations.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// A half-open token-index span `[start, end)`.
pub type Span = (usize, usize);

/// One `fn` item: its name and the token span of its body.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// A parsed suppression annotation.
///
/// Grammar: `simlint: allow(<rule>[, <rule>]*) — <reason>` inside a
/// comment. The em-dash may also be written `--` or `-`. The reason is
/// mandatory; an annotation without one is itself a violation
/// (`allow-syntax`), so suppressions are never silent. The annotation
/// covers its own line and the line directly below it, so both trailing
/// and preceding-line comments work.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// Rule identifiers the annotation suppresses.
    pub rules: Vec<String>,
    /// Human justification (mandatory).
    pub reason: String,
}

/// A malformed `simlint:` comment, reported as an `allow-syntax` violation.
#[derive(Clone, Debug)]
pub struct BadAllow {
    /// 1-based line of the malformed comment.
    pub line: u32,
    /// What was wrong with it.
    pub what: String,
}

/// A fully analysed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, `/`-separated.
    pub rel: String,
    /// Crate the file belongs to (directory name under `crates/`, or
    /// `workspace-root` for files outside it).
    pub crate_name: String,
    /// True when the whole file is test/tooling code (under `tests/`,
    /// `benches/` or `examples/`).
    pub is_test_file: bool,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Token spans of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<Span>,
    /// Function spans in source order.
    pub fns: Vec<FnSpan>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
    /// Malformed `simlint:` comments.
    pub bad_allows: Vec<BadAllow>,
}

impl SourceFile {
    /// Lex and analyse one file.
    pub fn analyse(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_spans = find_test_spans(&lexed.toks);
        let fns = find_fn_spans(&lexed.toks);
        let (allows, bad_allows) = parse_allows(&lexed.comments);
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_of(rel),
            is_test_file: is_test_path(rel),
            toks: lexed.toks,
            test_spans,
            fns,
            allows,
            bad_allows,
        }
    }

    /// True when the token at `idx` sits inside test-only code (a
    /// `#[cfg(test)]` / `#[test]` item) or the whole file is test/tooling.
    pub fn in_test(&self, idx: usize) -> bool {
        self.is_test_file || self.test_spans.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// The innermost function span containing token `idx`, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| idx >= f.sig_start && idx < f.body_end)
            .min_by_key(|f| f.body_end - f.sig_start)
    }

    /// The allow annotation covering `line` for `rule`, if any.
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }
}

/// Crate classification from a root-relative path.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "workspace-root".to_string()
}

/// True for paths whose every rule should treat them as test/tooling code.
fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// Find `#[cfg(test)]` / `#[test]` item spans by brace matching.
fn find_test_spans(toks: &[Tok]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if !(toks[i].is_sym("#") && toks[i + 1].is_sym("[")) {
            i += 1;
            continue;
        }
        let attr_end = match match_delim(toks, i + 1, "[", "]") {
            Some(e) => e,
            None => break,
        };
        if is_test_attr(&toks[i + 2..attr_end]) {
            // Skip any further attributes between this one and the item.
            let mut k = attr_end + 1;
            while k + 1 < toks.len() && toks[k].is_sym("#") && toks[k + 1].is_sym("[") {
                match match_delim(toks, k + 1, "[", "]") {
                    Some(e) => k = e + 1,
                    None => break,
                }
            }
            if let Some(end) = item_end(toks, k) {
                spans.push((i, end));
                i = end;
                continue;
            }
        }
        i = attr_end + 1;
    }
    spans
}

/// True when the attribute tokens mark test-only code: `test`,
/// `cfg(test)`, or any `cfg(...)` mentioning `test`.
fn is_test_attr(inner: &[Tok]) -> bool {
    match inner.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => inner.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Token index one past the end of the item starting at `start`: either a
/// brace-matched block or a `;`-terminated item.
fn item_end(toks: &[Tok], start: usize) -> Option<usize> {
    let mut depth_round = 0i32;
    let mut depth_square = 0i32;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Sym {
            match t.text.as_str() {
                "(" => depth_round += 1,
                ")" => depth_round -= 1,
                "[" => depth_square += 1,
                "]" => depth_square -= 1,
                "{" => return match_delim(toks, j, "{", "}").map(|e| e + 1),
                ";" if depth_round == 0 && depth_square == 0 => return Some(j + 1),
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Index of the delimiter closing the one at `open` (which must hold the
/// opening token).
fn match_delim(toks: &[Tok], open: usize, od: &str, cd: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_sym(od) {
            depth += 1;
        } else if t.is_sym(cd) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Find all `fn` items that have a body.
fn find_fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let name = match toks.get(i + 1) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => continue,
        };
        // Body opens at the first `{` at bracket depth 0 after the name; a
        // `;` first means a bodyless trait/extern declaration.
        let mut depth_round = 0i32;
        let mut depth_square = 0i32;
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Sym {
                match t.text.as_str() {
                    "(" => depth_round += 1,
                    ")" => depth_round -= 1,
                    "[" => depth_square += 1,
                    "]" => depth_square -= 1,
                    "{" if depth_round == 0 && depth_square == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth_round == 0 && depth_square == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let open = match open {
            Some(o) => o,
            None => continue,
        };
        if let Some(close) = match_delim(toks, open, "{", "}") {
            fns.push(FnSpan {
                name,
                sig_start: i,
                body_open: open,
                body_end: close + 1,
                line: toks[i].line,
            });
        }
    }
    fns
}

/// Parse `simlint:` annotations out of the comment stream.
fn parse_allows(comments: &[Comment]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Only comments that *are* a directive count: after stripping doc
        // markers (`///`, `//!` leave `/`/`!` in the text), the comment
        // must start with `simlint:`. Prose that merely mentions the
        // grammar is ignored.
        let text = c.text.trim_start_matches(['/', '!']).trim();
        let rest = match text.strip_prefix("simlint:") {
            Some(r) => r.trim_start(),
            None => continue,
        };
        let rest = match rest.strip_prefix("allow") {
            Some(r) => r.trim_start(),
            None => {
                bad.push(BadAllow {
                    line: c.line,
                    what: "only `simlint: allow(<rule>) — <reason>` is recognised".to_string(),
                });
                continue;
            }
        };
        let (inner, after) = match rest.strip_prefix('(').and_then(|r| {
            r.find(')')
                .map(|close| (r[..close].trim(), r[close + 1..].trim_start()))
        }) {
            Some(pair) => pair,
            None => {
                bad.push(BadAllow {
                    line: c.line,
                    what: "missing `(<rule>)` after `allow`".to_string(),
                });
                continue;
            }
        };
        let rules: Vec<String> = inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad.push(BadAllow {
                line: c.line,
                what: "empty rule list".to_string(),
            });
            continue;
        }
        let reason = ["—", "--", "-"]
            .iter()
            .find_map(|d| after.strip_prefix(d))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            bad.push(BadAllow {
                line: c.line,
                what: "missing justification: write `allow(<rule>) — <reason>`".to_string(),
            });
            continue;
        }
        allows.push(Allow {
            line: c.line,
            rules,
            reason: reason.to_string(),
        });
    }
    (allows, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { bad(); } }\nfn after() {}";
        let f = SourceFile::analyse("crates/x/src/lib.rs", src);
        let bad_idx = f.toks.iter().position(|t| t.is_ident("bad")).unwrap();
        let live_idx = f.toks.iter().position(|t| t.is_ident("live")).unwrap();
        let after_idx = f.toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(f.in_test(bad_idx));
        assert!(!f.in_test(live_idx));
        assert!(!f.in_test(after_idx));
    }

    #[test]
    fn fn_spans_and_enclosing() {
        let src = "fn outer() { let x = 1; }\nfn sig_only(a: [u8; 4]) -> u8 { a[0] }";
        let f = SourceFile::analyse("crates/x/src/lib.rs", src);
        assert_eq!(f.fns.len(), 2);
        let x_idx = f.toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(f.enclosing_fn(x_idx).unwrap().name, "outer");
    }

    #[test]
    fn allow_grammar() {
        let src = "// simlint: allow(wall-clock) — profiling helper\nfn f() {}\n// simlint: allow(map-iter)\nfn g() {}\n";
        let f = SourceFile::analyse("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rules, ["wall-clock"]);
        assert!(f.allow_for("wall-clock", 2).is_some());
        assert!(f.allow_for("wall-clock", 3).is_none());
        assert_eq!(f.bad_allows.len(), 1, "reason-less allow is malformed");
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/tstat/src/lib.rs"), "tstat");
        assert_eq!(crate_of("src/lib.rs"), "workspace-root");
        assert!(is_test_path("crates/workload/tests/x.rs"));
        assert!(is_test_path("examples/demo.rs"));
        assert!(!is_test_path("crates/workload/src/driver.rs"));
    }
}

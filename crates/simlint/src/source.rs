//! Per-file source model: the token stream plus the derived structure the
//! rules need — `#[cfg(test)]` spans, function spans, and parsed
//! `// simlint: allow(...)` annotations.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// A half-open token-index span `[start, end)`.
pub type Span = (usize, usize);

/// One `fn` item: its name and the token span of its body.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Self type of the enclosing `impl` block (last path segment), if any.
    pub owner: Option<String>,
    /// Trait the enclosing `impl` block implements (last path segment), if
    /// it is a trait impl.
    pub trait_name: Option<String>,
    /// Parameter names in declaration order (`self` included literally;
    /// destructuring patterns contribute each bound name).
    pub params: Vec<String>,
}

/// One `use` declaration leaf: a local name bound to a full path. Groups
/// (`use a::{b, c as d}`) expand to one decl per leaf; globs bind the
/// alias `*` to the path prefix.
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// Full path segments as written (`crate`/`self`/`super` kept).
    pub path: Vec<String>,
    /// Local name the path is bound to; `*` for a glob import.
    pub alias: String,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// One `impl` block: its self type, optional trait, and body token span.
#[derive(Clone, Debug)]
pub struct ImplSpan {
    /// Self type (last path segment, generics stripped).
    pub owner: String,
    /// Trait implemented (last path segment), if a trait impl.
    pub trait_name: Option<String>,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// A parsed suppression annotation.
///
/// Grammar: `simlint: allow(<rule>[, <rule>]*) — <reason>` inside a
/// comment. The em-dash may also be written `--` or `-`. The reason is
/// mandatory; an annotation without one is itself a violation
/// (`allow-syntax`), so suppressions are never silent. The annotation
/// covers its own line and the line directly below it, so both trailing
/// and preceding-line comments work.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// Rule identifiers the annotation suppresses.
    pub rules: Vec<String>,
    /// Human justification (mandatory).
    pub reason: String,
}

/// A malformed `simlint:` comment, reported as an `allow-syntax` violation.
#[derive(Clone, Debug)]
pub struct BadAllow {
    /// 1-based line of the malformed comment.
    pub line: u32,
    /// What was wrong with it.
    pub what: String,
}

/// A fully analysed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, `/`-separated.
    pub rel: String,
    /// Crate the file belongs to (directory name under `crates/`, or
    /// `workspace-root` for files outside it).
    pub crate_name: String,
    /// True when the whole file is test/tooling code (under `tests/`,
    /// `benches/` or `examples/`).
    pub is_test_file: bool,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Token spans of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<Span>,
    /// Function spans in source order.
    pub fns: Vec<FnSpan>,
    /// `use` declarations, one per leaf.
    pub uses: Vec<UseDecl>,
    /// `impl` block spans in source order.
    pub impls: Vec<ImplSpan>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
    /// Malformed `simlint:` comments.
    pub bad_allows: Vec<BadAllow>,
}

impl SourceFile {
    /// Lex and analyse one file.
    pub fn analyse(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_spans = find_test_spans(&lexed.toks);
        let impls = find_impl_spans(&lexed.toks);
        let fns = find_fn_spans(&lexed.toks, &impls);
        let uses = find_use_decls(&lexed.toks);
        let (allows, bad_allows) = parse_allows(&lexed.comments);
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_of(rel),
            is_test_file: is_test_path(rel),
            toks: lexed.toks,
            test_spans,
            fns,
            uses,
            impls,
            allows,
            bad_allows,
        }
    }

    /// True when the token at `idx` sits inside test-only code (a
    /// `#[cfg(test)]` / `#[test]` item) or the whole file is test/tooling.
    pub fn in_test(&self, idx: usize) -> bool {
        self.is_test_file || self.test_spans.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// The innermost function span containing token `idx`, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| idx >= f.sig_start && idx < f.body_end)
            .min_by_key(|f| f.body_end - f.sig_start)
    }

    /// The allow annotation covering `line` for `rule`, if any.
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }
}

/// Crate classification from a root-relative path.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "workspace-root".to_string()
}

/// True for paths whose every rule should treat them as test/tooling code.
fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// Find `#[cfg(test)]` / `#[test]` item spans by brace matching.
fn find_test_spans(toks: &[Tok]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if !(toks[i].is_sym("#") && toks[i + 1].is_sym("[")) {
            i += 1;
            continue;
        }
        let attr_end = match match_delim(toks, i + 1, "[", "]") {
            Some(e) => e,
            None => break,
        };
        if is_test_attr(&toks[i + 2..attr_end]) {
            // Skip any further attributes between this one and the item.
            let mut k = attr_end + 1;
            while k + 1 < toks.len() && toks[k].is_sym("#") && toks[k + 1].is_sym("[") {
                match match_delim(toks, k + 1, "[", "]") {
                    Some(e) => k = e + 1,
                    None => break,
                }
            }
            if let Some(end) = item_end(toks, k) {
                spans.push((i, end));
                i = end;
                continue;
            }
        }
        i = attr_end + 1;
    }
    spans
}

/// True when the attribute tokens mark test-only code: `test`,
/// `cfg(test)`, or any `cfg(...)` mentioning `test`.
fn is_test_attr(inner: &[Tok]) -> bool {
    match inner.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => inner.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Token index one past the end of the item starting at `start`: either a
/// brace-matched block or a `;`-terminated item.
fn item_end(toks: &[Tok], start: usize) -> Option<usize> {
    let mut depth_round = 0i32;
    let mut depth_square = 0i32;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Sym {
            match t.text.as_str() {
                "(" => depth_round += 1,
                ")" => depth_round -= 1,
                "[" => depth_square += 1,
                "]" => depth_square -= 1,
                "{" => return match_delim(toks, j, "{", "}").map(|e| e + 1),
                ";" if depth_round == 0 && depth_square == 0 => return Some(j + 1),
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Index of the delimiter closing the one at `open` (which must hold the
/// opening token).
fn match_delim(toks: &[Tok], open: usize, od: &str, cd: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_sym(od) {
            depth += 1;
        } else if t.is_sym(cd) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Find all `fn` items that have a body, attaching the enclosing `impl`
/// block (if any) and the declared parameter names.
fn find_fn_spans(toks: &[Tok], impls: &[ImplSpan]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let name = match toks.get(i + 1) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => continue,
        };
        // Body opens at the first `{` at bracket depth 0 after the name; a
        // `;` first means a bodyless trait/extern declaration.
        let mut depth_round = 0i32;
        let mut depth_square = 0i32;
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Sym {
                match t.text.as_str() {
                    "(" => depth_round += 1,
                    ")" => depth_round -= 1,
                    "[" => depth_square += 1,
                    "]" => depth_square -= 1,
                    "{" if depth_round == 0 && depth_square == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth_round == 0 && depth_square == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let open = match open {
            Some(o) => o,
            None => continue,
        };
        if let Some(close) = match_delim(toks, open, "{", "}") {
            // Innermost impl block whose body contains the `fn` keyword.
            let imp = impls
                .iter()
                .filter(|im| i > im.body_open && i < im.body_end)
                .min_by_key(|im| im.body_end - im.body_open);
            fns.push(FnSpan {
                name,
                sig_start: i,
                body_open: open,
                body_end: close + 1,
                line: toks[i].line,
                owner: imp.map(|im| im.owner.clone()),
                trait_name: imp.and_then(|im| im.trait_name.clone()),
                params: fn_params(toks, i + 1, open),
            });
        }
    }
    fns
}

/// Parameter names of the `fn` whose name sits at `name_idx`, scanning up
/// to the body-open token. Destructuring patterns contribute every bound
/// name; `self` is recorded literally.
fn fn_params(toks: &[Tok], name_idx: usize, body_open: usize) -> Vec<String> {
    // Opening paren: first `(` after the name at angle depth 0 (skipping
    // generic parameters, where `(` cannot appear at depth 0).
    let mut j = name_idx + 1;
    let mut angle = 0i32;
    let open = loop {
        if j >= body_open {
            return Vec::new();
        }
        match (toks[j].kind, toks[j].text.as_str()) {
            (TokKind::Sym, "<") => angle += 1,
            (TokKind::Sym, ">") => angle -= 1,
            (TokKind::Sym, "(") if angle <= 0 => break j,
            _ => {}
        }
        j += 1;
    };
    let close = match match_delim(toks, open, "(", ")") {
        Some(c) => c.min(body_open),
        None => return Vec::new(),
    };
    // A name is an ident directly inside the parens (round depth 1, no
    // nested brackets) followed by `:`, plus literal `self`. Destructured
    // patterns (`(a, b): (u8, u8)`) sit at square/round depth > 1 before
    // their `:`, so collect idents-before-`:` at any depth left of the
    // top-level `:`; simplest robust rule: idents followed by `:` while we
    // have not yet passed that param's top-level `:`.
    let mut params = Vec::new();
    let mut round = 0i32;
    let mut sq = 0i32;
    let mut ang = 0i32;
    let mut brace = 0i32;
    let mut in_type = false; // between a top-level `:` and the next top-level `,`
    for k in open..close {
        let t = &toks[k];
        if t.kind == TokKind::Sym {
            match t.text.as_str() {
                "(" => round += 1,
                ")" => round -= 1,
                "[" => sq += 1,
                "]" => sq -= 1,
                "{" => brace += 1,
                "}" => brace -= 1,
                "<" => ang += 1,
                ">" if k > 0 && !toks[k - 1].is_sym("-") => ang -= 1,
                ":" if round == 1 && sq == 0 && ang <= 0 && brace == 0 => in_type = true,
                "," if round == 1 && sq == 0 && ang <= 0 && brace == 0 => in_type = false,
                _ => {}
            }
            continue;
        }
        if in_type || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "self" && round == 1 {
            params.push("self".to_string());
            continue;
        }
        // Pattern-side ident bound if followed by `:` or `,` or the
        // closing `)` of its pattern — i.e. not a path segment or keyword.
        if matches!(t.text.as_str(), "mut" | "ref" | "dyn" | "impl") {
            continue;
        }
        let next = toks.get(k + 1);
        let bound = match next {
            Some(n) if n.is_sym(":") => true,
            Some(n) if (n.is_sym(",") || n.is_sym(")")) && round > 1 => true,
            _ => false,
        };
        let prev_path = k > 0 && toks[k - 1].is_sym("::");
        if bound && !prev_path {
            params.push(t.text.clone());
        }
    }
    params
}

/// Find all `impl` blocks with their self type and optional trait.
fn find_impl_spans(toks: &[Tok]) -> Vec<ImplSpan> {
    let mut impls = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let mut j = i + 1;
        // Skip the generic parameter list, if any.
        if j < toks.len() && toks[j].is_sym("<") {
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_sym("<") {
                    depth += 1;
                } else if toks[j].is_sym(">") && !(j > 0 && toks[j - 1].is_sym("-")) {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // First path: trait in `impl Trait for Type`, else the self type.
        let (first, after_first) = impl_path(toks, j);
        let (owner, trait_name, mut k) =
            if after_first < toks.len() && toks[after_first].is_ident("for") {
                let (second, after_second) = impl_path(toks, after_first + 1);
                (second, first, after_second)
            } else {
                (first, None, after_first)
            };
        // Body opens at the next `{` (skipping any where-clause).
        while k < toks.len() && !toks[k].is_sym("{") {
            k += 1;
        }
        if let (Some(owner), Some(close)) = (owner, match_delim(toks, k, "{", "}")) {
            impls.push(ImplSpan {
                owner,
                trait_name,
                body_open: k,
                body_end: close + 1,
                line,
            });
            i = k + 1;
            continue;
        }
        i = j.max(i + 1);
    }
    impls
}

/// Parse one type path in an `impl` header starting at `start`: returns
/// the last identifier segment (generics stripped) and the index after the
/// path. Leading `&`/`mut`/lifetimes are skipped.
fn impl_path(toks: &[Tok], start: usize) -> (Option<String>, usize) {
    let mut j = start;
    while j < toks.len()
        && (toks[j].is_sym("&") || toks[j].is_ident("mut") || toks[j].kind == TokKind::Lifetime)
    {
        j += 1;
    }
    let mut last = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Ident {
            if t.text == "for" || t.text == "where" {
                break;
            }
            last = Some(t.text.clone());
            j += 1;
            continue;
        }
        if t.is_sym("::") {
            j += 1;
            continue;
        }
        if t.is_sym("<") {
            // Skip the generic argument list.
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_sym("<") {
                    depth += 1;
                } else if toks[j].is_sym(">") && !(j > 0 && toks[j - 1].is_sym("-")) {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            continue;
        }
        break;
    }
    (last, j)
}

/// Expand every `use` declaration into per-leaf [`UseDecl`]s.
fn find_use_decls(toks: &[Tok]) -> Vec<UseDecl> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("use") {
            i += 1;
            continue;
        }
        let end = toks[i..]
            .iter()
            .position(|t| t.is_sym(";"))
            .map(|p| i + p)
            .unwrap_or(toks.len());
        let mut prefix = Vec::new();
        parse_use_tree(&toks[i + 1..end], &mut prefix, toks[i].line, &mut out);
        i = end + 1;
    }
    out
}

/// Recursive descent over one use-tree: `a::b`, `a::b as c`, `a::{..}`,
/// `a::*`. Appends one [`UseDecl`] per leaf.
fn parse_use_tree(toks: &[Tok], prefix: &mut Vec<String>, line: u32, out: &mut Vec<UseDecl>) {
    let base = prefix.len();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("as") {
            if let Some(a) = toks.get(i + 1) {
                if a.kind == TokKind::Ident && prefix.len() > base {
                    out.push(UseDecl {
                        path: prefix.clone(),
                        alias: a.text.clone(),
                        line,
                    });
                    prefix.truncate(base);
                    return;
                }
            }
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            prefix.push(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_sym("::") {
            i += 1;
            continue;
        }
        if t.is_sym("*") {
            out.push(UseDecl {
                path: prefix.clone(),
                alias: "*".to_string(),
                line,
            });
            prefix.truncate(base);
            return;
        }
        if t.is_sym("{") {
            if let Some(close) = match_delim(toks, i, "{", "}") {
                // Split the group on top-level commas.
                let mut item_start = i + 1;
                let mut depth = 0i32;
                for k in i + 1..close {
                    if toks[k].is_sym("{") {
                        depth += 1;
                    } else if toks[k].is_sym("}") {
                        depth -= 1;
                    } else if toks[k].is_sym(",") && depth == 0 {
                        parse_use_tree(&toks[item_start..k], prefix, line, out);
                        item_start = k + 1;
                    }
                }
                parse_use_tree(&toks[item_start..close], prefix, line, out);
            }
            prefix.truncate(base);
            return;
        }
        i += 1;
    }
    if prefix.len() > base {
        // `use a::{self, b}`: the `self` leaf binds the parent name.
        if prefix.last().map(String::as_str) == Some("self") && prefix.len() > 1 {
            prefix.pop();
        }
        let alias = prefix.last().cloned().unwrap_or_default();
        if prefix.len() > base || base > 0 {
            out.push(UseDecl {
                path: prefix.clone(),
                alias,
                line,
            });
        }
    }
    prefix.truncate(base);
}

/// Parse `simlint:` annotations out of the comment stream.
fn parse_allows(comments: &[Comment]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Only comments that *are* a directive count: after stripping doc
        // markers (`///`, `//!` leave `/`/`!` in the text), the comment
        // must start with `simlint:`. Prose that merely mentions the
        // grammar is ignored.
        let text = c.text.trim_start_matches(['/', '!']).trim();
        let rest = match text.strip_prefix("simlint:") {
            Some(r) => r.trim_start(),
            None => continue,
        };
        let rest = match rest.strip_prefix("allow") {
            Some(r) => r.trim_start(),
            None => {
                bad.push(BadAllow {
                    line: c.line,
                    what: "only `simlint: allow(<rule>) — <reason>` is recognised".to_string(),
                });
                continue;
            }
        };
        let (inner, after) = match rest.strip_prefix('(').and_then(|r| {
            r.find(')')
                .map(|close| (r[..close].trim(), r[close + 1..].trim_start()))
        }) {
            Some(pair) => pair,
            None => {
                bad.push(BadAllow {
                    line: c.line,
                    what: "missing `(<rule>)` after `allow`".to_string(),
                });
                continue;
            }
        };
        let rules: Vec<String> = inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad.push(BadAllow {
                line: c.line,
                what: "empty rule list".to_string(),
            });
            continue;
        }
        let reason = ["—", "--", "-"]
            .iter()
            .find_map(|d| after.strip_prefix(d))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            bad.push(BadAllow {
                line: c.line,
                what: "missing justification: write `allow(<rule>) — <reason>`".to_string(),
            });
            continue;
        }
        allows.push(Allow {
            line: c.line,
            rules,
            reason: reason.to_string(),
        });
    }
    (allows, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { bad(); } }\nfn after() {}";
        let f = SourceFile::analyse("crates/x/src/lib.rs", src);
        let bad_idx = f.toks.iter().position(|t| t.is_ident("bad")).unwrap();
        let live_idx = f.toks.iter().position(|t| t.is_ident("live")).unwrap();
        let after_idx = f.toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(f.in_test(bad_idx));
        assert!(!f.in_test(live_idx));
        assert!(!f.in_test(after_idx));
    }

    #[test]
    fn fn_spans_and_enclosing() {
        let src = "fn outer() { let x = 1; }\nfn sig_only(a: [u8; 4]) -> u8 { a[0] }";
        let f = SourceFile::analyse("crates/x/src/lib.rs", src);
        assert_eq!(f.fns.len(), 2);
        let x_idx = f.toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(f.enclosing_fn(x_idx).unwrap().name, "outer");
    }

    #[test]
    fn allow_grammar() {
        let src = "// simlint: allow(wall-clock) — profiling helper\nfn f() {}\n// simlint: allow(map-iter)\nfn g() {}\n";
        let f = SourceFile::analyse("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rules, ["wall-clock"]);
        assert!(f.allow_for("wall-clock", 2).is_some());
        assert!(f.allow_for("wall-clock", 3).is_none());
        assert_eq!(f.bad_allows.len(), 1, "reason-less allow is malformed");
    }

    #[test]
    fn use_decl_expansion() {
        let src = "use simcore::par::{shard_stream, household_stream as hh};\n\
                   use simcore::rng::Rng;\nuse nettrace::*;\nuse a::b::{self, c};\n";
        let f = SourceFile::analyse("crates/x/src/lib.rs", src);
        let decls: Vec<(String, String)> = f
            .uses
            .iter()
            .map(|u| (u.path.join("::"), u.alias.clone()))
            .collect();
        assert_eq!(
            decls,
            [
                (
                    "simcore::par::shard_stream".to_string(),
                    "shard_stream".to_string()
                ),
                (
                    "simcore::par::household_stream".to_string(),
                    "hh".to_string()
                ),
                ("simcore::rng::Rng".to_string(), "Rng".to_string()),
                ("nettrace".to_string(), "*".to_string()),
                ("a::b".to_string(), "b".to_string()),
                ("a::b::c".to_string(), "c".to_string()),
            ]
        );
    }

    #[test]
    fn impl_blocks_attach_owner_and_trait() {
        let src = "impl Summary { fn add(&mut self, x: f64) {} }\n\
                   impl<T: Clone> Accumulate for Sketch<T> {\n\
                       fn merge(&mut self, other: &Self) { let _ = other; }\n\
                   }\nfn free(a: u64) {}";
        let f = SourceFile::analyse("crates/x/src/lib.rs", src);
        assert_eq!(f.impls.len(), 2);
        assert_eq!(f.impls[0].owner, "Summary");
        assert_eq!(f.impls[0].trait_name, None);
        assert_eq!(f.impls[1].owner, "Sketch");
        assert_eq!(f.impls[1].trait_name.as_deref(), Some("Accumulate"));
        let add = f.fns.iter().find(|x| x.name == "add").unwrap();
        assert_eq!(add.owner.as_deref(), Some("Summary"));
        assert_eq!(add.params, ["self", "x"]);
        let merge = f.fns.iter().find(|x| x.name == "merge").unwrap();
        assert_eq!(merge.owner.as_deref(), Some("Sketch"));
        assert_eq!(merge.trait_name.as_deref(), Some("Accumulate"));
        assert_eq!(merge.params, ["self", "other"]);
        let free = f.fns.iter().find(|x| x.name == "free").unwrap();
        assert_eq!(free.owner, None);
        assert_eq!(free.params, ["a"]);
    }

    #[test]
    fn fn_params_handle_generics_and_patterns() {
        let src = "fn g<K: Ord, V>(map: BTreeMap<K, V>, (lo, hi): (u64, u64), n: u8) {}";
        let f = SourceFile::analyse("crates/x/src/lib.rs", src);
        assert_eq!(f.fns[0].params, ["map", "lo", "hi", "n"]);
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/tstat/src/lib.rs"), "tstat");
        assert_eq!(crate_of("src/lib.rs"), "workspace-root");
        assert!(is_test_path("crates/workload/tests/x.rs"));
        assert!(is_test_path("examples/demo.rs"));
        assert!(!is_test_path("crates/workload/src/driver.rs"));
    }
}

//! Name-based call-graph approximation used by the map-iteration rule.
//!
//! The determinism contract cares about one reachability question: can a
//! function's effects end up in serialized output? We answer it with a
//! conservative name-level graph: a function is *emitting* when its body
//! calls `to_json` / `write_jsonl` (or invokes `json::to_string`
//! directly), or when it calls a workspace function that is itself
//! emitting. Resolution is by bare name across the whole workspace — an
//! over-approximation that errs toward flagging, which is the right
//! direction for a reproducibility gate.
//!
//! Ultra-generic names (`to_string`, `new`, `clone`, …) are excluded from
//! propagation: treating every `x.to_string()` call site as "reaches
//! emission" would poison the entire workspace and make the rule useless.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Calls to these names mark a function as directly emitting.
const EMIT_CALLS: &[&str] = &["to_json", "write_jsonl"];

/// Names too generic to propagate emission status through.
const STOPLIST: &[&str] = &[
    "to_string",
    "new",
    "default",
    "clone",
    "from",
    "into",
    "fmt",
    "next",
    "len",
    "get",
    "push",
    "insert",
    "remove",
    "write",
    "flush",
    "finish",
    "extend",
    "sum",
    "min",
    "max",
    "cmp",
    "eq",
    "hash",
    "collect",
    "map",
    "iter",
    "contains",
];

/// Keywords that can directly precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "in", "let", "else", "move", "as",
    "impl", "where", "pub",
];

/// For every file, a bool per [`SourceFile::fns`] entry: true when that
/// function (transitively) reaches JSON/JSONL emission.
pub fn emitting_fns(files: &[SourceFile]) -> Vec<Vec<bool>> {
    // Called names per function, and definitions by name.
    let mut calls: Vec<Vec<BTreeSet<String>>> = Vec::with_capacity(files.len());
    let mut defs: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    let mut emitting: Vec<Vec<bool>> = Vec::with_capacity(files.len());

    for (fi, file) in files.iter().enumerate() {
        let mut per_fn = Vec::with_capacity(file.fns.len());
        let mut seeds = Vec::with_capacity(file.fns.len());
        for (fj, f) in file.fns.iter().enumerate() {
            defs.entry(f.name.clone()).or_default().push((fi, fj));
            let body = &file.toks[f.body_open..f.body_end];
            let mut named = BTreeSet::new();
            let mut seed = false;
            for k in 0..body.len() {
                let t = &body[k];
                if t.kind != TokKind::Ident {
                    continue;
                }
                // `json::to_string(..)` is direct serialisation.
                if t.text == "json"
                    && body.get(k + 1).is_some_and(|n| n.is_sym("::"))
                    && body.get(k + 2).is_some_and(|n| n.is_ident("to_string"))
                {
                    seed = true;
                }
                if body.get(k + 1).is_some_and(|n| n.is_sym("("))
                    && !KEYWORDS.contains(&t.text.as_str())
                {
                    if EMIT_CALLS.contains(&t.text.as_str()) {
                        seed = true;
                    }
                    named.insert(t.text.clone());
                }
            }
            per_fn.push(named);
            seeds.push(seed);
        }
        calls.push(per_fn);
        emitting.push(seeds);
    }

    // Fixpoint: emission status flows backwards along call edges.
    loop {
        let mut changed = false;
        for fi in 0..files.len() {
            for fj in 0..files[fi].fns.len() {
                if emitting[fi][fj] {
                    continue;
                }
                let reaches = calls[fi][fj].iter().any(|name| {
                    !STOPLIST.contains(&name.as_str())
                        && defs
                            .get(name)
                            .is_some_and(|ds| ds.iter().any(|&(di, dj)| emitting[di][dj]))
                });
                if reaches {
                    emitting[fi][fj] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return emitting;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::analyse("crates/x/src/lib.rs", src)
    }

    #[test]
    fn direct_and_transitive_emission() {
        let f = file(
            "fn leaf(v: &V) { let _ = v.to_json(); }\n\
             fn mid() { leaf(&V); }\n\
             fn top() { mid(); }\n\
             fn unrelated() { let _ = 1 + 1; }",
        );
        let e = emitting_fns(std::slice::from_ref(&f));
        let by_name: BTreeMap<&str, bool> = f
            .fns
            .iter()
            .zip(&e[0])
            .map(|(f, &b)| (f.name.as_str(), b))
            .collect();
        assert!(by_name["leaf"] && by_name["mid"] && by_name["top"]);
        assert!(!by_name["unrelated"]);
    }

    #[test]
    fn to_string_does_not_propagate() {
        // The local `to_string` is emitting, but calling a `to_string`
        // elsewhere must not mark callers (the name is on the stoplist).
        let f = file(
            "fn to_string(x: &X) -> String { json::to_string(&x.to_json()) }\n\
             fn caller() -> String { y.to_string() }",
        );
        let e = emitting_fns(std::slice::from_ref(&f));
        let caller = f.fns.iter().position(|f| f.name == "caller").unwrap();
        assert!(!e[0][caller]);
    }
}

//! Fixture: hermeticity violations on the source side.

extern crate serde;

pub fn shell_out() -> bool {
    std::process::Command::new("uname").status().is_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn command_in_tests_is_fine() {
        let _ = std::process::Command::new("true").status();
    }
}

//! Known-bad fixture for the emission-reachability tier: `bench` is not a
//! simulation crate, so hash-map iteration is flagged only in functions
//! that (transitively) reach JSON/JSONL emission.

use std::collections::HashMap;

pub struct Results {
    samples: HashMap<String, u64>,
}

impl Results {
    // Flagged: iterates and feeds `write_report`, which serialises.
    pub fn export(&self) -> Vec<Json> {
        let mut out = Vec::new();
        for (k, v) in self.samples.iter() {
            out.push(write_report(k, *v));
        }
        out
    }

    // Not flagged: iteration that never reaches emission.
    pub fn total(&self) -> u64 {
        let mut acc = 0;
        for v in self.samples.values() {
            acc += v;
        }
        acc
    }
}

fn write_report(k: &str, v: u64) -> Json {
    Json::obj([(k, v.to_json())])
}

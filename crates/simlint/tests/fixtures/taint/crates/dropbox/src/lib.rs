//! Known-bad fixture, cross-crate leg: the tainted value reaches the
//! seed stream only through `workload::wrap` — two crates away from the
//! actual `fork` call.

pub fn violating_transitive(rng: &Rng, thread_no: u64) -> Rng {
    workload::wrap(rng, thread_no)
}

pub fn clean_transitive(rng: &Rng, capture_id: u64) -> Rng {
    workload::wrap(rng, capture_id)
}

//! Fixture stand-in for the real `simcore` crate: declares the seed
//! stream constructor the taint pass treats as a derivation sink.

pub mod par;

//! The seed-stream constructor. Its `id` parameter reaches `fork`, so
//! the param-flow fixpoint marks it as a seed parameter — callers passing
//! scheduling-derived values are flagged wherever they are.

pub fn household_stream(rng: &Rng, id: u64) -> Rng {
    rng.fork_named("households").fork(id)
}

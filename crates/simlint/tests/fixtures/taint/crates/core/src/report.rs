//! Known-bad fixture, emission leg: a scheduling-derived value is
//! serialised, so the written artifact depends on `--jobs`.

pub fn emit(out: &mut Out, worker_idx: u64, household: u64) {
    out.write_jsonl(worker_idx);
    out.write_jsonl(household);
}

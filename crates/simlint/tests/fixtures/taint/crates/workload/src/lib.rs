//! Known-bad fixture: the seed constructor is renamed through `use`, so
//! a name-based check would miss it — only resolution connects `stream`
//! back to `simcore::par::household_stream`.

use simcore::par::household_stream as stream;

pub fn violating(rng: &Rng, worker_idx: u64) -> Rng {
    stream(rng, worker_idx)
}

pub fn clean(rng: &Rng, household: u64) -> Rng {
    stream(rng, household)
}

pub fn annotated(rng: &Rng, job_salt: u64) -> Rng {
    // simlint: allow(shard-seed) — fixture: pretend this is identity-derived
    stream(rng, job_salt)
}

/// Wrapper whose `x` parameter flows into the seed stream: callers of
/// `wrap` inherit the obligation transitively.
pub fn wrap(rng: &Rng, x: u64) -> Rng {
    simcore::par::household_stream(rng, x)
}

//! Fixture: JSONL schema drift. `FixRec` writes a new field `fresh` that
//! `from_json` reads strictly — logs written before the field existed
//! would fail to parse. `GoodRec` shows the contract followed.

pub struct FixRec {
    old: u64,
    fresh: u64,
}

impl ToJson for FixRec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("old", self.old.to_json()),
            ("fresh", self.fresh.to_json()),
        ])
    }
}

impl FromJson for FixRec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FixRec {
            old: v.field_or("old", 0)?,
            fresh: v.field("fresh")?,
        })
    }
}

pub struct GoodRec {
    old: u64,
    fresh: u64,
}

impl ToJson for GoodRec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("old", self.old.to_json()),
            ("fresh", self.fresh.to_json()),
        ])
    }
}

impl FromJson for GoodRec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(GoodRec {
            old: v.field_or("old", 0)?,
            fresh: v.field_or("fresh", 0)?,
        })
    }
}

//! Known-bad fixture: thread primitives in a simulation crate, outside
//! the deterministic fork-join executor (`simcore::par`).

pub fn rogue_spawn() -> i32 {
    let h = std::thread::spawn(|| 1 + 1);
    h.join().unwrap_or(0)
}

pub fn rogue_scope() -> i32 {
    let mut total = 0;
    std::thread::scope(|s| {
        let h = s.spawn(|| 21);
        total = h.join().unwrap_or(0) * 2;
    });
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_in_tests_are_fine() {
        let h = std::thread::spawn(|| ());
        let _ = h.join();
    }
}

//! Fixture standing in for the real executor file: thread primitives are
//! legal here, but shared mutable state must carry a justified allow
//! annotation — the unannotated `Mutex` below is the violation.

pub fn executor(n: usize) -> usize {
    // simlint: allow(par-exec) — scheduling cursor only; never carries shard data
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let shared = std::sync::Mutex::new(0usize);
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| {
                let _ = &cursor;
                let _ = &shared;
            });
        }
    });
    n
}

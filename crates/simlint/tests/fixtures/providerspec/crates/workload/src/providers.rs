//! Known-bad fixture: provider-matrix modules inherit the seed-provenance
//! and float-merge rules — a per-provider stream seeded from scheduling
//! state and an order-sensitive volume reduction are both flagged.

pub fn provider_stream(rng: &Rng, worker_idx: u64) -> Rng {
    simcore::par::household_stream(rng, worker_idx)
}

pub fn clean_stream(rng: &Rng, household: u64) -> Rng {
    simcore::par::household_stream(rng, household)
}

pub struct ProviderVolume {
    up_bytes: f64,
}

impl Accumulate for ProviderVolume {
    fn merge(&mut self, other: &ProviderVolume) {
        self.up_bytes += other.up_bytes;
    }
}

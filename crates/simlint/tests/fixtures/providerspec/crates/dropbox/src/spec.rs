//! Known-bad fixture: the provider-spec module lives in a sim crate, so
//! the strict determinism tier applies to it like any other — a hash-map
//! spec registry iterated in order-undefined fashion is flagged.

use std::collections::HashMap;

pub struct SpecRegistry {
    specs: HashMap<String, u64>,
}

impl SpecRegistry {
    pub fn slugs(&self) -> Vec<String> {
        // Registry iteration: nondeterministic order.
        self.specs.keys().cloned().collect()
    }

    pub fn chunk_bytes(&self, slug: &str) -> Option<u64> {
        // Lookups alone are not flagged.
        self.specs.get(slug).copied()
    }
}

//! Fixture: a reason-less annotation is malformed (`allow-syntax`) and
//! does NOT suppress the underlying violation — suppressions are never
//! silent.

use std::time::Instant;

pub fn profiled_section() -> Instant {
    // simlint: allow(wall-clock)
    Instant::now()
}

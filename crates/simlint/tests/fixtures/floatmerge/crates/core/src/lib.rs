//! Known-bad fixture: order-sensitive f64 reductions in merge paths.
//! `BadAcc` accumulates with `+=` (its result depends on merge order),
//! `FoldAcc` re-sums a vector inside a merge-named method; `GoodAcc`
//! routes through `OrderlessSum` and `PinnedAcc` documents why its order
//! is fixed.

pub struct BadAcc {
    sum: f64,
}

impl Accumulate for BadAcc {
    fn merge(&mut self, other: &BadAcc) {
        self.sum += other.sum;
    }
}

pub struct FoldAcc {
    parts: Vec<f64>,
    total: f64,
}

impl FoldAcc {
    pub fn merge_totals(&mut self) {
        self.total = self.parts.iter().sum::<f64>();
    }
}

pub struct GoodAcc {
    sum: OrderlessSum,
}

impl Accumulate for GoodAcc {
    fn merge(&mut self, other: &GoodAcc) {
        self.sum.merge(&other.sum);
    }
}

pub struct PinnedAcc {
    sum: f64,
}

impl Accumulate for PinnedAcc {
    fn merge(&mut self, other: &PinnedAcc) {
        // simlint: allow(float-merge) — fixture: drained in canonical slot order
        self.sum += other.sum;
    }
}

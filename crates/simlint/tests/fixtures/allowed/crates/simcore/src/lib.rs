//! Fixture: a violation suppressed by a well-formed, justified
//! annotation. The report must list it under `allowed`, not `violations`.

use std::time::Instant;

pub fn profiled_section() -> Instant {
    // simlint: allow(wall-clock) — coarse self-profiling only; the value never reaches simulation state or serialized output
    Instant::now()
}

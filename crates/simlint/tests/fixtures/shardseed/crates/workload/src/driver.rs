//! Known-bad fixture: a household seed stream derived from scheduling
//! state. The worker index leaks into the fork label, so the output
//! depends on `--jobs` — exactly what the shard-seed rule exists to stop.

pub fn bad_stream(rng: &Rng, worker_idx: u64) -> Rng {
    rng.fork(worker_idx)
}

pub fn good_stream(rng: &Rng, household: u64) -> Rng {
    // Stable shard identity: fine.
    rng.fork_named("households").fork(household)
}

pub fn annotated(rng: &Rng, job_salt: u64) -> Rng {
    // simlint: allow(shard-seed) — fixture: pretend this is identity-derived
    rng.fork(job_salt)
}

//! Known-bad fixture: wall-clock reads and a thread spawn in a
//! simulation crate.

use std::time::{Instant, SystemTime};

pub fn bad_timestamp() -> u128 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}

pub fn bad_stopwatch() -> Instant {
    Instant::now()
}

pub fn bad_parallelism() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}

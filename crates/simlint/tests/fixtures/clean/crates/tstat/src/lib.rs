//! Known-good fixture: everything here satisfies every rule family.

use std::collections::BTreeMap;

pub struct Monitor {
    flows: BTreeMap<u64, u64>,
}

impl Monitor {
    pub fn tick(&mut self, now: u64) {
        // Ordered iteration is fine, and so are pure lookups.
        for (_k, v) in self.flows.iter() {
            let _ = v + now;
        }
        let _ = self.flows.get(&now);
    }
}

pub struct Rec {
    old: u64,
    fresh: u64,
}

impl ToJson for Rec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("old", self.old.to_json()),
            ("fresh", self.fresh.to_json()),
        ])
    }
}

impl FromJson for Rec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Rec {
            old: v.field_or("old", 0)?,
            // New field, read with a default: the back-compat contract.
            fresh: v.field_or("fresh", 0)?,
        })
    }
}

#[cfg(test)]
mod tests {
    // Test code may use wall clocks, threads and hash maps freely.
    use std::collections::HashMap;

    #[test]
    fn exempt() {
        let t = std::time::Instant::now();
        let m: HashMap<u32, u32> = HashMap::new();
        for _ in m.iter() {}
        let _ = t;
        let _ = std::thread::spawn(|| ()).join().unwrap();
    }
}

//! Known-bad fixture: hash-map iteration inside a simulation crate
//! (strict tier — flagged whether or not it reaches emission).

use std::collections::{HashMap, HashSet};

pub struct Monitor {
    flows: HashMap<u64, u64>,
}

impl Monitor {
    pub fn evict(&mut self) -> Vec<u64> {
        // Field iteration: nondeterministic order.
        self.flows.keys().copied().collect()
    }

    pub fn lookup(&self, k: u64) -> Option<u64> {
        // Lookups alone are not flagged.
        self.flows.get(&k).copied()
    }
}

pub fn local_iteration() -> u64 {
    let tags: HashSet<u64> = HashSet::new();
    let mut acc = 0;
    for t in &tags {
        acc += t;
    }
    acc
}

//! Known-bad fixture: allow annotations must suppress something to be
//! legal. `live`'s annotation covers a real wall-clock read; `stale`'s
//! covers nothing (the clock read it excused is gone) and is flagged;
//! `pinned` shows the escape hatch — a stale annotation kept on purpose
//! needs its own `allow(stale-allow)` justification.

pub fn live() -> u64 {
    // simlint: allow(wall-clock) — fixture: justified self-profiling read
    let t = std::time::Instant::now();
    t.elapsed().as_secs()
}

// simlint: allow(wall-clock) — fixture: the clock read below was deleted
pub fn stale() -> u64 {
    7
}

// simlint: allow(stale-allow) — fixture: annotation kept for a pending revert
// simlint: allow(panic-path) — fixture: the unwrap was removed
pub fn pinned() -> u64 {
    9
}

//! Fixture: panics in a fault-recovery path.

pub fn resume_transfer(state: Option<u64>, bytes: Result<u64, String>) -> u64 {
    let s = state.unwrap();
    let b = bytes.expect("transfer bytes");
    s + b
}

pub fn resume_checked(state: Option<u64>) -> Option<u64> {
    // Proper propagation is fine.
    state.map(|s| s + 1)
}

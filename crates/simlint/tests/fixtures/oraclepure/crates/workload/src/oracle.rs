//! Known-bad oracle: reaches back into the run it is supposed to judge.

pub fn check(audit: &mut SyncAudit) -> Vec<Violation> {
    // Mutating the ledger mid-check "fixes" the evidence.
    audit.repair();
    let out: &mut Vec<Violation> = &mut audit.scratch;
    out.clear();
    Vec::new()
}

pub fn score(audit: &SyncAudit) -> usize {
    // Shared borrows and owned `mut` locals are fine.
    let mut n = 0;
    for c in audit.commits() {
        n += c.chunks.len();
    }
    n
}

#[cfg(test)]
mod tests {
    // Test code may mutate freely.
    fn build() {
        let v = &mut Vec::<u8>::new();
        v.push(1);
    }
}

//! A justified exception: the trace export needs an owned copy.

pub fn export(ds: &crate::Dataset) -> Vec<u64> {
    // simlint: allow(full-materialize) — export needs an owned copy to anonymise
    ds.flows.clone()
}

//! The declared compatibility view: whole-vector iteration is this
//! file's purpose, so the `full-materialize` rule exempts it.

pub fn materialised_view(flows: &super::Dataset) -> u64 {
    flows.flows.iter().sum()
}

//! Known-bad fixture: analysis code re-scanning the materialised flow
//! vector instead of streaming through the pipeline.

pub struct Dataset {
    pub flows: Vec<u64>,
}

pub fn rescans(ds: &Dataset) -> u64 {
    let mut n = 0;
    for f in &ds.flows {
        n += f;
    }
    n + ds.flows.iter().count() as u64
}

pub fn single_pass_access_is_fine(ds: &Dataset) -> u64 {
    ds.flows.len() as u64
}

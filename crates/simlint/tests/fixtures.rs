//! Fixture-based self-tests: each known-bad tree must produce exactly the
//! expected findings under the workspace configuration, and the known-good
//! tree must pass clean. The fixtures mirror the real layout
//! (`crates/<name>/src/...`), so [`simlint::Options::workspace`] applies
//! unchanged — the same configuration the verify gate runs.

use simlint::{Options, Report};
use std::path::PathBuf;

fn lint(fixture: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    simlint::run(&root, &Options::workspace()).expect("fixture tree readable")
}

fn rules(report: &Report) -> Vec<&str> {
    report.violations.iter().map(|v| v.rule.as_str()).collect()
}

#[test]
fn clean_fixture_passes() {
    let r = lint("clean");
    assert!(r.ok(), "expected clean, got: {:?}", r.violations);
    assert!(r.allowed.is_empty());
    assert!(r.files_scanned >= 2);
}

#[test]
fn wallclock_fixture_fails() {
    let r = lint("wallclock");
    // The thread spawn in the same fixture is the par-exec rule's beat.
    assert_eq!(rules(&r), ["wall-clock", "wall-clock", "par-exec"]);
    let msgs: Vec<&str> = r.violations.iter().map(|v| v.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("SystemTime::now")));
    assert!(msgs.iter().any(|m| m.contains("Instant::now")));
    assert!(msgs.iter().any(|m| m.contains("thread::spawn")));
}

#[test]
fn parexec_fixture_fails_outside_the_executor_only() {
    let r = lint("parexec");
    // Sorted by file: the executor file's unjustified Mutex first, then
    // the sim crate's thread::spawn / thread::scope.
    assert_eq!(
        rules(&r),
        ["par-exec", "par-exec", "par-exec"],
        "{:?}",
        r.violations
    );
    assert!(r.violations[0].file.ends_with("crates/simcore/src/par.rs"));
    assert!(r.violations[0].message.contains("`Mutex`"));
    assert!(r.violations[1].file.ends_with("crates/workload/src/lib.rs"));
    assert!(r.violations[1].message.contains("thread::spawn"));
    assert!(r.violations[1].message.contains("simcore::par"));
    assert!(r.violations[2].message.contains("thread::scope"));
    // The annotated scheduling cursor is suppressed, not silently passed.
    assert_eq!(r.allowed.len(), 1, "{:?}", r.allowed);
    assert_eq!(r.allowed[0].rule, "par-exec");
    assert!(r.allowed[0].reason.contains("scheduling"));
}

#[test]
fn shardseed_fixture_flags_scheduling_state_derivation() {
    let r = lint("shardseed");
    assert_eq!(rules(&r), ["shard-seed"], "{:?}", r.violations);
    assert!(r.violations[0]
        .file
        .ends_with("crates/workload/src/driver.rs"));
    assert!(r.violations[0].message.contains("`worker_idx`"));
    assert!(r.violations[0].message.contains("stable shard identity"));
    // The annotated derivation is suppressed with its justification, not
    // silently passed; the identity-derived stream is simply clean.
    assert_eq!(r.allowed.len(), 1, "{:?}", r.allowed);
    assert_eq!(r.allowed[0].rule, "shard-seed");
    assert!(r.allowed[0].reason.contains("identity"));
}

#[test]
fn mapiter_sim_fixture_fails_strict() {
    let r = lint("mapiter_sim");
    assert_eq!(rules(&r), ["map-iter", "map-iter"], "{:?}", r.violations);
    assert!(r.violations[0].message.contains("flows"));
    assert!(r.violations[1].message.contains("tags"));
}

#[test]
fn mapiter_emit_fixture_flags_only_emission_reaching() {
    let r = lint("mapiter_emit");
    assert_eq!(rules(&r), ["map-iter"], "{:?}", r.violations);
    assert!(r.violations[0].message.contains("samples"));
    assert!(r.violations[0].message.contains("emission"));
}

#[test]
fn materialize_fixture_flags_rescans_outside_the_view() {
    let r = lint("materialize");
    assert_eq!(
        rules(&r),
        ["full-materialize", "full-materialize"],
        "{:?}",
        r.violations
    );
    // Sorted by line: the `for` loop first, then `.flows.iter()`.
    assert!(r.violations[0].file.ends_with("crates/core/src/lib.rs"));
    assert!(r.violations[0].message.contains("`for` loop"));
    assert!(r.violations[1].message.contains("`.flows.iter()`"));
    // The compatibility view is exempt; the annotated export is
    // suppressed with its justification, not silently passed.
    assert_eq!(r.allowed.len(), 1, "{:?}", r.allowed);
    assert_eq!(r.allowed[0].rule, "full-materialize");
    assert!(r.allowed[0].reason.contains("anonymise"));
}

#[test]
fn oraclepure_fixture_flags_mutable_borrows() {
    let r = lint("oraclepure");
    assert_eq!(
        rules(&r),
        ["oracle-pure", "oracle-pure"],
        "{:?}",
        r.violations
    );
    assert!(r.violations[0]
        .file
        .ends_with("crates/workload/src/oracle.rs"));
    assert!(r.violations[0].message.contains("read-only"));
    // The `&self` scorer and the test module are clean.
    assert!(r.allowed.is_empty());
}

#[test]
fn allowed_fixture_suppresses_with_justification() {
    let r = lint("allowed");
    assert!(r.ok(), "justified allow must suppress: {:?}", r.violations);
    assert_eq!(r.allowed.len(), 1);
    assert_eq!(r.allowed[0].rule, "wall-clock");
    assert!(r.allowed[0].reason.contains("self-profiling"));
}

#[test]
fn badallow_fixture_reports_both_problems() {
    let r = lint("badallow");
    assert_eq!(
        rules(&r),
        ["allow-syntax", "wall-clock"],
        "{:?}",
        r.violations
    );
    assert!(r.allowed.is_empty(), "malformed allow must not suppress");
}

#[test]
fn hermetic_fixture_fails() {
    let r = lint("hermetic");
    let mut got = rules(&r);
    got.sort();
    assert_eq!(
        got,
        [
            "extern-crate",
            "non-workspace-dep",
            "non-workspace-dep",
            "non-workspace-dep",
            "process-spawn"
        ],
        "{:?}",
        r.violations
    );
}

#[test]
fn panic_fixture_fails() {
    let r = lint("panic");
    assert_eq!(
        rules(&r),
        ["panic-path", "panic-path"],
        "{:?}",
        r.violations
    );
    assert!(r.violations[0].message.contains("unwrap"));
    assert!(r.violations[1].message.contains("expect"));
}

#[test]
fn schema_fixture_flags_only_strict_new_field() {
    let r = lint("schema");
    assert_eq!(rules(&r), ["schema-drift"], "{:?}", r.violations);
    assert!(r.violations[0].message.contains("FixRec"));
    assert!(r.violations[0].message.contains("fresh"));
}

#[test]
fn reports_are_deterministic_and_machine_readable() {
    let a = lint("hermetic");
    let b = lint("hermetic");
    let ja = simcore::json::to_string(&a.to_json());
    let jb = simcore::json::to_string(&b.to_json());
    assert_eq!(ja, jb, "report serialisation must be run-independent");
    assert!(ja.contains("\"counts\""));
    assert!(ja.contains("\"files_scanned\""));
}

#[test]
fn taint_fixture_resolves_aliases_and_crosses_crates() {
    let r = lint("taint");
    assert_eq!(
        rules(&r),
        ["taint-flow", "shard-seed", "shard-seed"],
        "{:?}",
        r.violations
    );
    // Emission leg: a scheduling-derived value is serialised.
    assert!(r.violations[0].file.ends_with("crates/core/src/report.rs"));
    assert!(r.violations[0].message.contains("`worker_idx`"));
    assert_eq!(r.violations[0].pass, "taint");
    // Cross-crate leg: the taint reaches `fork` two crates away, through
    // `workload::wrap` — only the param-flow fixpoint can see it.
    assert!(r.violations[1].file.ends_with("crates/dropbox/src/lib.rs"));
    assert!(r.violations[1].message.contains("`thread_no`"));
    assert_eq!(r.violations[1].symbol, "workload::wrap");
    // Aliased leg: `use ... household_stream as stream` must not hide the
    // seed constructor; provenance names the resolved symbol.
    assert!(r.violations[2].file.ends_with("crates/workload/src/lib.rs"));
    assert!(r.violations[2].message.contains("`worker_idx`"));
    assert!(r.violations[2].message.contains("stable shard identity"));
    assert_eq!(r.violations[2].symbol, "simcore::par::household_stream");
    // Identity-derived streams are clean; the annotated one is suppressed.
    assert_eq!(r.allowed.len(), 1, "{:?}", r.allowed);
    assert_eq!(r.allowed[0].rule, "shard-seed");
}

#[test]
fn providerspec_fixture_holds_new_provider_modules_to_sim_rules() {
    // The provider-matrix refactor added `dropbox/src/spec.rs` and
    // provider modules under `workload/` — both sim crates, so the strict
    // tier (map-iter, seed provenance, float-merge) covers them with no
    // configuration change.
    let r = lint("providerspec");
    let mut found = rules(&r);
    found.sort_unstable();
    assert_eq!(
        found,
        ["float-merge", "map-iter", "shard-seed"],
        "{:?}",
        r.violations
    );
    let by_rule = |rule: &str| {
        r.violations
            .iter()
            .find(|v| v.rule == rule)
            .unwrap_or_else(|| panic!("missing {rule}"))
    };
    assert!(by_rule("map-iter")
        .file
        .ends_with("crates/dropbox/src/spec.rs"));
    assert!(by_rule("map-iter").message.contains("specs"));
    assert!(by_rule("shard-seed")
        .file
        .ends_with("crates/workload/src/providers.rs"));
    assert!(by_rule("shard-seed").message.contains("`worker_idx`"));
    assert!(by_rule("float-merge")
        .file
        .ends_with("crates/workload/src/providers.rs"));
    assert!(by_rule("float-merge").message.contains("up_bytes"));
    // The household-identity stream is clean, no suppressions involved.
    assert!(r.allowed.is_empty(), "{:?}", r.allowed);
}

#[test]
fn floatmerge_fixture_flags_order_sensitive_reductions() {
    let r = lint("floatmerge");
    assert_eq!(
        rules(&r),
        ["float-merge", "float-merge"],
        "{:?}",
        r.violations
    );
    // Sorted by line: the `+=` in `Accumulate::merge`, then the re-sum in
    // a merge-named method.
    assert!(r.violations[0].message.contains("`sum +=`"));
    assert_eq!(r.violations[0].symbol, "Accumulate for BadAcc::merge");
    assert!(r.violations[1].message.contains(".sum::<f64>()"));
    assert!(r.violations[1].symbol.contains("FoldAcc"));
    assert_eq!(r.violations[0].pass, "float");
    // `OrderlessSum` routing is clean; the annotated `+=` is suppressed.
    assert_eq!(r.allowed.len(), 1, "{:?}", r.allowed);
    assert_eq!(r.allowed[0].rule, "float-merge");
    assert!(r.allowed[0].reason.contains("slot order"));
}

#[test]
fn staleallow_fixture_flags_suppressions_of_nothing() {
    let r = lint("staleallow");
    assert_eq!(rules(&r), ["stale-allow"], "{:?}", r.violations);
    assert!(r.violations[0].message.contains("wall-clock"));
    assert!(r.violations[0].message.contains("suppresses no violations"));
    assert_eq!(r.violations[0].pass, "allow");
    // The live annotation suppresses a real read; the deliberately-kept
    // stale annotation is itself excused by an allow(stale-allow).
    let mut allowed: Vec<&str> = r.allowed.iter().map(|a| a.rule.as_str()).collect();
    allowed.sort();
    assert_eq!(allowed, ["stale-allow", "wall-clock"], "{:?}", r.allowed);
}

#[test]
fn report_json_carries_rule_provenance() {
    let r = lint("taint");
    let j = simcore::json::to_string(&r.to_json());
    assert!(j.contains("\"pass\":\"taint\""));
    assert!(j.contains("\"symbol\":\"simcore::par::household_stream\""));
}

#[test]
fn incremental_cache_reuses_and_invalidates() {
    // Copy a fixture into a scratch tree so mtime/content changes don't
    // touch the committed fixtures.
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/taint");
    let scratch = std::env::temp_dir().join(format!("simlint-cache-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&src, &scratch);
    let cache = scratch.join("cache.json");

    let opts = Options::workspace();
    let (cold, s1) = simlint::run_with_cache(&scratch, &opts, &cache).expect("cold run");
    assert_eq!(s1.hits, 0);
    assert!(s1.misses >= 5, "{s1:?}");

    let (warm, s2) = simlint::run_with_cache(&scratch, &opts, &cache).expect("warm run");
    assert_eq!(s2.misses, 0, "{s2:?}");
    assert_eq!(s2.hits, s1.misses);
    assert_eq!(
        simcore::json::to_string(&cold.to_json()),
        simcore::json::to_string(&warm.to_json()),
        "cached facts must reproduce the report byte-for-byte"
    );

    // Edit one file: exactly that file re-analyses, and the cross-file
    // passes see the change (the aliased violation disappears).
    let edited = scratch.join("crates/workload/src/lib.rs");
    let text = std::fs::read_to_string(&edited).unwrap();
    std::fs::write(
        &edited,
        text.replace("stream(rng, worker_idx)", "stream(rng, household_id)"),
    )
    .unwrap();
    let (third, s3) = simlint::run_with_cache(&scratch, &opts, &cache).expect("edited run");
    assert_eq!(s3.misses, 1, "{s3:?}");
    assert_eq!(s3.hits, s1.misses - 1);
    assert!(
        third.violations.len() < cold.violations.len(),
        "edit must flow through the cached run: {:?}",
        third.violations
    );
    let _ = std::fs::remove_dir_all(&scratch);
}

fn copy_tree(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

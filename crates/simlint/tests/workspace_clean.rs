//! The real workspace must pass its own lint: every pre-existing
//! violation is either fixed or carries a justified allow annotation.
//! This is the same check `scripts/verify.sh` gates on.

use simlint::Options;
use std::path::PathBuf;

#[test]
fn workspace_passes_simlint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = simlint::run(&root, &Options::workspace()).expect("workspace readable");
    assert!(
        report.ok(),
        "workspace has simlint violations:\n{}",
        report.render()
    );
    // The three RwLock-poisoning expects in the chunk store are the only
    // sanctioned suppressions today; growth here needs justification.
    assert!(
        report.allowed.len() <= 8,
        "suppression creep: {} allowed sites\n{}",
        report.allowed.len(),
        report.render()
    );
    // Sanity: the scan actually covered the tree.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}

//! Client-side resolution with rotation and TTL caching.
//!
//! Dropbox "distributes the load among its servers both by rotating IP
//! addresses in DNS responses and by providing different lists of DNS
//! names to each client" (Sec. 4.2). The alias lists are handled by
//! [`crate::DnsDirectory::storage_aliases_for`]; this module adds the
//! response-rotation half: load-balanced names (`client-lb`) answer from a
//! pool in round-robin order, and a client-side stub resolver caches the
//! answer for the record TTL, re-querying (and landing on another pool
//! member) after expiry.

use crate::{DnsDirectory, META_POOL};
use nettrace::Ipv4;
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// TTL of Dropbox A records (the deployment used short TTLs to keep
/// rotation effective).
pub const RECORD_TTL: SimDuration = SimDuration::from_secs(300);

/// Authoritative-side rotation state: which pool member answers next.
#[derive(Clone, Debug, Default)]
pub struct RotatingAuthority {
    counters: BTreeMap<String, usize>,
}

impl RotatingAuthority {
    /// New authority with fresh rotation counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Answer a query. Load-balanced names rotate over their pool; every
    /// other name resolves statically through the directory.
    pub fn answer(&mut self, dir: &DnsDirectory, name: &str) -> Option<Ipv4> {
        if name == "client-lb.dropbox.com" {
            let i = self.counters.entry(name.to_owned()).or_insert(0);
            let member = format!("client{}.dropbox.com", (*i % META_POOL) + 1);
            *i += 1;
            dir.resolve(&member)
        } else {
            dir.resolve(name)
        }
    }
}

/// A client's stub resolver with TTL caching.
#[derive(Clone, Debug, Default)]
pub struct StubResolver {
    cache: BTreeMap<String, (Ipv4, SimTime)>,
}

impl StubResolver {
    /// New empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve `name` at time `now`, consulting the cache first. Returns
    /// `(address, fresh_lookup)`; a fresh lookup is what a probe on the
    /// access link would see as DNS traffic.
    pub fn resolve(
        &mut self,
        authority: &mut RotatingAuthority,
        dir: &DnsDirectory,
        name: &str,
        now: SimTime,
    ) -> Option<(Ipv4, bool)> {
        if let Some(&(ip, expires)) = self.cache.get(name) {
            if now <= expires {
                return Some((ip, false));
            }
        }
        let ip = authority.answer(dir, name)?;
        self.cache.insert(name.to_owned(), (ip, now + RECORD_TTL));
        Some((ip, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_balanced_name_rotates_over_the_meta_pool() {
        let dir = DnsDirectory::new();
        let mut auth = RotatingAuthority::new();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..META_POOL * 2 {
            seen.insert(auth.answer(&dir, "client-lb.dropbox.com").unwrap());
        }
        assert_eq!(seen.len(), META_POOL, "rotation covers the whole pool");
    }

    #[test]
    fn static_names_stay_fixed() {
        let dir = DnsDirectory::new();
        let mut auth = RotatingAuthority::new();
        let a = auth.answer(&dir, "dl-client7.dropbox.com").unwrap();
        let b = auth.answer(&dir, "dl-client7.dropbox.com").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stub_resolver_caches_until_ttl() {
        let dir = DnsDirectory::new();
        let mut auth = RotatingAuthority::new();
        let mut stub = StubResolver::new();
        let t0 = SimTime::from_secs(1_000);
        let (ip1, fresh1) = stub
            .resolve(&mut auth, &dir, "client-lb.dropbox.com", t0)
            .unwrap();
        assert!(fresh1);
        // Within the TTL: cached, same answer, no wire lookup.
        let (ip2, fresh2) = stub
            .resolve(
                &mut auth,
                &dir,
                "client-lb.dropbox.com",
                t0 + SimDuration::from_secs(60),
            )
            .unwrap();
        assert!(!fresh2);
        assert_eq!(ip1, ip2);
        // After expiry: fresh lookup, rotated answer.
        let (ip3, fresh3) = stub
            .resolve(
                &mut auth,
                &dir,
                "client-lb.dropbox.com",
                t0 + SimDuration::from_secs(400),
            )
            .unwrap();
        assert!(fresh3);
        assert_ne!(ip1, ip3, "rotation moved to the next pool member");
    }

    #[test]
    fn unknown_names_fail() {
        let dir = DnsDirectory::new();
        let mut auth = RotatingAuthority::new();
        let mut stub = StubResolver::new();
        assert!(stub
            .resolve(&mut auth, &dir, "nope.example.org", SimTime::EPOCH)
            .is_none());
    }
}

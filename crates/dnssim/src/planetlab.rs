//! PlanetLab-style worldwide resolution experiment (Sec. 4.2.1).
//!
//! The paper resolved the Dropbox names from PlanetLab nodes in 13
//! countries on 6 continents and found that **the same address sets are
//! returned regardless of location** — i.e. Dropbox was a centralized,
//! single-region (U.S.) service with no geo-DNS. The simulated deployment
//! has the same property by construction; this module expresses the
//! experiment so it can be run and asserted by the harness.

use crate::DnsDirectory;
use nettrace::Ipv4;
use simcore::SimDuration;

/// A vantage node of the active experiment.
#[derive(Clone, Debug)]
pub struct PlanetLabNode {
    /// Country of the node.
    pub country: &'static str,
    /// Continent of the node.
    pub continent: &'static str,
    /// Round-trip time from the node to the U.S. data-centers.
    pub rtt_to_us: SimDuration,
}

/// The 13 countries / 6 continents of the paper's experiment, with
/// plausible RTTs to the U.S. East Coast.
pub fn nodes() -> Vec<PlanetLabNode> {
    fn n(country: &'static str, continent: &'static str, ms: u64) -> PlanetLabNode {
        PlanetLabNode {
            country,
            continent,
            rtt_to_us: SimDuration::from_millis(ms),
        }
    }
    vec![
        n("US", "North America", 20),
        n("Canada", "North America", 35),
        n("Brazil", "South America", 140),
        n("Chile", "South America", 170),
        n("UK", "Europe", 85),
        n("Italy", "Europe", 110),
        n("Netherlands", "Europe", 90),
        n("Germany", "Europe", 95),
        n("South Africa", "Africa", 220),
        n("Japan", "Asia", 160),
        n("China", "Asia", 210),
        n("India", "Asia", 230),
        n("Australia", "Oceania", 200),
    ]
}

/// Result of resolving one name from one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Resolution {
    /// Node country.
    pub country: &'static str,
    /// Resolved address.
    pub ip: Ipv4,
}

/// Resolve `name` from every PlanetLab node.
///
/// The deployment has no geo-DNS, so all nodes obtain the same address —
/// the invariant the paper's experiment established.
pub fn resolve_worldwide(dir: &DnsDirectory, name: &str) -> Vec<Resolution> {
    nodes()
        .iter()
        .filter_map(|node| {
            dir.resolve(name).map(|ip| Resolution {
                country: node.country,
                ip,
            })
        })
        .collect()
}

/// Check the paper's conclusion for a set of names: every node sees the
/// same address set, i.e. the service is centralized.
pub fn is_centralized(dir: &DnsDirectory, names: &[&str]) -> bool {
    names.iter().all(|name| {
        let res = resolve_worldwide(dir, name);
        res.windows(2).all(|w| w[0].ip == w[1].ip)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_countries_six_continents() {
        let ns = nodes();
        assert_eq!(ns.len(), 13);
        let mut continents: Vec<&str> = ns.iter().map(|n| n.continent).collect();
        continents.sort_unstable();
        continents.dedup();
        assert_eq!(continents.len(), 6);
    }

    #[test]
    fn resolution_is_location_independent() {
        let dir = DnsDirectory::new();
        assert!(is_centralized(
            &dir,
            &[
                "client-lb.dropbox.com",
                "notify1.dropbox.com",
                "dl-client17.dropbox.com",
                "dl.dropbox.com",
            ]
        ));
    }

    #[test]
    fn every_node_gets_an_answer() {
        let dir = DnsDirectory::new();
        let res = resolve_worldwide(&dir, "client-lb.dropbox.com");
        assert_eq!(res.len(), 13);
    }
}

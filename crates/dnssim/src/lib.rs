//! DNS substrate for the simulated Dropbox deployment.
//!
//! Table 1 of the paper maps `dropbox.com` sub-domains to service roles;
//! this crate owns that mapping and the address plan behind it:
//!
//! * meta-data servers: `client-lb.dropbox.com` plus `clientX.dropbox.com`
//!   over a fixed pool of 10 addresses in the Dropbox data-center,
//! * notification servers: `notifyX.dropbox.com` over 20 addresses
//!   (plain HTTP, port 80),
//! * storage servers: more than 500 `dl-clientX.dropbox.com` aliases over
//!   more than 600 Amazon addresses; every device periodically receives a
//!   subset of aliases and rotates through it (Sec. 2.4),
//! * web (`www`), API (`api`, `api-content`), direct links (`dl`), web
//!   storage (`dl-web`), event logs (`d`) and back-traces (`dl-debugX`).
//!
//! The probe labels server addresses with the FQDN the client actually
//! resolved ("DNS to the Rescue"); [`DnsDirectory::reverse`] provides that
//! view. The PlanetLab experiment of Sec. 4.2.1 is reproduced by
//! [`planetlab::resolve_worldwide`], and [`resolver`] implements the
//! response-rotation + TTL-caching half of the load-balancing story.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod planetlab;
pub mod resolver;

use nettrace::Ipv4;
use simcore::Rng;
use std::collections::BTreeMap;

/// Functional role of a Dropbox server, mirroring Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ServerRole {
    /// `client-lb` / `clientX` — meta-data administration (Dropbox DC).
    MetaData,
    /// `notifyX` — notification long-poll servers (Dropbox DC, HTTP).
    Notification,
    /// `api` — API control (Dropbox DC).
    ApiControl,
    /// `www` — main web servers (Dropbox DC).
    Www,
    /// `d` — event-log collection (Dropbox DC).
    EventLog,
    /// `dl` — public direct-link downloads (Amazon).
    DirectLink,
    /// `dl-clientX` — client storage (Amazon).
    ClientStorage,
    /// `dl-debugX` — exception back-traces (Amazon).
    BackTrace,
    /// `dl-web` — web-interface storage (Amazon).
    WebStorage,
    /// `api-content` — API storage (Amazon).
    ApiStorage,
}

impl ServerRole {
    /// Whether the role is hosted on Amazon (storage side) or in the
    /// Dropbox-controlled data-center (control side).
    pub fn is_amazon(self) -> bool {
        matches!(
            self,
            ServerRole::DirectLink
                | ServerRole::ClientStorage
                | ServerRole::BackTrace
                | ServerRole::WebStorage
                | ServerRole::ApiStorage
        )
    }

    /// TCP port used by the service (everything is HTTPS except the
    /// notification protocol).
    pub fn port(self) -> u16 {
        match self {
            ServerRole::Notification => 80,
            _ => 443,
        }
    }
}

/// Number of meta-data server addresses (paper: "a fixed pool of 10").
pub const META_POOL: usize = 10;
/// Number of notification server addresses (paper: "a pool of 20").
pub const NOTIFY_POOL: usize = 20;
/// Number of `dl-clientX` storage aliases (paper: "more than 500").
pub const STORAGE_NAMES: usize = 620;
/// Number of Amazon storage addresses (paper: "more than 600").
pub const STORAGE_POOL: usize = 680;
/// Aliases handed to each device for rotation (Sec. 2.4).
pub const DEVICE_ALIAS_LIST: usize = 16;

/// The authoritative name ↔ address directory of the simulated deployment.
#[derive(Clone, Debug)]
pub struct DnsDirectory {
    forward: BTreeMap<String, Ipv4>,
    reverse: BTreeMap<Ipv4, String>,
}

/// Dropbox-controlled address block (control plane).
fn dropbox_ip(idx: u32) -> Ipv4 {
    // 199.47.216.0/22-like block.
    Ipv4::new(199, 47, 216 + (idx / 256) as u8, (idx % 256) as u8)
}

/// Amazon EC2/S3-like address block (storage plane).
fn amazon_ip(idx: u32) -> Ipv4 {
    Ipv4::new(107, 22, (idx / 256) as u8, (idx % 256) as u8)
}

impl DnsDirectory {
    /// Build the full deployment directory.
    pub fn new() -> Self {
        let mut forward = BTreeMap::new();
        let mut add = |name: String, ip: Ipv4| {
            forward.insert(name, ip);
        };

        // Control plane (Dropbox DC).
        add("client-lb.dropbox.com".into(), dropbox_ip(0));
        for i in 0..META_POOL {
            add(format!("client{}.dropbox.com", i + 1), dropbox_ip(i as u32));
        }
        for i in 0..NOTIFY_POOL {
            add(
                format!("notify{}.dropbox.com", i + 1),
                dropbox_ip(32 + i as u32),
            );
        }
        add("api.dropbox.com".into(), dropbox_ip(64));
        add("www.dropbox.com".into(), dropbox_ip(65));
        add("d.dropbox.com".into(), dropbox_ip(66));

        // Storage plane (Amazon). `dl-clientX` aliases spread over the
        // storage pool; several names can share an address, and the pool is
        // larger than the alias count because `dl`, `dl-web`, `api-content`
        // and the web front also live there.
        for i in 0..STORAGE_NAMES {
            // Deterministic spread reaching the whole pool.
            let ip_idx = ((i as u32) * 7919) % (STORAGE_POOL as u32 - 40);
            add(format!("dl-client{}.dropbox.com", i + 1), amazon_ip(ip_idx));
        }
        add("dl.dropbox.com".into(), amazon_ip(STORAGE_POOL as u32 - 1));
        add(
            "dl-web.dropbox.com".into(),
            amazon_ip(STORAGE_POOL as u32 - 2),
        );
        add(
            "api-content.dropbox.com".into(),
            amazon_ip(STORAGE_POOL as u32 - 3),
        );
        for i in 0..4 {
            add(
                format!("dl-debug{}.dropbox.com", i + 1),
                amazon_ip(STORAGE_POOL as u32 - 10 - i),
            );
        }

        let reverse = forward.iter().map(|(n, &ip)| (ip, n.clone())).collect();
        DnsDirectory { forward, reverse }
    }

    /// Register an additional name → address mapping (reverse included).
    /// Used to overlay non-Dropbox provider deployments on the directory;
    /// the Dropbox zone of [`DnsDirectory::new`] is never touched.
    pub fn register(&mut self, name: String, ip: Ipv4) {
        self.reverse.insert(ip, name.clone());
        self.forward.insert(name, ip);
    }

    /// Resolve a name to its address (what the client's resolver returns;
    /// identical worldwide, see [`planetlab`]).
    pub fn resolve(&self, name: &str) -> Option<Ipv4> {
        self.forward.get(name).copied()
    }

    /// Reverse lookup used by the probe's DNS-labelling feature.
    pub fn reverse(&self, ip: Ipv4) -> Option<&str> {
        self.reverse.get(&ip).map(String::as_str)
    }

    /// Classify a fully-qualified domain name into its server role
    /// (Table 1). Names outside `dropbox.com` return `None`.
    pub fn role_of_name(name: &str) -> Option<ServerRole> {
        let host = name.strip_suffix(".dropbox.com")?;
        let role = if host == "client-lb"
            || (host.starts_with("client") && !host.starts_with("client-"))
        {
            ServerRole::MetaData
        } else if host.starts_with("notify") {
            ServerRole::Notification
        } else if host == "api" {
            ServerRole::ApiControl
        } else if host == "www" {
            ServerRole::Www
        } else if host == "d" {
            ServerRole::EventLog
        } else if host == "dl" {
            ServerRole::DirectLink
        } else if host.starts_with("dl-client") {
            ServerRole::ClientStorage
        } else if host.starts_with("dl-debug") {
            ServerRole::BackTrace
        } else if host == "dl-web" {
            ServerRole::WebStorage
        } else if host == "api-content" {
            ServerRole::ApiStorage
        } else {
            return None;
        };
        Some(role)
    }

    /// The meta-data server name a client uses for a given operation
    /// (commit-style commands go through `client-lb`, list-style through a
    /// `clientX`, Sec. 4.2.1 footnote).
    pub fn meta_name(&self, via_lb: bool, rng: &mut Rng) -> String {
        if via_lb {
            "client-lb.dropbox.com".to_owned()
        } else {
            format!("client{}.dropbox.com", rng.range_u64(1, META_POOL as u64))
        }
    }

    /// A notification server name for a new session.
    pub fn notify_name(&self, rng: &mut Rng) -> String {
        format!("notify{}.dropbox.com", rng.range_u64(1, NOTIFY_POOL as u64))
    }

    /// The alias list distributed to a device on a given day (Sec. 2.4:
    /// "a subset of those aliases are sent to clients regularly; clients
    /// rotate in the received lists").
    pub fn storage_aliases_for(&self, device_id: u64, day: u32) -> Vec<String> {
        let mut rng = Rng::new(device_id ^ ((day as u64) << 40) ^ 0x5707_a6e5);
        let idx = rng.sample_indices(STORAGE_NAMES, DEVICE_ALIAS_LIST);
        idx.into_iter()
            .map(|i| format!("dl-client{}.dropbox.com", i + 1))
            .collect()
    }

    /// Total number of distinct storage-plane addresses.
    pub fn storage_pool_size(&self) -> usize {
        let mut ips: Vec<Ipv4> = self
            .forward
            .iter()
            .filter(|(n, _)| Self::role_of_name(n).is_some_and(|r| r.is_amazon()))
            .map(|(_, &ip)| ip)
            .collect();
        ips.sort_unstable();
        ips.dedup();
        ips.len()
    }
}

impl Default for DnsDirectory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_roles_classified() {
        let cases = [
            ("client-lb.dropbox.com", ServerRole::MetaData),
            ("client7.dropbox.com", ServerRole::MetaData),
            ("notify3.dropbox.com", ServerRole::Notification),
            ("api.dropbox.com", ServerRole::ApiControl),
            ("www.dropbox.com", ServerRole::Www),
            ("d.dropbox.com", ServerRole::EventLog),
            ("dl.dropbox.com", ServerRole::DirectLink),
            ("dl-client42.dropbox.com", ServerRole::ClientStorage),
            ("dl-debug1.dropbox.com", ServerRole::BackTrace),
            ("dl-web.dropbox.com", ServerRole::WebStorage),
            ("api-content.dropbox.com", ServerRole::ApiStorage),
        ];
        for (name, role) in cases {
            assert_eq!(DnsDirectory::role_of_name(name), Some(role), "{name}");
        }
        assert_eq!(DnsDirectory::role_of_name("www.youtube.com"), None);
        assert_eq!(DnsDirectory::role_of_name("evil.example.org"), None);
    }

    #[test]
    fn amazon_vs_dropbox_split_matches_table1() {
        for (name, amazon) in [
            ("client-lb.dropbox.com", false),
            ("notify1.dropbox.com", false),
            ("dl-client1.dropbox.com", true),
            ("dl-web.dropbox.com", true),
            ("api-content.dropbox.com", true),
        ] {
            let role = DnsDirectory::role_of_name(name).unwrap();
            assert_eq!(role.is_amazon(), amazon, "{name}");
        }
    }

    #[test]
    fn notification_is_plain_http() {
        assert_eq!(ServerRole::Notification.port(), 80);
        assert_eq!(ServerRole::MetaData.port(), 443);
        assert_eq!(ServerRole::ClientStorage.port(), 443);
    }

    #[test]
    fn every_name_resolves_and_reverses() {
        let dir = DnsDirectory::new();
        for name in [
            "client-lb.dropbox.com",
            "client1.dropbox.com",
            "notify20.dropbox.com",
            "dl-client520.dropbox.com",
            "dl.dropbox.com",
        ] {
            let ip = dir.resolve(name).unwrap_or_else(|| panic!("{name}"));
            // Reverse gives *a* name at that address (aliases may share).
            assert!(dir.reverse(ip).is_some());
        }
        assert!(dir.resolve("dl-client621.dropbox.com").is_none());
    }

    #[test]
    fn storage_pool_exceeds_600_addresses() {
        let dir = DnsDirectory::new();
        let n = dir.storage_pool_size();
        assert!(n > 600, "storage pool too small: {n}");
    }

    #[test]
    fn alias_lists_rotate_daily() {
        let dir = DnsDirectory::new();
        let a = dir.storage_aliases_for(42, 0);
        let b = dir.storage_aliases_for(42, 1);
        let again = dir.storage_aliases_for(42, 0);
        assert_eq!(a.len(), DEVICE_ALIAS_LIST);
        assert_eq!(a, again, "alias list must be deterministic");
        assert_ne!(a, b, "alias list must rotate across days");
        for name in &a {
            assert!(dir.resolve(name).is_some());
        }
    }

    #[test]
    fn meta_name_pool() {
        let dir = DnsDirectory::new();
        let mut rng = Rng::new(3);
        assert_eq!(dir.meta_name(true, &mut rng), "client-lb.dropbox.com");
        for _ in 0..20 {
            let n = dir.meta_name(false, &mut rng);
            assert!(DnsDirectory::role_of_name(&n) == Some(ServerRole::MetaData));
            assert!(dir.resolve(&n).is_some());
        }
    }
}

//! Benchmarks of the fault-injection substrate: the overhead of the
//! fault-aware TCP path (clean profile vs lossy/reset profiles) and of a
//! small faulty vantage simulation end to end.

use bench::{BatchSize, Harness, Throughput};
use nettrace::{Endpoint, FlowKey, Ipv4};
use simcore::faults::{FaultPlan, FlowFaults};
use simcore::{Rng, SimDuration, SimTime};
use tcpmodel::{simulate_faulty, tls, Dialogue, Direction, Message, PathParams, TcpParams};

fn store_dialogue(chunks: u64, bytes: u32) -> Dialogue {
    let mut m = tls::handshake(
        "dl-client1.dropbox.com",
        "*.dropbox.com",
        SimDuration::from_millis(60),
    );
    for _ in 0..chunks {
        m.push(Message::simple(
            Direction::Up,
            SimDuration::from_millis(30),
            634 + bytes,
        ));
        m.push(Message::simple(
            Direction::Down,
            SimDuration::from_millis(90),
            309,
        ));
    }
    Dialogue::new(m)
}

fn key() -> FlowKey {
    FlowKey::new(
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
        Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
    )
}

fn path() -> PathParams {
    PathParams {
        inner_rtt: SimDuration::from_millis(10),
        outer_rtt: SimDuration::from_millis(90),
        jitter: 0.05,
        loss_up: 0.001,
        loss_down: 0.001,
        up_rate: None,
        down_rate: None,
    }
}

fn bench_faulty_simulate(c: &mut Harness) {
    let d = store_dialogue(10, 100_000);
    let cases: [(&str, Option<FlowFaults>); 3] = [
        ("clean_profile", None),
        (
            "extra_loss_3pct",
            Some(FlowFaults {
                extra_loss: 0.03,
                latency_spike: Some(SimDuration::from_millis(80)),
                reset_after_bytes: None,
            }),
        ),
        (
            "reset_mid_flow",
            Some(FlowFaults {
                extra_loss: 0.0,
                latency_spike: None,
                reset_after_bytes: Some(400_000),
            }),
        ),
    ];
    let mut g = c.group("tcpmodel_faulty");
    g.throughput(Throughput::Bytes(d.bytes_up() + d.bytes_down()));
    for (label, faults) in cases {
        g.bench_function(label, |b| {
            b.iter_batched(
                || (Rng::new(7), Vec::with_capacity(2_000)),
                |(mut rng, mut out)| {
                    simulate_faulty(
                        SimTime::from_secs(1),
                        key(),
                        &d,
                        &path(),
                        &TcpParams::era_2012_v1(),
                        faults.as_ref(),
                        &mut rng,
                        &mut out,
                    );
                    out
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_faulty_vantage(c: &mut Harness) {
    let mut config = workload::VantageConfig::paper(workload::VantageKind::Campus1, 0.008);
    config.days = 3;
    let clean = FaultPlan::none();
    let lossy = FaultPlan::lossy(7, config.days);
    let mut g = c.group("vantage");
    g.sample_size(10);
    g.bench_function("campus1_3d_clean", |b| {
        b.iter(|| {
            workload::simulate_vantage(
                std::hint::black_box(&config),
                dropbox::client::ClientVersion::V1_2_52,
                1,
                &clean,
            )
        })
    });
    g.bench_function("campus1_3d_lossy", |b| {
        b.iter(|| {
            workload::simulate_vantage(
                std::hint::black_box(&config),
                dropbox::client::ClientVersion::V1_2_52,
                1,
                &lossy,
            )
        })
    });
    g.finish();
}

fn main() {
    let mut c = Harness::new("faults");
    bench_faulty_simulate(&mut c);
    bench_faulty_vantage(&mut c);
    c.finish().expect("write benchmark results");
}

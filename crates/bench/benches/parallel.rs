//! Serial-vs-parallel capture benchmark: measures each shard of the paper
//! plan serially, then the whole plan at `--jobs 2` and `--jobs 4`, and
//! writes `BENCH_parallel.json`.
//!
//! Wall-clock speedup is hardware-bound (a 1-core container runs the
//! parallel schedule no faster than serial), so next to the measured wall
//! times the report records the **schedule speedup**: the makespan of the
//! executor's greedy LPT schedule computed from the measured per-shard
//! serial seconds. That figure is what the same run achieves on a machine
//! with at least `jobs` free cores, and it is hardware-independent.
//!
//! Knobs: `BENCH_PARALLEL_SCALE` (population scale, default 0.1).

use simcore::json::Json;
use std::time::Instant;
use workload::{simulate_shards, FaultPlan, ShardPlan};

/// Makespan of greedy list scheduling (claim-when-free, plan order) —
/// exactly `simcore::par::fork_join`'s worker behaviour — over measured
/// per-shard seconds.
fn schedule_makespan(shard_secs: &[f64], jobs: usize) -> f64 {
    let mut free = vec![0.0f64; jobs.max(1)];
    for &secs in shard_secs {
        let next = free
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
            .expect("at least one worker");
        *next += secs;
    }
    free.iter().fold(0.0f64, |acc, &t| acc.max(t))
}

fn main() {
    let scale: f64 = std::env::var("BENCH_PARALLEL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let seed = 2012u64;
    let plan = ShardPlan::paper();
    let faults = FaultPlan::none();

    // Per-shard serial seconds. This is also the --jobs 1 wall time: the
    // executor runs single-job plans inline on the calling thread.
    let mut shard_secs: Vec<f64> = Vec::new();
    let mut shard_rows: Vec<Json> = Vec::new();
    let t_serial = Instant::now();
    for shard in &plan.shards {
        let t = Instant::now();
        let out = shard.simulate(scale, seed, &faults);
        let secs = t.elapsed().as_secs_f64();
        eprintln!(
            "  shard {:<40} {:>8.2}s  ({} flows)",
            shard.label,
            secs,
            out.dataset.flows.len()
        );
        std::hint::black_box(&out);
        shard_secs.push(secs);
        shard_rows.push(Json::obj([
            ("label", Json::Str(shard.label.clone())),
            ("weight", Json::U64(shard.weight)),
            ("serial_seconds", Json::F64(secs)),
        ]));
    }
    let serial_secs = t_serial.elapsed().as_secs_f64();

    let cores = simcore::par::available_jobs();
    let mut job_rows: Vec<Json> = vec![Json::obj([
        ("jobs", Json::U64(1)),
        ("wall_seconds", Json::F64(serial_secs)),
        (
            "schedule_seconds",
            Json::F64(schedule_makespan(&shard_secs, 1)),
        ),
        ("schedule_speedup", Json::F64(1.0)),
    ])];
    println!(
        "\n{:<8}  {:>12}  {:>16}  {:>16}",
        "jobs", "wall", "schedule", "schedule speedup"
    );
    println!(
        "{:<8}  {:>11.2}s  {:>15.2}s  {:>16.2}",
        1, serial_secs, serial_secs, 1.0
    );
    for jobs in [2usize, 4] {
        let t = Instant::now();
        let outs = simulate_shards(&plan, scale, seed, &faults, jobs);
        let wall = t.elapsed().as_secs_f64();
        std::hint::black_box(&outs);
        let makespan = schedule_makespan(&shard_secs, jobs);
        let speedup = serial_secs / makespan;
        println!("{jobs:<8}  {wall:>11.2}s  {makespan:>15.2}s  {speedup:>16.2}");
        job_rows.push(Json::obj([
            ("jobs", Json::U64(jobs as u64)),
            ("wall_seconds", Json::F64(wall)),
            ("schedule_seconds", Json::F64(makespan)),
            ("schedule_speedup", Json::F64(speedup)),
        ]));
    }

    let json = Json::obj([
        ("label", Json::Str("parallel".into())),
        ("scale", Json::F64(scale)),
        ("seed", Json::U64(seed)),
        ("cores_available", Json::U64(cores as u64)),
        (
            "note",
            Json::Str(
                "one measured run per configuration; outputs are byte-identical at every \
                 jobs value (tests/parallel_identity.rs). schedule_seconds is the greedy-LPT \
                 makespan over the measured per-shard serial seconds — the wall time the same \
                 run achieves with >= jobs free cores; wall_seconds reflects this machine \
                 (cores_available may be 1)"
                    .into(),
            ),
        ),
        ("serial_seconds_total", Json::F64(serial_secs)),
        ("shards", Json::Arr(shard_rows)),
        ("jobs", Json::Arr(job_rows)),
    ]);
    std::fs::write("BENCH_parallel.json", json.dump() + "\n").expect("write benchmark results");
    println!("\nwrote BENCH_parallel.json");
}

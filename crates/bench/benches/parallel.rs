//! Serial-vs-parallel capture benchmark: measures every household
//! sub-shard of the paper plan serially, then the whole plan at `--jobs`
//! 2/4/8/16, and writes `BENCH_parallel.json`.
//!
//! Wall-clock speedup is hardware-bound (a 1-core container runs the
//! parallel schedule no faster than serial), so next to the measured wall
//! times the report records the **schedule speedup**: the makespan of the
//! executor's greedy LPT schedule computed from the measured per-sub-shard
//! serial seconds. That figure is what the same run achieves on a machine
//! with at least `jobs` free cores, and it is hardware-independent.
//!
//! Before the per-household decomposition the schedule was limited by its
//! largest indivisible unit — a whole capture, ~46% of the total — to
//! ~2.15x regardless of worker count. With each capture cut into up to
//! [`workload::shard::DEFAULT_SUB_SHARDS`] household ranges, the largest
//! unit shrinks by an order of magnitude and the schedule scales
//! near-linearly through 8 workers.
//!
//! Knobs: `BENCH_PARALLEL_SCALE` (population scale, default 0.1).

use simcore::json::Json;
use std::time::Instant;
use workload::driver::simulate_vantage_span;
use workload::{simulate_shards, FaultPlan, ShardPlan};

/// Makespan of greedy list scheduling (claim-when-free, schedule order) —
/// exactly `simcore::par::fork_join`'s worker behaviour — over measured
/// per-sub-shard seconds.
fn schedule_makespan(sub_shard_secs: &[f64], jobs: usize) -> f64 {
    let mut free = vec![0.0f64; jobs.max(1)];
    for &secs in sub_shard_secs {
        let next = free
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
            .expect("at least one worker");
        *next += secs;
    }
    free.iter().fold(0.0f64, |acc, &t| acc.max(t))
}

fn main() {
    let scale: f64 = std::env::var("BENCH_PARALLEL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let seed = 2012u64;
    let plan = ShardPlan::paper();
    let faults = FaultPlan::none();

    // Per-sub-shard serial seconds, in schedule (LPT) order. Their sum is
    // also the --jobs 1 wall time: the executor runs single-job plans
    // inline on the calling thread, and household-range spans partition
    // each capture exactly.
    let work = plan.household_shards(scale);
    let mut sub_shard_secs: Vec<f64> = Vec::new();
    let mut sub_shard_rows: Vec<Json> = Vec::new();
    let t_serial = Instant::now();
    for hs in &work {
        let shard = &plan.shards[hs.capture];
        let t = Instant::now();
        let out = simulate_vantage_span(
            &shard.config(scale),
            shard.version,
            shard.capture_seed(seed),
            &faults,
            hs.households.clone(),
        );
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(&out);
        sub_shard_secs.push(secs);
        sub_shard_rows.push(Json::obj([
            (
                "label",
                Json::Str(format!(
                    "{}[{}..{})",
                    shard.label, hs.households.start, hs.households.end
                )),
            ),
            ("weight", Json::U64(hs.weight)),
            ("serial_seconds", Json::F64(secs)),
            ("flows", Json::U64(out.flows.len() as u64)),
        ]));
    }
    let serial_secs = t_serial.elapsed().as_secs_f64();
    let max_unit = sub_shard_secs.iter().fold(0.0f64, |acc, &t| acc.max(t));
    eprintln!(
        "  {} sub-shards over {} captures; serial total {:.2}s, largest unit {:.2}s ({:.0}%)",
        work.len(),
        plan.shards.len(),
        serial_secs,
        max_unit,
        100.0 * max_unit / serial_secs.max(f64::MIN_POSITIVE)
    );

    let cores = simcore::par::available_jobs();
    let mut job_rows: Vec<Json> = vec![Json::obj([
        ("jobs", Json::U64(1)),
        ("wall_seconds", Json::F64(serial_secs)),
        (
            "schedule_seconds",
            Json::F64(schedule_makespan(&sub_shard_secs, 1)),
        ),
        ("schedule_speedup", Json::F64(1.0)),
    ])];
    println!(
        "\n{:<8}  {:>12}  {:>16}  {:>16}",
        "jobs", "wall", "schedule", "schedule speedup"
    );
    println!(
        "{:<8}  {:>11.2}s  {:>15.2}s  {:>16.2}",
        1, serial_secs, serial_secs, 1.0
    );
    for jobs in [2usize, 4, 8, 16] {
        let t = Instant::now();
        let outs = simulate_shards(&plan, scale, seed, &faults, jobs);
        let wall = t.elapsed().as_secs_f64();
        std::hint::black_box(&outs);
        let makespan = schedule_makespan(&sub_shard_secs, jobs);
        let speedup = serial_secs / makespan;
        println!("{jobs:<8}  {wall:>11.2}s  {makespan:>15.2}s  {speedup:>16.2}");
        job_rows.push(Json::obj([
            ("jobs", Json::U64(jobs as u64)),
            ("wall_seconds", Json::F64(wall)),
            ("schedule_seconds", Json::F64(makespan)),
            ("schedule_speedup", Json::F64(speedup)),
        ]));
    }

    let json = Json::obj([
        ("label", Json::Str("parallel".into())),
        ("scale", Json::F64(scale)),
        ("seed", Json::U64(seed)),
        ("sub_shards_per_capture", Json::U64(plan.sub_shards as u64)),
        ("cores_available", Json::U64(cores as u64)),
        (
            "note",
            Json::Str(
                "one measured run per configuration; outputs are byte-identical at every \
                 jobs and sub-shard value (tests/parallel_identity.rs). schedule_seconds is \
                 the greedy-LPT makespan over the measured per-household-sub-shard serial \
                 seconds — the wall time the same run achieves with >= jobs free cores; \
                 wall_seconds reflects this machine (cores_available may be 1)"
                    .into(),
            ),
        ),
        ("serial_seconds_total", Json::F64(serial_secs)),
        ("largest_unit_seconds", Json::F64(max_unit)),
        ("sub_shards", Json::Arr(sub_shard_rows)),
        ("jobs", Json::Arr(job_rows)),
    ]);
    std::fs::write("BENCH_parallel.json", json.dump() + "\n").expect("write benchmark results");
    println!("\nwrote BENCH_parallel.json");
}

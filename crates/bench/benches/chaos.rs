//! Chaos-soak throughput: scenarios per second through the audited
//! driver + convergence oracle (the `repro --chaos` inner loop), and the
//! oracle pass alone over a prebuilt ledger.

use bench::{Harness, Throughput};
use workload::{simulate_vantage_audited, FaultPlan, OutageKnobs, VantageConfig, VantageKind};

fn soak_config() -> VantageConfig {
    let mut config = VantageConfig::paper(VantageKind::Home1, 0.006);
    config.days = 5;
    config
}

/// One full scenario: audited capture under a chaos plan, then the
/// oracle sweep — what the soak harness does per seed.
fn run_scenario(config: &VantageConfig, seed: u64) -> usize {
    let faults = FaultPlan::chaos(seed, config.days, &OutageKnobs::default());
    let (_, audit) = simulate_vantage_audited(
        config,
        dropbox::client::ClientVersion::V1_2_52,
        2012,
        &faults,
    );
    workload::oracle::check(&audit).len()
}

fn bench_soak(c: &mut Harness) {
    const SEEDS: u64 = 4;
    let config = soak_config();
    let mut g = c.group("chaos_soak");
    g.sample_size(10);
    g.throughput(Throughput::Elements(SEEDS));
    g.bench_function("scenarios", |b| {
        b.iter(|| {
            let mut violations = 0usize;
            for seed in 1..=SEEDS {
                violations += run_scenario(std::hint::black_box(&config), seed);
            }
            assert_eq!(violations, 0, "soak bench must converge");
            violations
        })
    });
    g.finish();
}

fn bench_oracle(c: &mut Harness) {
    let config = soak_config();
    let faults = FaultPlan::chaos(1, config.days, &OutageKnobs::default());
    let (_, audit) = simulate_vantage_audited(
        &config,
        dropbox::client::ClientVersion::V1_2_52,
        2012,
        &faults,
    );
    let mut g = c.group("oracle");
    g.throughput(Throughput::Elements(audit.commit_count()));
    g.bench_function("check_commits", |b| {
        b.iter(|| workload::oracle::check(std::hint::black_box(&audit)).len())
    });
    g.finish();
}

fn main() {
    let mut c = Harness::new("chaos");
    bench_soak(&mut c);
    bench_oracle(&mut c);
    c.finish().expect("write benchmark results");
}

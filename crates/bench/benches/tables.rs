//! Table regeneration benchmarks: one benchmark per paper table, running
//! the full analysis over a cached scaled-down capture (the capture itself
//! is benchmarked once as `capture/run_capture`).

use bench::Harness;
use experiments::run::{run_capture, Capture};
use experiments::tables;
use experiments::CaptureSummary;
use std::sync::OnceLock;

/// Shared scaled-down capture used by all table/figure regeneration
/// benchmarks (building it once keeps `cargo bench` affordable).
pub fn capture() -> &'static Capture {
    static CAPTURE: OnceLock<Capture> = OnceLock::new();
    CAPTURE.get_or_init(|| run_capture(0.01, 2012, &workload::FaultPlan::none(), 1))
}

fn summary() -> &'static CaptureSummary {
    static SUMMARY: OnceLock<CaptureSummary> = OnceLock::new();
    SUMMARY.get_or_init(|| CaptureSummary::compute(capture()))
}

fn bench_capture(c: &mut Harness) {
    let mut g = c.group("capture");
    g.sample_size(10);
    g.bench_function("run_capture_scale_0.004", |b| {
        b.iter(|| run_capture(0.004, 7, &workload::FaultPlan::none(), 1))
    });
    g.finish();
}

fn bench_tables(c: &mut Harness) {
    let sum = summary();
    let mut g = c.group("tables");
    g.bench_function("table1", |b| b.iter(tables::table1));
    g.bench_function("table2", |b| b.iter(|| tables::table2(sum)));
    g.bench_function("table3", |b| b.iter(|| tables::table3(sum)));
    g.bench_function("table4", |b| b.iter(|| tables::table4(sum)));
    g.bench_function("table5", |b| b.iter(|| tables::table5_report(sum)));
    g.finish();
}

fn main() {
    let mut c = Harness::new("tables");
    bench_capture(&mut c);
    bench_tables(&mut c);
    c.finish().expect("write benchmark results");
}

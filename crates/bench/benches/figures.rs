//! Figure regeneration benchmarks: one benchmark per paper figure, running
//! the analysis over a cached scaled-down capture.

use bench::Harness;
use experiments::figures;
use experiments::run::{run_capture, Capture};
use experiments::validation;
use experiments::CaptureSummary;
use std::sync::OnceLock;

fn capture() -> &'static Capture {
    static CAPTURE: OnceLock<Capture> = OnceLock::new();
    CAPTURE.get_or_init(|| run_capture(0.01, 2012, &workload::FaultPlan::none(), 1))
}

fn summary() -> &'static CaptureSummary {
    static SUMMARY: OnceLock<CaptureSummary> = OnceLock::new();
    SUMMARY.get_or_init(|| CaptureSummary::compute(capture()))
}

fn bench_standalone(c: &mut Harness) {
    let mut g = c.group("figures_testbed");
    g.bench_function("fig1", |b| b.iter(figures::fig1));
    g.bench_function("fig19", |b| b.iter(figures::fig19));
    g.sample_size(10);
    g.bench_function("recommendations", |b| {
        b.iter(experiments::recommendations::recommendations)
    });
    g.finish();
}

fn bench_figures(c: &mut Harness) {
    let cap = capture();
    let sum = summary();
    let mut g = c.group("figures");
    macro_rules! fig {
        ($name:ident) => {
            g.bench_function(stringify!($name), |b| b.iter(|| figures::$name(sum)));
        };
    }
    fig!(fig2);
    fig!(fig3);
    fig!(fig4);
    fig!(fig5);
    fig!(fig6);
    fig!(fig7);
    fig!(fig8);
    fig!(fig9);
    fig!(fig10);
    fig!(fig11);
    fig!(fig12);
    fig!(fig13);
    fig!(fig14);
    fig!(fig15);
    fig!(fig16);
    fig!(fig17);
    fig!(fig18);
    fig!(fig20);
    fig!(fig21);
    g.bench_function("validation", |b| b.iter(|| validation::validate(cap)));
    g.finish();
}

fn main() {
    let mut c = Harness::new("figures");
    bench_standalone(&mut c);
    bench_figures(&mut c);
    c.finish().expect("write benchmark results");
}

//! Streaming-summary benchmark: simulates the paper capture, then
//! measures the single-pass [`experiments::CaptureSummary`] — records/sec
//! through the pipeline and the end-of-pass accumulator state (the peak:
//! accumulator state only grows during a pass) — and writes
//! `BENCH_stream.json`.
//!
//! Knobs: `BENCH_STREAM_SCALES` (comma-separated population scales,
//! default `0.1,1.0`).

use experiments::{run_capture, CaptureSummary};
use simcore::json::Json;
use std::time::Instant;
use workload::FaultPlan;

fn main() {
    let scales: Vec<f64> = std::env::var("BENCH_STREAM_SCALES")
        .unwrap_or_else(|_| "0.1,1.0".into())
        .split(',')
        .map(|s| s.trim().parse().expect("scale"))
        .collect();
    let seed = 2012u64;
    let jobs = simcore::par::available_jobs();

    let mut rows: Vec<Json> = Vec::new();
    println!(
        "{:<8}  {:>10}  {:>10}  {:>12}  {:>14}",
        "scale", "records", "pass", "records/s", "state"
    );
    for &scale in &scales {
        let t0 = Instant::now();
        let cap = run_capture(scale, seed, &FaultPlan::none(), jobs);
        let capture_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let sum = CaptureSummary::compute(&cap);
        let pass_secs = t1.elapsed().as_secs_f64();
        let records = sum.records();
        let state = sum.state_bytes();
        let rate = records as f64 / pass_secs.max(1e-9);
        std::hint::black_box(&sum);
        println!(
            "{scale:<8}  {records:>10}  {pass_secs:>9.2}s  {rate:>12.0}  {:>11} kB",
            state / 1024
        );
        rows.push(Json::obj([
            ("scale", Json::F64(scale)),
            ("capture_seconds", Json::F64(capture_secs)),
            ("records", Json::U64(records)),
            ("summary_seconds", Json::F64(pass_secs)),
            ("records_per_second", Json::F64(rate)),
            ("accumulator_state_bytes", Json::U64(state as u64)),
            ("pipeline_stages", Json::U64(sum.stages() as u64)),
        ]));
    }

    let json = Json::obj([
        ("label", Json::Str("stream".into())),
        ("seed", Json::U64(seed)),
        ("jobs", Json::U64(jobs as u64)),
        (
            "note",
            Json::Str(
                "summary_seconds times the single shared pass that feeds every table and \
                 figure (previously ~20 scans of the flow vectors); accumulator_state_bytes \
                 is the end-of-pass total across all five vantage pipelines"
                    .into(),
            ),
        ),
        ("runs", Json::Arr(rows)),
    ]);
    std::fs::write("BENCH_stream.json", json.dump() + "\n").expect("write benchmark results");
    println!("\nwrote BENCH_stream.json");
}

//! Provider-spec engine throughput: upload-transaction flow construction
//! per spec (the generic engine's per-provider cost), and one
//! bundling-vs-RTT sweep cell through the full TCP model (the
//! `repro --provider-matrix` inner loop).

use bench::{Harness, Throughput};
use dnssim::DnsDirectory;
use dropbox::client::{ChunkWork, ClientVersion, SyncConfig, SyncEngine};
use dropbox::content::ChunkId;
use dropbox::spec;
use dropbox::storage::ChunkStore;
use simcore::{Rng, SimTime};

const CHUNKS: u64 = 80;
const CHUNK_BYTES: u64 = 50_000;

fn workload() -> Vec<ChunkWork> {
    (0..CHUNKS)
        .map(|i| ChunkWork {
            id: ChunkId(i + 1),
            wire_bytes: CHUNK_BYTES,
            raw_bytes: CHUNK_BYTES,
        })
        .collect()
}

/// Flow construction per spec: same chunk workload, fresh store every
/// iteration so dedup never short-circuits the comparison.
fn bench_upload(c: &mut Harness) {
    let chunks = workload();
    let mut g = c.group("providers");
    g.throughput(Throughput::Bytes(CHUNKS * CHUNK_BYTES));
    for prov in spec::ALL {
        let mut dns = DnsDirectory::new();
        for (name, ip) in prov.dns_entries() {
            dns.register(name, ip);
        }
        g.bench_function(&format!("upload_{}", prov.slug), |b| {
            b.iter(|| {
                let store = ChunkStore::new();
                let config = SyncConfig {
                    version: ClientVersion::V1_4_0,
                    spec: prov,
                    ..SyncConfig::default()
                };
                let mut eng = SyncEngine::new(&dns, &store, config, 7);
                let mut rng = Rng::new(11);
                let flows = eng.upload_transaction(
                    std::hint::black_box(&chunks),
                    0,
                    &mut rng,
                    None,
                    SimTime::EPOCH,
                );
                assert!(!flows.is_empty());
                flows.len()
            })
        });
    }
    g.finish();
}

/// One bundling-vs-RTT cell end to end (engine + TCP model + monitor):
/// the unit of work the provider-matrix sweep repeats per series × probe.
fn bench_sweep_cell(c: &mut Harness) {
    let mut g = c.group("providers_sweep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1));
    g.bench_function("folder_sync_cell", |b| {
        b.iter(|| {
            let secs = experiments::providers::folder_sync_secs(
                &spec::GDRIVE_LIKE,
                ClientVersion::V1_4_0,
                20,
                40_000,
                std::hint::black_box(100),
                3,
            );
            assert!(secs > 0.0);
            secs
        })
    });
    g.finish();
}

fn main() {
    let mut c = Harness::new("providers");
    bench_upload(&mut c);
    bench_sweep_cell(&mut c);
    c.finish().expect("write benchmark results");
}

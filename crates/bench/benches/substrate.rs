//! Micro-benchmarks of the hot substrate paths.

use bench::{BatchSize, Harness, Throughput};
use dropbox::client::{ChunkWork, SyncConfig, SyncEngine};
use dropbox::content::ChunkId;
use dropbox::storage::ChunkStore;
use nettrace::{Endpoint, FlowKey, Ipv4};
use simcore::{Rng, SimDuration, SimTime};
use tcpmodel::{simulate, tls, Dialogue, Direction, Message, PathParams, TcpParams};
use tstat::Monitor;

fn bench_sha256(c: &mut Harness) {
    let data = vec![0xabu8; 1 << 20];
    let mut g = c.group("sha256");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("1MiB", |b| {
        b.iter(|| contenthash::sha256(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_lzss(c: &mut Harness) {
    let data: Vec<u8> = (0..256usize * 1024)
        .map(|i| ((i / 7) % 251) as u8)
        .collect();
    let mut g = c.group("lzss");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_256KiB", |b| {
        b.iter(|| contenthash::lzss::compress(std::hint::black_box(&data)))
    });
    let compressed = contenthash::lzss::compress(&data);
    g.bench_function("decompress_256KiB", |b| {
        b.iter(|| contenthash::lzss::decompress(std::hint::black_box(&compressed)).unwrap())
    });
    g.finish();
}

fn bench_delta(c: &mut Harness) {
    let mut rng = Rng::new(1);
    let old: Vec<u8> = (0..256 * 1024).map(|_| rng.next_u64() as u8).collect();
    let mut new = old.clone();
    for b in &mut new[100_000..108_000] {
        *b ^= 0x55;
    }
    let mut g = c.group("rsync_delta");
    g.throughput(Throughput::Bytes(new.len() as u64));
    g.bench_function("signature_256KiB", |b| {
        b.iter(|| contenthash::signature(std::hint::black_box(&old), 2048))
    });
    let sig = contenthash::signature(&old, 2048);
    g.bench_function("delta_256KiB_small_edit", |b| {
        b.iter(|| contenthash::compute_delta(std::hint::black_box(&sig), &new))
    });
    g.finish();
}

fn store_dialogue(chunks: u64, bytes: u32) -> Dialogue {
    let mut m = tls::handshake(
        "dl-client1.dropbox.com",
        "*.dropbox.com",
        SimDuration::from_millis(60),
    );
    for _ in 0..chunks {
        m.push(Message::simple(
            Direction::Up,
            SimDuration::from_millis(30),
            634 + bytes,
        ));
        m.push(Message::simple(
            Direction::Down,
            SimDuration::from_millis(90),
            309,
        ));
    }
    Dialogue::new(m)
}

fn key() -> FlowKey {
    FlowKey::new(
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
        Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
    )
}

fn path() -> PathParams {
    PathParams {
        inner_rtt: SimDuration::from_millis(10),
        outer_rtt: SimDuration::from_millis(90),
        jitter: 0.05,
        loss_up: 0.001,
        loss_down: 0.001,
        up_rate: None,
        down_rate: None,
    }
}

fn bench_tcp_simulate(c: &mut Harness) {
    let mut g = c.group("tcpmodel");
    let d = store_dialogue(10, 100_000);
    g.throughput(Throughput::Bytes(d.bytes_up() + d.bytes_down()));
    g.bench_function("store_10x100kB", |b| {
        b.iter_batched(
            || (Rng::new(7), Vec::with_capacity(2_000)),
            |(mut rng, mut out)| {
                simulate(
                    SimTime::from_secs(1),
                    key(),
                    &d,
                    &path(),
                    &TcpParams::era_2012_v1(),
                    &mut rng,
                    &mut out,
                );
                out
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_monitor(c: &mut Harness) {
    let d = store_dialogue(10, 100_000);
    let mut out = Vec::new();
    simulate(
        SimTime::from_secs(1),
        key(),
        &d,
        &path(),
        &TcpParams::era_2012_v1(),
        &mut Rng::new(7),
        &mut out,
    );
    let mut g = c.group("tstat");
    g.throughput(Throughput::Elements(out.len() as u64));
    g.bench_function("process_flow", |b| {
        b.iter(|| {
            let mut m = Monitor::new(true);
            m.process_flow(std::hint::black_box(&out))
        })
    });
    g.finish();
}

fn bench_sync_engine(c: &mut Harness) {
    let dns = dnssim::DnsDirectory::new();
    c.bench_function("sync_engine/upload_transaction_100", |b| {
        b.iter_batched(
            || {
                let store = ChunkStore::new();
                let chunks: Vec<ChunkWork> = (0..100)
                    .map(|i| ChunkWork {
                        id: ChunkId(i),
                        wire_bytes: 50_000,
                        raw_bytes: 50_000,
                    })
                    .collect();
                (store, chunks, Rng::new(3))
            },
            |(store, chunks, mut rng)| {
                let mut engine = SyncEngine::new(&dns, &store, SyncConfig::default(), 1);
                engine.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_classification(c: &mut Harness) {
    // Classify a realistic record set.
    let mut config = workload::VantageConfig::paper(workload::VantageKind::Home1, 0.01);
    config.days = 3;
    let out = workload::simulate_vantage(
        &config,
        dropbox::client::ClientVersion::V1_2_52,
        1,
        &workload::FaultPlan::none(),
    );
    let flows = out.dataset.flows;
    let mut g = c.group("analysis");
    g.throughput(Throughput::Elements(flows.len() as u64));
    g.bench_function("classify_flows", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for f in &flows {
                if dropbox_analysis::classify::provider_of(std::hint::black_box(f))
                    == dropbox_analysis::classify::Provider::Dropbox
                {
                    n += 1;
                }
            }
            n
        })
    });
    g.finish();
}

fn main() {
    let mut c = Harness::new("substrate");
    bench_sha256(&mut c);
    bench_lzss(&mut c);
    bench_delta(&mut c);
    bench_tcp_simulate(&mut c);
    bench_monitor(&mut c);
    bench_sync_engine(&mut c);
    bench_classification(&mut c);
    c.finish().expect("write benchmark results");
}

//! Benchmark of the static-analysis pass itself: simlint runs on every
//! verify invocation, so its wall time over the workspace is tracked like
//! any other substrate cost. Split into the full end-to-end pass, the
//! incremental-cache cold/warm pair (a fully-warm run validates file
//! stats against the cache summary and replays the cached report without
//! parsing a single fact — the warm/cold ratio is the figure the ≥5x
//! speedup target is judged on), and the lexer alone (a cold pass is
//! lexing-dominated on large files).

use bench::{Harness, Throughput};
use simlint::Options;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn main() {
    let root = workspace_root();
    let opts = Options::workspace();

    // One warm run to count files/violations and fault the tree into the
    // page cache, so the benchmark measures analysis, not cold disk.
    let report = simlint::run(&root, &opts).expect("workspace readable");
    assert!(
        report.ok(),
        "benchmark expects a clean workspace:\n{}",
        report.render()
    );
    let files = report.files_scanned as u64;

    // The largest source file, lexed alone.
    let driver = root.join("crates/workload/src/driver.rs");
    let driver_src = std::fs::read_to_string(&driver).expect("driver.rs readable");

    let mut c = Harness::new("simlint");
    let mut g = c.group("simlint");
    g.throughput(Throughput::Elements(files));
    g.sample_size(10);
    g.bench_function("workspace_full_pass", |b| {
        b.iter(|| {
            simlint::run(std::hint::black_box(&root), &opts)
                .expect("workspace readable")
                .violations
                .len()
        })
    });
    g.finish();

    // Cold vs warm incremental cache. The cold case removes both cache
    // files before every iteration (full fact extraction + cache write);
    // the warm case primes once and then replays the cached report.
    let cache = root.join("target/simlint-bench-cache.json");
    let sidecar = simlint::cache::sidecar_path(&cache);
    let mut g = c.group("simlint");
    g.throughput(Throughput::Elements(files));
    g.sample_size(10);
    g.bench_function("workspace_cold_cache", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&cache);
            let _ = std::fs::remove_file(&sidecar);
            let (report, stats) =
                simlint::run_with_cache(std::hint::black_box(&root), &opts, &cache)
                    .expect("workspace readable");
            assert_eq!(stats.hits, 0);
            report.violations.len()
        })
    });
    g.finish();

    let (_, primed) = simlint::run_with_cache(&root, &opts, &cache).expect("prime cache");
    assert!(primed.misses > 0 || primed.hits > 0);
    let mut g = c.group("simlint");
    g.throughput(Throughput::Elements(files));
    g.sample_size(10);
    g.bench_function("workspace_warm_cache", |b| {
        b.iter(|| {
            let (report, stats) =
                simlint::run_with_cache(std::hint::black_box(&root), &opts, &cache)
                    .expect("workspace readable");
            assert_eq!(stats.misses, 0, "warm run must be all cache hits");
            report.violations.len()
        })
    });
    g.finish();
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&sidecar);

    let mut g = c.group("simlint");
    g.throughput(Throughput::Bytes(driver_src.len() as u64));
    g.bench_function("lex_driver_rs", |b| {
        b.iter(|| {
            simlint::lexer::lex(std::hint::black_box(&driver_src))
                .toks
                .len()
        })
    });
    g.finish();

    c.finish().expect("write BENCH_simlint.json");
}

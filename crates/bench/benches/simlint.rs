//! Benchmark of the static-analysis pass itself: simlint runs on every
//! verify invocation, so its wall time over the workspace is tracked like
//! any other substrate cost. Split into the full end-to-end pass and the
//! lexer alone (the pass is lexing-dominated on large files).

use bench::{Harness, Throughput};
use simlint::Options;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn main() {
    let root = workspace_root();
    let opts = Options::workspace();

    // One warm run to count files/violations and fault the tree into the
    // page cache, so the benchmark measures analysis, not cold disk.
    let report = simlint::run(&root, &opts).expect("workspace readable");
    assert!(
        report.ok(),
        "benchmark expects a clean workspace:\n{}",
        report.render()
    );
    let files = report.files_scanned as u64;

    // The largest source file, lexed alone.
    let driver = root.join("crates/workload/src/driver.rs");
    let driver_src = std::fs::read_to_string(&driver).expect("driver.rs readable");

    let mut c = Harness::new("simlint");
    let mut g = c.group("simlint");
    g.throughput(Throughput::Elements(files));
    g.sample_size(10);
    g.bench_function("workspace_full_pass", |b| {
        b.iter(|| {
            simlint::run(std::hint::black_box(&root), &opts)
                .expect("workspace readable")
                .violations
                .len()
        })
    });
    g.finish();

    let mut g = c.group("simlint");
    g.throughput(Throughput::Bytes(driver_src.len() as u64));
    g.bench_function("lex_driver_rs", |b| {
        b.iter(|| {
            simlint::lexer::lex(std::hint::black_box(&driver_src))
                .toks
                .len()
        })
    });
    g.finish();

    c.finish().expect("write BENCH_simlint.json");
}

//! Std-only micro-benchmark harness (the workspace's criterion
//! replacement) plus the benchmarks under `benches/`.
//!
//! The harness measures wall-clock time with [`std::time::Instant`]:
//! each benchmark is warmed up, the iterations-per-sample count is
//! calibrated so a sample takes roughly 10 ms, then `sample_size`
//! samples are collected. [`Harness::finish`] prints a summary table
//! and writes `BENCH_<label>.json` (via `simcore::json`) with the raw
//! numbers so runs can be diffed by tooling.

use simcore::json::Json;
use std::io;
use std::time::{Duration, Instant};

/// Per-iteration work amount, used to derive a throughput figure.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batching hint for [`Bencher::iter_batched`]; kept for API parity, both
/// variants pre-generate one input per iteration.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Inputs are cheap to hold; all are generated up front.
    SmallInput,
    /// Inputs are large; still generated up front (simulation inputs
    /// in this workspace are small enough).
    LargeInput,
}

/// Passed to each benchmark closure; runs the routine `iters` times per
/// sample and accumulates only the measured time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` over per-iteration inputs built by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std::hint::black_box(routine(input));
        }
        self.elapsed += start.elapsed();
    }
}

struct Record {
    group: String,
    name: String,
    samples: u64,
    iters_per_sample: u64,
    min_ns: f64,
    mean_ns: f64,
    median_ns: f64,
    throughput: Option<(Throughput, f64)>, // amount + per-second at median
}

/// Collects benchmark results for one label (one `[[bench]]` target).
pub struct Harness {
    label: String,
    records: Vec<Record>,
}

/// Warm-up budget before calibration.
const WARMUP: Duration = Duration::from_millis(30);
/// Target wall time for one sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);
/// Default number of samples per benchmark.
const DEFAULT_SAMPLES: u64 = 20;
/// Soft cap on measured time per benchmark: stop sampling early past
/// this once a minimum number of samples is in.
const TIME_BUDGET: Duration = Duration::from_secs(5);
const MIN_SAMPLES: u64 = 3;

impl Harness {
    /// New harness; `label` names the output file (`BENCH_<label>.json`).
    pub fn new(label: &str) -> Self {
        Harness {
            label: label.to_string(),
            records: Vec::new(),
        }
    }

    /// Start a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            throughput: None,
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut g = self.group("");
        g.bench_function(name, f);
        g.finish();
    }

    /// Print the summary table and write `BENCH_<label>.json`.
    pub fn finish(self) -> io::Result<()> {
        let width = self
            .records
            .iter()
            .map(|r| full_name(r).len())
            .max()
            .unwrap_or(0)
            .max(9);
        println!(
            "\n{:<width$}  {:>12}  {:>12}",
            "benchmark", "median", "throughput"
        );
        for r in &self.records {
            let thr = match r.throughput {
                Some((Throughput::Bytes(_), per_sec)) => format_bytes_per_sec(per_sec),
                Some((Throughput::Elements(_), per_sec)) => {
                    format!("{} elem/s", format_si(per_sec))
                }
                None => "-".to_string(),
            };
            println!(
                "{:<width$}  {:>12}  {:>12}",
                full_name(r),
                format_ns(r.median_ns),
                thr
            );
        }
        let json = Json::obj([
            ("label", Json::Str(self.label.clone())),
            (
                "results",
                Json::Arr(self.records.iter().map(record_json).collect()),
            ),
        ]);
        let path = format!("BENCH_{}.json", self.label);
        std::fs::write(&path, json.dump() + "\n")?;
        println!("\nwrote {path}");
        Ok(())
    }
}

fn full_name(r: &Record) -> String {
    if r.group.is_empty() {
        r.name.clone()
    } else {
        format!("{}/{}", r.group, r.name)
    }
}

fn record_json(r: &Record) -> Json {
    let (unit, per_sec) = match r.throughput {
        Some((Throughput::Bytes(_), v)) => (Json::Str("bytes".into()), Json::F64(v)),
        Some((Throughput::Elements(_), v)) => (Json::Str("elements".into()), Json::F64(v)),
        None => (Json::Null, Json::Null),
    };
    Json::obj([
        ("group", Json::Str(r.group.clone())),
        ("name", Json::Str(r.name.clone())),
        ("samples", Json::U64(r.samples)),
        ("iters_per_sample", Json::U64(r.iters_per_sample)),
        (
            "ns_per_iter",
            Json::obj([
                ("min", Json::F64(r.min_ns)),
                ("mean", Json::F64(r.mean_ns)),
                ("median", Json::F64(r.median_ns)),
            ]),
        ),
        ("throughput_unit", unit),
        ("throughput_per_sec", per_sec),
    ])
}

/// A benchmark group: shared throughput and sample-size settings.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    throughput: Option<Throughput>,
    samples: u64,
}

impl Group<'_> {
    /// Set the per-iteration work amount for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Set the number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) {
        self.samples = (n as u64).max(1);
    }

    /// Measure one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let (iters, ns) = measure(&mut f, self.samples);
        let mut sorted = ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min_ns = sorted[0];
        let median_ns = sorted[sorted.len() / 2];
        let mean_ns = ns.iter().sum::<f64>() / ns.len() as f64;
        let throughput = self.throughput.map(|t| {
            let amount = match t {
                Throughput::Bytes(n) | Throughput::Elements(n) => n,
            };
            (t, amount as f64 / (median_ns * 1e-9))
        });
        self.harness.records.push(Record {
            group: self.name.clone(),
            name: name.to_string(),
            samples: ns.len() as u64,
            iters_per_sample: iters,
            min_ns,
            mean_ns,
            median_ns,
            throughput,
        });
    }

    /// End the group (kept for criterion API parity; dropping works too).
    pub fn finish(self) {}
}

/// Warm up, calibrate iterations per sample, then collect samples.
/// Returns (iters_per_sample, ns-per-iteration samples).
fn measure(f: &mut impl FnMut(&mut Bencher), samples: u64) -> (u64, Vec<f64>) {
    let mut warm_time = Duration::ZERO;
    let mut warm_calls = 0u64;
    while warm_time < WARMUP && warm_calls < 1024 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_time += b.elapsed.max(Duration::from_nanos(1));
        warm_calls += 1;
    }
    let per_iter = warm_time.as_secs_f64() / warm_calls as f64;
    let iters = if per_iter > 0.0 {
        ((TARGET_SAMPLE.as_secs_f64() / per_iter) as u64).clamp(1, 10_000_000)
    } else {
        1
    };
    let mut ns = Vec::new();
    let mut spent = Duration::ZERO;
    for _ in 0..samples {
        if spent > TIME_BUDGET && ns.len() as u64 >= MIN_SAMPLES {
            break;
        }
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        spent += b.elapsed;
        ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    (iters, ns)
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

fn format_bytes_per_sec(v: f64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    if v >= MIB * 1024.0 {
        format!("{:.2} GiB/s", v / (MIB * 1024.0))
    } else if v >= MIB {
        format!("{:.2} MiB/s", v / MIB)
    } else {
        format!("{:.1} KiB/s", v / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, 100);
    }

    #[test]
    fn iter_batched_excludes_setup_and_runs_each_input() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        let mut setups = 0u64;
        let mut runs = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| {
                runs += 1;
                x
            },
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 10);
        assert_eq!(runs, 10);
    }

    #[test]
    fn group_records_results_with_throughput() {
        let mut h = Harness::new("selftest");
        let mut g = h.group("g");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(h.records.len(), 1);
        let r = &h.records[0];
        assert_eq!(r.group, "g");
        assert_eq!(r.name, "noop");
        assert!(r.samples >= 1);
        assert!(r.median_ns >= 0.0);
        assert!(r.throughput.is_some());
        // Intentionally not calling finish(): tests must not write files.
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_500.0), "12.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(1.5e9), "1.500 s");
        assert_eq!(format_si(2.5e6), "2.50M");
        assert_eq!(format_bytes_per_sec(3.0 * 1024.0 * 1024.0), "3.00 MiB/s");
    }
}

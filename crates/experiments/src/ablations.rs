//! Ablations of the design parameters DESIGN.md calls out.
//!
//! Three protocol/stack parameters shape the paper's measurements; each is
//! swept here with everything else held fixed:
//!
//! * **server initial congestion window** — the paper-era servers
//!   effectively used a small window, costing one extra RTT inside the
//!   TLS handshake ("this parameter has been tuned after the release of
//!   Dropbox 1.4.0", Appendix A.4),
//! * **segment loss rate** — the paper ties near-θ throughput to flows
//!   without retransmissions (Sec. 4.4.1),
//! * **chunks-per-transaction limit** — the run-time parameter (100) that
//!   caps flows at ~400 MB and shapes Figs. 7–8.

use crate::report::{fmt_bps, fmt_bytes, Report, TextTable};
use dropbox::client::{ChunkWork, SyncConfig, SyncEngine};
use dropbox::content::ChunkId;
use dropbox::storage::ChunkStore;
use dropbox::FlowTruth;
use dropbox_analysis::throughput::throughput_bps;
use nettrace::{Endpoint, FlowKey, Ipv4};
use simcore::{Rng, SimDuration, SimTime};
use tcpmodel::tls;
use tcpmodel::{simulate, Dialogue, Direction, Message, PathParams, TcpParams};
use tstat::Monitor;

fn key() -> FlowKey {
    FlowKey::new(
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
        Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
    )
}

fn path(rtt_ms: u64, loss: f64) -> PathParams {
    PathParams {
        inner_rtt: SimDuration::from_millis(8),
        outer_rtt: SimDuration::from_millis(rtt_ms - 8),
        jitter: 0.02,
        loss_up: loss,
        loss_down: loss,
        up_rate: None,
        down_rate: None,
    }
}

/// Single-chunk store dialogue (the flow type Fig. 9's θ analysis uses).
fn single_chunk_dialogue(chunk_bytes: u32) -> Dialogue {
    let mut m = tls::handshake(
        "dl-client1.dropbox.com",
        "*.dropbox.com",
        SimDuration::from_millis(100),
    );
    m.push(Message::simple(
        Direction::Up,
        SimDuration::from_millis(50),
        634 + chunk_bytes,
    ));
    m.push(Message::simple(
        Direction::Down,
        SimDuration::from_millis(100),
        309,
    ));
    Dialogue::new(m)
}

/// Sweep the server's initial congestion window: time until the client
/// may send its first application byte (handshake latency) and the
/// throughput of a single-chunk store.
pub fn initcwnd_ablation() -> Report {
    let mut t = TextTable::new(vec![
        "server initcwnd",
        "handshake done",
        "1-chunk (100kB) throughput",
    ]);
    let mut handshakes = Vec::new();
    for initcwnd in [1u32, 2, 3, 10] {
        let tcp = TcpParams {
            server_initcwnd: initcwnd,
            ..TcpParams::era_2012_v1()
        };
        let d = single_chunk_dialogue(100_000);
        let mut packets = Vec::new();
        let summary = simulate(
            SimTime::from_secs(1),
            key(),
            &d,
            &path(100, 0.0),
            &tcp,
            &mut Rng::new(1),
            &mut packets,
        );
        // Handshake completion = delivery of the server's final TLS flight
        // (message index 3), measured from the first SYN.
        let hs_done = summary.deliveries[3].saturating_since(SimTime::from_secs(1));
        let mut monitor = Monitor::new(true);
        let rec = monitor.process_flow(&packets).expect("record");
        let thr = throughput_bps(&rec).unwrap_or(0.0);
        handshakes.push((initcwnd, hs_done));
        t.row(vec![
            initcwnd.to_string(),
            format!("{:.0}ms", hs_done.as_secs_f64() * 1_000.0),
            fmt_bps(thr),
        ]);
    }
    let small = handshakes
        .iter()
        .find(|(w, _)| *w == 2)
        .expect("initcwnd 2 swept")
        .1;
    let big = handshakes
        .iter()
        .find(|(w, _)| *w == 10)
        .expect("initcwnd 10 swept")
        .1;
    let body = format!(
        "{}\nwith a small window the 4 kB server TLS flight needs an extra round:\n\
         initcwnd 2 -> {:.0} ms vs initcwnd 10 -> {:.0} ms (≈1 RTT saved) —\n\
         Appendix A.4's \"pause of 1 RTT during the SSL handshake\", tuned away\n\
         after the 1.4.0 release.\n",
        t.render(),
        small.as_secs_f64() * 1_000.0,
        big.as_secs_f64() * 1_000.0,
    );
    Report::new(
        "ablation_initcwnd",
        "Server initial-window ablation (TLS handshake latency)",
        body,
    )
    .with_csv("ablation_initcwnd.csv", t.csv())
}

/// Sweep the path loss rate: retransmissions and throughput of a bulk
/// store flow (Sec. 4.4.1 ties near-θ throughput to loss-free flows).
pub fn loss_ablation() -> Report {
    let mut t = TextTable::new(vec!["loss", "retransmissions", "throughput", "vs lossless"]);
    let size = 2_000_000u32;
    let mut base = 0.0f64;
    for loss_pct in [0.0f64, 0.1, 0.5, 1.0, 2.0, 5.0] {
        let d = single_chunk_dialogue(size);
        let mut packets = Vec::new();
        simulate(
            SimTime::from_secs(1),
            key(),
            &d,
            &path(100, loss_pct / 100.0),
            &TcpParams::era_2012_v1(),
            &mut Rng::new(2),
            &mut packets,
        );
        let mut monitor = Monitor::new(true);
        let rec = monitor.process_flow(&packets).expect("record");
        let thr = throughput_bps(&rec).unwrap_or(0.0);
        if loss_pct == 0.0 {
            base = thr;
        }
        t.row(vec![
            format!("{loss_pct:.1}%"),
            rec.up.retransmissions.to_string(),
            fmt_bps(thr),
            format!("{:.2}x", thr / base.max(1.0)),
        ]);
    }
    let body = format!(
        "{}\nloss-free flows sit at the top of Fig. 9's envelope; each loss event\n\
         halves the window and stalls a round, dragging flows below θ — the\n\
         wireless Campus 2 flows (88%/75% retransmission-free) show exactly this.\n",
        t.render()
    );
    Report::new(
        "ablation_loss",
        "Loss-rate ablation (bulk store flow)",
        body,
    )
    .with_csv("ablation_loss.csv", t.csv())
}

/// Sweep the chunks-per-transaction limit: how the protocol parameter
/// shapes flow counts and flow sizes for a fixed 600-chunk backlog.
pub fn batch_limit_ablation() -> Report {
    let dns = dnssim::DnsDirectory::new();
    let mut t = TextTable::new(vec![
        "limit",
        "storage flows",
        "max flow bytes",
        "max chunks/flow",
    ]);
    for limit in [10usize, 50, 100, 200] {
        let store = ChunkStore::new();
        let mut engine = SyncEngine::new(&dns, &store, SyncConfig::default(), 5);
        let mut rng = Rng::new(3);
        let chunks: Vec<ChunkWork> = (0..600)
            .map(|i| ChunkWork {
                id: ChunkId(i),
                wire_bytes: 700_000,
                raw_bytes: 700_000,
            })
            .collect();
        // The engine's limit is the protocol constant; emulate other limits
        // by slicing the backlog ourselves.
        let mut flows = 0usize;
        let mut max_bytes = 0u64;
        let mut max_chunks = 0u32;
        for batch in chunks.chunks(limit.min(dropbox::Command::MAX_CHUNKS_PER_BATCH)) {
            for spec in engine.upload_transaction(batch, 0, &mut rng, None, SimTime::EPOCH) {
                if let FlowTruth::Store { chunks, .. } = spec.truth {
                    flows += 1;
                    max_bytes = max_bytes.max(spec.dialogue.bytes_up());
                    max_chunks = max_chunks.max(chunks);
                }
            }
        }
        t.row(vec![
            limit.to_string(),
            flows.to_string(),
            fmt_bytes(max_bytes),
            max_chunks.to_string(),
        ]);
    }
    let body = format!(
        "{}\nthe 100-chunk limit explains Fig. 7's ~400 MB flow cap and Fig. 8's mass\n\
         at exactly 100 chunks; halving it would double the per-sync flow count.\n",
        t.render()
    );
    Report::new(
        "ablation_batch_limit",
        "Chunks-per-transaction limit ablation",
        body,
    )
    .with_csv("ablation_batch_limit.csv", t.csv())
}

/// Compare a fault-free capture with the same capture under the lossy
/// fault plan: the injected resets, retries and notification churn must
/// show up on the wire (RST share, retransmitted bytes, aborted records)
/// without changing what the clients ultimately sync.
pub fn fault_ablation() -> Report {
    use workload::{simulate_vantage, FaultPlan, SimOutput, VantageConfig, VantageKind};

    let mut config = VantageConfig::paper(VantageKind::Campus1, 0.02);
    config.days = 7;
    let run = |plan: &FaultPlan| {
        simulate_vantage(&config, dropbox::client::ClientVersion::V1_2_52, 42, plan)
    };
    let clean = run(&FaultPlan::none());
    let faulty = run(&FaultPlan::lossy(7, config.days));

    /// Wire-level fault counters, folded in one pass over the records.
    #[derive(Default)]
    struct FaultMetricsAcc {
        flows: u64,
        bytes: u64,
        rtx: u64,
        rst: u64,
        aborted: u64,
    }
    impl dropbox_analysis::Accumulate for FaultMetricsAcc {
        type Output = (u64, u64, u64, u64, u64);
        fn observe(&mut self, f: &nettrace::FlowRecord) {
            self.flows += 1;
            self.bytes += f.total_bytes();
            self.rtx += f.up.rtx_bytes + f.down.rtx_bytes;
            if f.close == nettrace::flow::FlowClose::Rst {
                self.rst += 1;
            }
            if f.aborted {
                self.aborted += 1;
            }
        }
        fn finish(self) -> Self::Output {
            (self.flows, self.bytes, self.rtx, self.rst, self.aborted)
        }
    }
    let metrics = |out: &SimOutput| {
        dropbox_analysis::stream::run_one(&out.dataset.flows, FaultMetricsAcc::default())
    };
    let (cf, cb, crx, crst, cab) = metrics(&clean);
    let (ff, fb, frx, frst, fab) = metrics(&faulty);

    let mut t = TextTable::new(vec!["metric", "fault-free", "lossy plan"]);
    t.row(vec!["flow records".into(), cf.to_string(), ff.to_string()]);
    t.row(vec!["wire bytes".into(), fmt_bytes(cb), fmt_bytes(fb)]);
    t.row(vec![
        "retransmitted bytes".into(),
        fmt_bytes(crx),
        fmt_bytes(frx),
    ]);
    t.row(vec![
        "RST-closed flows".into(),
        crst.to_string(),
        frst.to_string(),
    ]);
    t.row(vec![
        "aborted records".into(),
        cab.to_string(),
        fab.to_string(),
    ]);
    t.row(vec![
        "sync retries".into(),
        clean.fault_stats.sync_retries.to_string(),
        faulty.fault_stats.sync_retries.to_string(),
    ]);
    t.row(vec![
        "aborted transfers".into(),
        clean.fault_stats.aborted_flows.to_string(),
        faulty.fault_stats.aborted_flows.to_string(),
    ]);
    t.row(vec![
        "notification aborts".into(),
        clean.fault_stats.notify_aborts.to_string(),
        faulty.fault_stats.notify_aborts.to_string(),
    ]);
    let body = format!(
        "{}\nthe lossy plan adds flows (retry/resume connections and reconnect\n\
         churn) and wire bytes (retransmissions), and flags its mid-transfer\n\
         resets as aborted records — while chunk-level resume keeps the synced\n\
         content identical, so the analysis methods see realistic dirty traces\n\
         instead of idealised transfers.\n",
        t.render()
    );
    Report::new(
        "ablation_faults",
        "Fault-injection ablation (clean vs lossy capture)",
        body,
    )
    .with_csv("ablation_faults.csv", t.csv())
}

/// Sweep the control-plane outage knobs (`--outage-gap-days` /
/// `--outage-secs`): how outage frequency and duration move the degraded-
/// mode counters and the sync-lag tail, with the convergence oracle
/// checked at every setting.
pub fn outage_ablation() -> Report {
    use simcore::stats::Ecdf;
    use workload::{simulate_vantage_audited, FaultPlan, OutageKnobs, VantageConfig, VantageKind};

    let mut config = VantageConfig::paper(VantageKind::Home1, 0.01);
    config.days = 7;
    let run = |plan: &FaultPlan| {
        simulate_vantage_audited(&config, dropbox::client::ClientVersion::V1_2_52, 42, plan)
    };

    let mut t = TextTable::new(vec![
        "outage knobs",
        "deferred commits",
        "failed probes",
        "reconnects",
        "fallback polls",
        "lag p50",
        "lag p90",
        "oracle",
    ]);
    let sweeps: &[(&str, Option<OutageKnobs>)] = &[
        ("clean", None),
        ("1 per ~2d / med 180s", Some(OutageKnobs::default())),
        (
            "1 per ~1d / med 600s",
            Some(OutageKnobs {
                gap_days: 1.0,
                median_secs: 600.0,
                max_secs: 12_000.0,
            }),
        ),
        (
            "2 per day / med 1800s",
            Some(OutageKnobs {
                gap_days: 0.5,
                median_secs: 1_800.0,
                max_secs: 36_000.0,
            }),
        ),
    ];
    for (label, knobs) in sweeps {
        let plan = match knobs {
            Some(k) => FaultPlan::chaos(7, config.days, k),
            None => FaultPlan::none(),
        };
        let (_, audit) = run(&plan);
        let violations = workload::oracle::check(&audit).len();
        let lags = Ecdf::new(audit.sync_lags_secs());
        let q = |p: f64| {
            lags.quantile(p)
                .map(|v| format!("{v:.0}s"))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            (*label).to_string(),
            audit
                .commits()
                .iter()
                .filter(|c| c.deferred)
                .count()
                .to_string(),
            audit.reconnect_attempt_events().len().to_string(),
            audit.reconnect_events().len().to_string(),
            audit.fallback_poll_count().to_string(),
            q(0.5),
            q(0.9),
            if violations == 0 {
                "pass".into()
            } else {
                format!("{violations} VIOLATIONS")
            },
        ]);
    }
    let body = format!(
        "{}\nlonger and more frequent outages push more commits through the\n\
         offline queue and fatten the sync-lag tail (the p90 climbs with the\n\
         outage duration), while the reconnect/poll machinery keeps every\n\
         setting convergent — graceful degradation, not failure.\n",
        t.render()
    );
    Report::new(
        "ablation_outage",
        "Outage-knob ablation (control-plane fault plans, oracle-checked)",
        body,
    )
    .with_csv("ablation_outage.csv", t.csv())
}

/// All ablation reports.
pub fn all() -> Vec<Report> {
    vec![
        initcwnd_ablation(),
        loss_ablation(),
        batch_limit_ablation(),
        fault_ablation(),
        outage_ablation(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_window_costs_an_extra_handshake_round() {
        let rep = initcwnd_ablation();
        assert!(rep.body.contains("initcwnd 2"));
        // The body quotes both latencies; parse them back for the check.
        let nums: Vec<f64> = rep
            .body
            .lines()
            .find(|l| l.contains("-> ") && l.contains("vs"))
            .expect("summary line")
            .split(&['>', 'm'][..])
            .filter_map(|w| w.trim().parse::<f64>().ok())
            .collect();
        assert!(nums.len() >= 2, "latencies parsed: {nums:?}");
        assert!(nums[0] - nums[1] > 60.0, "≈1 RTT (100 ms) saved: {nums:?}");
    }

    #[test]
    fn loss_reduces_throughput_monotonically_ish() {
        let rep = loss_ablation();
        // The 5% table row must be well below 1x.
        let last = rep
            .body
            .lines()
            .rfind(|l| l.trim_start().starts_with("5.0%"))
            .unwrap();
        let factor: f64 = last
            .split('x')
            .next()
            .unwrap()
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert!(factor < 0.8, "5% loss factor {factor}");
    }

    #[test]
    fn fault_ablation_contrasts_clean_and_lossy_runs() {
        let rep = fault_ablation();
        assert!(rep.body.contains("aborted records"));
        // The fault-free column of the counters is all zeros; the lossy
        // column is not.
        let grab = |label: &str| -> Vec<u64> {
            rep.body
                .lines()
                .find(|l| l.contains(label))
                .unwrap_or_else(|| panic!("row {label}"))
                .split_whitespace()
                .filter_map(|w| w.parse().ok())
                .collect()
        };
        let retries = grab("sync retries");
        assert_eq!(retries[0], 0);
        assert!(retries[1] > 0, "lossy run must retry: {retries:?}");
        let aborts = grab("aborted transfers");
        assert_eq!(aborts[0], 0);
        assert!(aborts[1] > 0, "lossy run must abort transfers: {aborts:?}");
    }

    #[test]
    fn outage_ablation_is_oracle_clean_and_degrades_gracefully() {
        let rep = outage_ablation();
        assert!(!rep.body.contains("VIOLATIONS"), "{}", rep.body);
        // The clean row has no degraded-mode activity; the heaviest outage
        // setting must show offline queueing.
        let csv = &rep.artifacts[0].1;
        let deferred: Vec<u64> = csv
            .lines()
            .skip(1)
            .filter_map(|l| l.split(',').nth(1)?.parse().ok())
            .collect();
        assert_eq!(deferred[0], 0, "clean row defers: {csv}");
        assert!(deferred[3] > 0, "heavy outages must defer commits: {csv}");
    }

    #[test]
    fn batch_limit_caps_flow_size() {
        let rep = batch_limit_ablation();
        assert!(rep.body.contains("100"));
        // More flows under a smaller limit.
        let flows: Vec<u64> = rep
            .body
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .filter_map(|l| l.split_whitespace().nth(1)?.parse().ok())
            .collect();
        assert!(flows.len() >= 3);
        assert!(
            flows[0] > flows[2],
            "10-limit makes more flows than 100-limit"
        );
    }
}

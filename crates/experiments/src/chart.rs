//! ASCII chart rendering for the text reports.
//!
//! The paper's figures are plots; the text reports approximate them with
//! terminal-friendly charts so a reader can see the *shapes* (CDF knees,
//! diurnal peaks, weekly seasonality) without leaving the terminal. CSV
//! artifacts remain the precise record.

use simcore::stats::Ecdf;

/// Render one or more CDFs as an ASCII line chart on a log-x axis.
///
/// Each series gets a marker character; `width`×`height` characters of
/// plotting area plus axes.
pub fn cdf_chart(series: &[(&str, &Ecdf)], width: usize, height: usize) -> String {
    let series: Vec<&(&str, &Ecdf)> = series.iter().filter(|(_, e)| !e.is_empty()).collect();
    if series.is_empty() {
        return "(no samples)\n".to_string();
    }
    let lo = series
        .iter()
        .filter_map(|(_, e)| e.sorted().first().copied())
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    // Clip the axis at the worst p99 so a handful of tail outliers cannot
    // flatten every curve against the left edge of the log axis. An
    // interpolated (type-7) p99 is the right semantics for an axis bound;
    // it need not be an observed sample.
    let hi = series
        .iter()
        .filter_map(|(_, e)| e.quantile(0.99))
        .fold(0.0f64, f64::max)
        .max(lo * 1.5);

    const MARKS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, e)) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for (col, x) in (0..width)
            .map(|c| lo * (hi / lo).powf(c as f64 / (width - 1) as f64))
            .enumerate()
        {
            // log-spaced x value for this column.
            let f = e.fraction_le(x);
            let row = ((1.0 - f) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = mark;
        }
    }

    let mut out = String::new();
    for (ri, row) in grid.iter().enumerate() {
        let label = if ri == 0 {
            "1.0 "
        } else if ri == height - 1 {
            "0.0 "
        } else if ri == height / 2 {
            "0.5 "
        } else {
            "    "
        };
        out.push_str(label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("    +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "     {:<12}{:>width$}\n",
        human(lo),
        format!("{} (p99)", human(hi)),
        width = width.saturating_sub(12)
    ));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("     {} {}\n", MARKS[si % MARKS.len()], label));
    }
    out
}

/// Render a time/value series as an ASCII bar chart (one row per point).
pub fn bar_chart(points: &[(String, f64)], width: usize) -> String {
    let max = points.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    if max <= 0.0 {
        return "(empty)\n".to_string();
    }
    let label_w = points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in points {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:>label_w$} |{} {v:.3}\n",
            "#".repeat(n.min(width)),
        ));
    }
    out
}

/// Human-ish number formatting for axis labels.
fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.1}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else if x >= 1.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_chart_has_axes_and_legend() {
        let e1 = Ecdf::new((1..=1000).map(|i| i as f64).collect());
        let e2 = Ecdf::new((1..=1000).map(|i| (i * 10) as f64).collect());
        let chart = cdf_chart(&[("small", &e1), ("large", &e2)], 60, 12);
        assert!(chart.contains("1.0 |"));
        assert!(chart.contains("0.0 |"));
        assert!(chart.contains("* small"));
        assert!(chart.contains("+ large"));
        // Both markers appear in the plotting area.
        assert!(chart.matches('*').count() > 10);
        assert!(chart.matches('+').count() > 10);
    }

    #[test]
    fn cdf_chart_handles_empty() {
        let e = Ecdf::new(vec![]);
        assert_eq!(cdf_chart(&[("x", &e)], 40, 8), "(no samples)\n");
    }

    #[test]
    fn shifted_cdf_plots_to_the_right() {
        // The larger distribution's 0.5 crossing must be to the right of
        // the smaller's: compare marker column at the middle row.
        let e1 = Ecdf::new((1..=100).map(|i| i as f64).collect());
        let e2 = Ecdf::new((1..=100).map(|i| (i * 50) as f64).collect());
        let chart = cdf_chart(&[("a", &e1), ("b", &e2)], 60, 11);
        let mid_row = chart.lines().nth(5).unwrap();
        let first_a = mid_row.find('*');
        let first_b = mid_row.find('+');
        if let (Some(a), Some(b)) = (first_a, first_b) {
            assert!(a < b, "a at {a}, b at {b}:\n{chart}");
        }
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let points = vec![
            ("00".to_string(), 0.1),
            ("01".to_string(), 0.4),
            ("02".to_string(), 0.2),
        ];
        let chart = bar_chart(&points, 20);
        let lines: Vec<&str> = chart.lines().collect();
        let count = |l: &str| l.matches('#').count();
        assert_eq!(count(lines[1]), 20, "max bar fills the width");
        assert!(count(lines[0]) < count(lines[2]));
    }

    #[test]
    fn human_labels() {
        assert_eq!(human(1_500_000.0), "1.5M");
        assert_eq!(human(2_300.0), "2.3k");
        assert_eq!(human(0.5), "0.500");
    }
}

//! Tables 1–5, rendered from the single-pass [`CaptureSummary`].

use crate::report::{fmt_bps, fmt_bytes, Report, TextTable};
use crate::summary::{CaptureSummary, VantageSummary};
use dropbox_analysis::classify::StorageTag;
use dropbox_analysis::groups::{table5, UserGroup};
use simcore::stats::{median, Ecdf};
use workload::VantageKind;

/// Table 1: domain names used by the different Dropbox services.
pub fn table1() -> Report {
    let mut t = TextTable::new(vec!["sub-domain", "Data-center", "Description"]);
    let rows = [
        ("client-lb/clientX", "Dropbox", "Meta-data"),
        ("notifyX", "Dropbox", "Notifications"),
        ("api", "Dropbox", "API control"),
        ("www", "Dropbox", "Web servers"),
        ("d", "Dropbox", "Event logs"),
        ("dl", "Amazon", "Direct links"),
        ("dl-clientX", "Amazon", "Client storage"),
        ("dl-debugX", "Amazon", "Back-traces"),
        ("dl-web", "Amazon", "Web storage"),
        ("api-content", "Amazon", "API Storage"),
    ];
    for (a, b, c) in rows {
        t.row(vec![a, b, c]);
    }
    // Verify every row classifies to a role in the deployment's directory.
    let mut checks = String::new();
    for (name, role) in [
        ("client-lb.dropbox.com", "MetaData"),
        ("notify7.dropbox.com", "Notification"),
        ("dl-client33.dropbox.com", "ClientStorage"),
    ] {
        let got = dnssim::DnsDirectory::role_of_name(name);
        checks.push_str(&format!("  {name} -> {got:?} (expect {role})\n"));
    }
    Report::new(
        "table1",
        "Domain names used by different Dropbox services",
        format!("{}\nclassifier spot-checks:\n{checks}", t.render()),
    )
    .with_csv("table1.csv", t.csv())
}

/// Table 2: datasets overview.
pub fn table2(sum: &CaptureSummary) -> Report {
    let mut t = TextTable::new(vec!["Name", "Type", "IP Addrs.", "Vol."]);
    let types = ["Wired", "Wired/Wireless", "FTTH/ADSL", "ADSL"];
    for (v, ty) in sum.vantages.iter().zip(types) {
        t.row(vec![
            v.name.clone(),
            ty.to_string(),
            v.overview.ip_addrs.to_string(),
            fmt_bytes(v.overview.volume_bytes),
        ]);
    }
    Report::new(
        "table2",
        "Datasets overview (population scaled; see EXPERIMENTS.md)",
        t.render(),
    )
    .with_csv("table2.csv", t.csv())
}

/// Table 3: total Dropbox traffic in the datasets.
pub fn table3(sum: &CaptureSummary) -> Report {
    let mut t = TextTable::new(vec!["Name", "Flows", "Vol.", "Devices"]);
    let mut total_flows = 0usize;
    let mut total_vol = 0u64;
    let mut total_dev = 0usize;
    for v in &sum.vantages {
        let d = &v.dropbox_totals;
        total_flows += d.flows;
        total_vol += d.volume_bytes;
        total_dev += d.devices;
        t.row(vec![
            v.name.clone(),
            d.flows.to_string(),
            fmt_bytes(d.volume_bytes),
            d.devices.to_string(),
        ]);
    }
    t.row(vec![
        "Total".to_string(),
        total_flows.to_string(),
        fmt_bytes(total_vol),
        total_dev.to_string(),
    ]);
    Report::new(
        "table3",
        "Total Dropbox traffic in the datasets",
        t.render(),
    )
    .with_csv("table3.csv", t.csv())
}

/// Table 4: Campus 1 before and after the bundling deployment.
pub fn table4(sum: &CaptureSummary) -> Report {
    let eras = [
        ("Mar/Apr (v1.2.52)", sum.vantage(VantageKind::Campus1)),
        ("Jun/Jul (v1.4.0)", &sum.campus1_v14),
    ];
    let mut t = TextTable::new(vec!["Metric", "Era", "Median", "Average"]);
    let mut improvements: Vec<(String, f64, f64)> = Vec::new();
    for tag in [StorageTag::Store, StorageTag::Retrieve] {
        let mut era_stats: Vec<(f64, f64, f64, f64)> = Vec::new();
        for (label, v) in &eras {
            let samples = v.storage.tag(tag);
            let mut sizes = samples.transfer_sizes.clone();
            let mut thr = samples.throughputs.clone();
            sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            thr.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let size_med = median(&sizes).unwrap_or(0.0);
            let size_avg = sizes.iter().sum::<f64>() / sizes.len().max(1) as f64;
            let thr_med = median(&thr).unwrap_or(0.0);
            let thr_avg = thr.iter().sum::<f64>() / thr.len().max(1) as f64;
            era_stats.push((size_med, size_avg, thr_med, thr_avg));
            t.row(vec![
                format!("Flow size ({tag:?})"),
                label.to_string(),
                fmt_bytes(size_med as u64),
                fmt_bytes(size_avg as u64),
            ]);
            t.row(vec![
                format!("Throughput ({tag:?})"),
                label.to_string(),
                fmt_bps(thr_med),
                fmt_bps(thr_avg),
            ]);
        }
        if era_stats.len() == 2 {
            let gain_med = era_stats[1].2 / era_stats[0].2.max(1.0) - 1.0;
            let gain_avg = era_stats[1].3 / era_stats[0].3.max(1.0) - 1.0;
            improvements.push((format!("{tag:?}"), gain_med, gain_avg));
        }
    }
    let mut body = t.render();
    body.push('\n');
    for (tag, gm, ga) in improvements {
        body.push_str(&format!(
            "{tag}: throughput median {:+.0}%, average {:+.0}% after bundling\n",
            gm * 100.0,
            ga * 100.0
        ));
    }
    Report::new(
        "table4",
        "Campus 1 performance before/after the bundling mechanism",
        body,
    )
    .with_csv("table4.csv", t.csv())
}

/// Table 5: user groups in Home 1 and Home 2.
pub fn table5_report(sum: &CaptureSummary) -> Report {
    let mut t = TextTable::new(vec![
        "Vantage", "Group", "Addr.", "Sess.", "Retr.", "Store", "Days", "Dev.",
    ]);
    for kind in [VantageKind::Home1, VantageKind::Home2] {
        let v = sum.vantage(kind);
        let households = v.households.as_ref().expect("home summary has households");
        let rows = table5(households);
        for g in UserGroup::ALL {
            let r = &rows[&g];
            t.row(vec![
                v.name.clone(),
                g.label().to_string(),
                format!("{:.2}", r.addr_frac),
                format!("{:.2}", r.session_frac),
                fmt_bytes(r.retrieve_bytes),
                fmt_bytes(r.store_bytes),
                format!("{:.2}", r.avg_days),
                format!("{:.2}", r.avg_devices),
            ]);
        }
    }
    Report::new(
        "table5",
        "User groups in the home datasets (fractions, volumes, presence)",
        t.render(),
    )
    .with_csv("table5.csv", t.csv())
}

/// Helper: flow-size ECDF of tagged storage flows of a vantage summary.
pub fn storage_size_ecdf(v: &VantageSummary, tag: StorageTag) -> Ecdf {
    Ecdf::new(v.storage.tag(tag).sizes.clone())
}
